"""Seeded random-number plumbing.

Every stochastic component in the library accepts either an integer seed or
an already-constructed :class:`numpy.random.Generator`; these helpers make
that pattern uniform and make derived streams reproducible.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: "int | str") -> np.random.Generator:
    """Derive an independent child generator keyed by ``keys``.

    The derivation hashes the key material into a fresh seed so the same
    parent + keys always produce the same child stream, independent of how
    many values were drawn from the parent.
    """
    material = "/".join(str(k) for k in keys)
    digest = np.frombuffer(material.encode("utf-8"), dtype=np.uint8)
    base = int(rng.bit_generator.seed_seq.entropy or 0)  # type: ignore[union-attr]
    child_seed = np.random.SeedSequence([base % (2**63), int(digest.sum()),
                                         len(material), _fnv1a(material)])
    return np.random.default_rng(child_seed)


def spawn_seeds(seed: int, count: int) -> Sequence[int]:
    """Deterministically expand one seed into ``count`` independent seeds."""
    seq = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(count)]


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash; stable across processes unlike ``hash``."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (2**64)
    return value
