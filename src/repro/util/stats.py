"""Statistical helpers shared by the localization algorithms."""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning ``default`` when the denominator is zero."""
    if denominator == 0:
        return default
    return numerator / denominator


def normalize(values: Sequence[float]) -> list[float]:
    """Scale non-negative values to sum to 1; uniform if all are zero."""
    total = float(sum(values))
    n = len(values)
    if n == 0:
        return []
    if total <= 0:
        return [1.0 / n] * n
    return [v / total for v in values]


def normalize_mapping(values: Mapping[str, float]) -> dict[str, float]:
    """Normalize a mapping's values to sum to 1; uniform if all are zero."""
    keys = list(values.keys())
    normed = normalize([values[k] for k in keys])
    return dict(zip(keys, normed))


def prediction_confidence(probabilities: Sequence[float]) -> float:
    """Confidence of a class-probability vector, per LOCATER Algorithm 1.

    The paper uses the *variance* of the predicted probability array: a
    spiky distribution (one label much more likely than the rest) has a high
    variance, a flat one has variance near zero.
    """
    arr = np.asarray(probabilities, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(arr.var())


def gaussian_weights(center: float, points: Sequence[float],
                     sigma: float) -> list[float]:
    """Normalized Gaussian kernel weights of ``points`` around ``center``.

    Used by the caching engine (Section 5) to weight cached affinity
    observations by their temporal distance from the query time.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    raw = [math.exp(-((p - center) ** 2) / (2.0 * sigma * sigma)) for p in points]
    return normalize(raw)
