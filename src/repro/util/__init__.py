"""Shared utilities: time arithmetic, RNG plumbing, validation, statistics."""

from repro.util.rng import derive_rng, make_rng, spawn_seeds
from repro.util.stats import (
    gaussian_weights,
    normalize,
    prediction_confidence,
    safe_div,
)
from repro.util.timeutil import (
    DAYS_PER_WEEK,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    SECONDS_PER_WEEK,
    TimeInterval,
    day_index,
    day_of_week,
    format_timestamp,
    hours,
    minutes,
    seconds_of_day,
    weeks,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "DAYS_PER_WEEK",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_WEEK",
    "TimeInterval",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability_vector",
    "day_index",
    "day_of_week",
    "derive_rng",
    "format_timestamp",
    "gaussian_weights",
    "hours",
    "make_rng",
    "minutes",
    "normalize",
    "prediction_confidence",
    "safe_div",
    "seconds_of_day",
    "spawn_seeds",
    "weeks",
]
