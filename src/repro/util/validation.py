"""Small argument-validation helpers used across the configuration surface."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive; return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0; return it."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed unit interval; return it."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_probability_vector(name: str, values: Sequence[float],
                             tolerance: float = 1e-9) -> Sequence[float]:
    """Validate that ``values`` are non-negative and sum to 1; return them."""
    total = 0.0
    for v in values:
        if v < 0:
            raise ConfigurationError(
                f"{name} must be non-negative, got {values!r}")
        total += v
    if abs(total - 1.0) > tolerance:
        raise ConfigurationError(
            f"{name} must sum to 1 (got sum={total!r} from {values!r})")
    return values
