"""Time arithmetic for connectivity logs.

Timestamps throughout the library are plain ``float`` seconds relative to a
simulation epoch (second 0 is midnight on a Monday).  Working in seconds
keeps the event table numpy-friendly and avoids timezone concerns that real
deployments would push into the ingestion layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
DAYS_PER_WEEK = 7
SECONDS_PER_WEEK = SECONDS_PER_DAY * DAYS_PER_WEEK

_DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def weeks(value: float) -> float:
    """Convert weeks to seconds."""
    return value * SECONDS_PER_WEEK


def day_index(timestamp: float) -> int:
    """Return the zero-based day number containing ``timestamp``."""
    return int(timestamp // SECONDS_PER_DAY)


def day_of_week(timestamp: float) -> int:
    """Return the day of week (0=Monday .. 6=Sunday) of ``timestamp``."""
    return day_index(timestamp) % DAYS_PER_WEEK


def seconds_of_day(timestamp: float) -> float:
    """Return seconds elapsed since midnight of the day of ``timestamp``."""
    return timestamp % SECONDS_PER_DAY


def day_span(interval: "TimeInterval") -> "tuple[int, int]":
    """Inclusive ``(first_day, last_day)`` day indices touched by an interval.

    The interval is half-open, so a window ending exactly on midnight does
    not touch the day that starts there: ``day_span([0, 86400)) == (0, 0)``.
    A zero-length interval touches only the day containing its start.  This
    replaces the fragile ``day_index(end - 1e-9)`` epsilon pattern, which
    silently spilled into the next day for ends within 1e-9 above midnight.
    """
    first = day_index(interval.start)
    if interval.end <= interval.start:
        return first, first
    last = day_index(interval.end)
    if interval.end == last * SECONDS_PER_DAY:
        # End lands exactly on a midnight: [.., end) excludes that day.
        last -= 1
    return first, max(first, last)


def format_timestamp(timestamp: float) -> str:
    """Render a timestamp as ``day N (Ddd) HH:MM:SS`` for logs and reports."""
    day = day_index(timestamp)
    rem = seconds_of_day(timestamp)
    hh = int(rem // SECONDS_PER_HOUR)
    mm = int((rem % SECONDS_PER_HOUR) // SECONDS_PER_MINUTE)
    ss = int(rem % SECONDS_PER_MINUTE)
    return f"day {day} ({_DAY_NAMES[day % DAYS_PER_WEEK]}) {hh:02d}:{mm:02d}:{ss:02d}"


@dataclass(frozen=True, slots=True)
class TimeInterval:
    """A half-open time interval ``[start, end)`` in seconds.

    Used for event validity, gaps, ground-truth room visits and history
    windows.  ``end`` must be at least ``start``; zero-length intervals are
    allowed and behave as empty.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end ({self.end}) precedes start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside ``[start, end)``."""
        return self.start <= timestamp < self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """Whether the two intervals share any positive-length overlap.

        Zero-length intervals overlap nothing (consistent with
        :meth:`intersect`, which would return ``None``).
        """
        return max(self.start, other.start) < min(self.end, other.end)

    def intersect(self, other: "TimeInterval") -> "TimeInterval | None":
        """Return the overlapping sub-interval, or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return None
        return TimeInterval(lo, hi)

    def shift(self, delta: float) -> "TimeInterval":
        """Return the interval translated by ``delta`` seconds."""
        return TimeInterval(self.start + delta, self.end + delta)

    def split_by_day(self) -> Iterator["TimeInterval"]:
        """Yield the pieces of this interval clipped to day boundaries."""
        cursor = self.start
        while cursor < self.end:
            boundary = (day_index(cursor) + 1) * SECONDS_PER_DAY
            piece_end = min(boundary, self.end)
            yield TimeInterval(cursor, piece_end)
            cursor = piece_end

    def __str__(self) -> str:
        return f"[{format_timestamp(self.start)} .. {format_timestamp(self.end)})"
