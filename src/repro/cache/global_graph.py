"""The global affinity graph (paper §5, steps 2–3).

Nodes are devices; an edge between two devices stores the *vector* of
(weight, timestamp) observations accumulated from local affinity graphs.
Querying the graph at time t_q collapses each vector into one scalar by
weighting observations with a normalized Gaussian kernel centred at t_q.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.cache.components import AffinityComponents
from repro.cache.local_graph import LocalAffinityGraph
from repro.util.stats import gaussian_weights
from repro.util.timeutil import SECONDS_PER_DAY
from repro.util.validation import check_positive


@dataclass(frozen=True, slots=True)
class EdgeObservation:
    """One cached (weight, timestamp) affinity observation."""

    weight: float
    timestamp: float


def _edge_key(mac_a: str, mac_b: str) -> tuple[str, str]:
    """Canonical undirected edge key."""
    return (mac_a, mac_b) if mac_a <= mac_b else (mac_b, mac_a)


class GlobalAffinityGraph:
    """Accumulates local affinity graphs across queries.

    Args:
        sigma: Standard deviation of the temporal Gaussian kernel, in
            seconds.  The paper uses a normalized normal distribution
            centred at the query time; observations closer to t_q get
            higher weight.  Default: one day.
        max_observations_per_edge: Older observations beyond this cap are
            dropped FIFO, bounding memory on hot pairs.
    """

    def __init__(self, sigma: float = SECONDS_PER_DAY,
                 max_observations_per_edge: int = 64) -> None:
        check_positive("sigma", sigma)
        check_positive("max_observations_per_edge", max_observations_per_edge)
        self.sigma = sigma
        self.max_observations = int(max_observations_per_edge)
        self._edges: dict[tuple[str, str], list[EdgeObservation]] = {}
        self._adjacency: dict[str, set[str]] = {}
        self._components = AffinityComponents()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def merge_local(self, local: LocalAffinityGraph) -> None:
        """Fold one local graph into the global graph (Ĝg = Gg ∪ Gl)."""
        for other, weight in local:
            self.add_observation(local.center, other, weight,
                                 local.timestamp)

    def add_observation(self, mac_a: str, mac_b: str, weight: float,
                        timestamp: float) -> None:
        """Append one (weight, timestamp) pair to an edge vector."""
        if mac_a == mac_b:
            raise ValueError("global graph edges must join distinct devices")
        key = _edge_key(mac_a, mac_b)
        vector = self._edges.setdefault(key, [])
        vector.append(EdgeObservation(weight=weight, timestamp=timestamp))
        if len(vector) > self.max_observations:
            del vector[: len(vector) - self.max_observations]
        self._adjacency.setdefault(mac_a, set()).add(mac_b)
        self._adjacency.setdefault(mac_b, set()).add(mac_a)
        self._components.add_edge(mac_a, mac_b)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def observations(self, mac_a: str, mac_b: str) -> list[EdgeObservation]:
        """The raw observation vector of an edge (empty if never seen)."""
        return list(self._edges.get(_edge_key(mac_a, mac_b), ()))

    def affinity_at(self, mac_a: str, mac_b: str,
                    timestamp: float) -> "float | None":
        """Time-weighted affinity w(e_ab, t_q), or None if edge unseen.

        w = Σ_j l_j · w_j with l_j the normalized Gaussian kernel of the
        observation timestamps around t_q (paper §5 step 3).
        """
        vector = self._edges.get(_edge_key(mac_a, mac_b))
        if not vector:
            return None
        weights = gaussian_weights(timestamp,
                                   [obs.timestamp for obs in vector],
                                   self.sigma)
        return sum(l * obs.weight for l, obs in zip(weights, vector))

    def neighbors_of(self, mac: str) -> set[str]:
        """Devices with at least one cached edge to ``mac``."""
        return set(self._adjacency.get(mac, ()))

    def rank(self, mac: str, candidates: Iterable[str],
             timestamp: float) -> list[tuple[str, float]]:
        """Candidates sorted by descending cached affinity to ``mac``.

        Unseen candidates rank last with affinity 0 (a device that "just
        appeared in the dataset" provides the least information) —
        strictly *below* cached zero-weight edges: a recorded weight of
        0.0 is evidence ("these two are not companions"), absence of an
        edge is no evidence at all, and conflating the two would let
        never-seen devices interleave arbitrarily (by MAC) with measured
        non-companions.  Ties break by MAC for determinism.
        """
        scored: list[tuple[str, float, bool]] = []
        for other in candidates:
            affinity = self.affinity_at(mac, other, timestamp)
            unseen = affinity is None
            scored.append((other, 0.0 if unseen else affinity, unseen))
        scored.sort(key=lambda entry: (-entry[1], entry[2], entry[0]))
        return [(other, affinity) for other, affinity, _ in scored]

    # ------------------------------------------------------------------
    # Migration (cluster edge exchange)
    # ------------------------------------------------------------------
    def extract_edges(self, macs: Iterable[str]
                      ) -> "list[tuple[str, str, list[tuple[float, float]]]]":
        """Remove and return every edge incident to one of ``macs``.

        The cluster's edge-exchange protocol: when component merges
        rebind devices to a new owning shard, the old shard *extracts*
        the affected edge vectors and the new shard *inserts* them,
        preserving each vector's observation order bitwise — so a later
        ``affinity_at`` on the new shard reads exactly what a lone
        deployment would have accumulated.  Entries are
        ``(mac_a, mac_b, [(weight, timestamp), ...])`` with canonical
        endpoint order — plain tuples, so the payload crosses process
        executors' pickled pipes without importing this module's types.

        The components index deliberately keeps the extracted edges'
        connectivity (see :mod:`repro.cache.components` — components
        never split; staying conservative on the source side is safe).
        Deterministic: edges are returned in graph insertion order.
        """
        targets = set(macs)
        extracted: "list[tuple[str, str, list[tuple[float, float]]]]" = []
        for key in [key for key in self._edges
                    if key[0] in targets or key[1] in targets]:
            vector = self._edges.pop(key)
            mac_a, mac_b = key
            self._drop_adjacency(mac_a, mac_b)
            self._drop_adjacency(mac_b, mac_a)
            extracted.append((mac_a, mac_b,
                              [(obs.weight, obs.timestamp)
                               for obs in vector]))
        return extracted

    def snapshot_edges(self) -> "list[tuple[str, str, list[tuple[float, float]]]]":
        """Copy every edge vector *without* removing it (checkpointing).

        Same plain-tuple payload as :meth:`extract_edges` — suitable for
        :meth:`insert_edges` into a fresh graph — but non-destructive:
        the supervision layer snapshots shard caches after successful
        operations so a resurrected shard can be restored bitwise, while
        the live graph keeps serving.  Deterministic: edges are returned
        in graph insertion order.
        """
        return [(mac_a, mac_b,
                 [(obs.weight, obs.timestamp) for obs in vector])
                for (mac_a, mac_b), vector in self._edges.items()]

    def insert_edges(self, edges: "Iterable[tuple[str, str, list[tuple[float, float]]]]"
                     ) -> int:
        """Append extracted edge vectors (see :meth:`extract_edges`).

        Observations append in payload order, so a vector moved between
        graphs stays bitwise identical (the FIFO cap still applies if an
        edge somehow exists on both sides).  Returns the number of
        observations inserted.
        """
        inserted = 0
        for mac_a, mac_b, vector in edges:
            for weight, timestamp in vector:
                self.add_observation(mac_a, mac_b, weight, timestamp)
                inserted += 1
        return inserted

    def _drop_adjacency(self, mac: str, other: str) -> None:
        neighbors = self._adjacency.get(mac)
        if neighbors is not None:
            neighbors.discard(other)
            if not neighbors:
                del self._adjacency[mac]

    # ------------------------------------------------------------------
    @property
    def components(self) -> AffinityComponents:
        """Connected components over every edge ever recorded.

        Monotone: tracks recorded coupling, so components only merge
        (``extract_edges`` does not split them — see module note there).
        """
        return self._components

    @property
    def edge_count(self) -> int:
        """Number of distinct device pairs cached."""
        return len(self._edges)

    @property
    def node_count(self) -> int:
        """Number of devices appearing in any cached edge."""
        return len(self._adjacency)

    def clear(self) -> None:
        """Drop every cached observation."""
        self._edges.clear()
        self._adjacency.clear()
        self._components.clear()
