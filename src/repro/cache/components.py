"""Affinity components: connected components of the affinity graph.

The global affinity graph (paper §5) couples devices through its
undirected edges — and a *connected component* of that coupling is the
unit of cache locality: every read or write the query path ever issues
touches an edge between the queried device and one of its discovered
neighbors, so a component's edges are closed under the serving access
pattern.  This is what the cluster layer's
:class:`~repro.cluster.router.ComponentAffinityRouter` exploits — if
every device of a component serves from one shard, that shard's cache
is *exact*: it sees the same edge reads and writes, in the same order,
as a lone deployment would (BiG-SCAPE's connected-component → family
decomposition is the same shape, applied to gene-cluster similarity
networks).

:class:`AffinityComponents` maintains the decomposition incrementally —
a disjoint-set forest with union by size and path compression, plus a
deterministic *minimum-member representative* per component.  The
representative is what makes the structure usable for routing: it is a
pure function of the component's member set (its lexicographic
minimum), invariant to the order edges were inserted in, so any two
processes that have seen the same edges agree on it.

Edges only accumulate (components only merge, never split) — which
mirrors the graph itself: observation vectors are appended per edge and
an edge, once seen, never disappears.  The one exception, cross-shard
edge *migration* (:meth:`GlobalAffinityGraph.extract_edges
<repro.cache.global_graph.GlobalAffinityGraph.extract_edges>`), is
deliberately not mirrored here: the source side's components stay
conservative (a superset of true connectivity), which is safe for every
consumer — routing only ever co-locates more, never less.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class AffinityComponents:
    """Incremental connected components with deterministic representatives.

    A disjoint-set forest over string node ids.  ``add_edge`` unions two
    nodes' components; ``representative`` returns the lexicographically
    smallest member of a node's component — a pure function of the
    member set, independent of insertion order.

    Operations are effectively O(α(n)) amortized for find/union; member
    enumeration is O(component size).
    """

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._members: dict[str, list[str]] = {}
        self._minimum: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists (as a singleton if never seen)."""
        if node not in self._parent:
            self._parent[node] = node
            self._members[node] = [node]
            self._minimum[node] = node

    def add_edge(self, node_a: str, node_b: str) -> bool:
        """Union the components of two nodes; True if they merged.

        Self-loops are allowed and only materialize the node.  Unseen
        endpoints are created on the fly.
        """
        self.add_node(node_a)
        self.add_node(node_b)
        root_a = self._find(node_a)
        root_b = self._find(node_b)
        if root_a == root_b:
            return False
        # Union by size: graft the smaller tree under the larger.
        if len(self._members[root_a]) < len(self._members[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a].extend(self._members.pop(root_b))
        loser_min = self._minimum.pop(root_b)
        if loser_min < self._minimum[root_a]:
            self._minimum[root_a] = loser_min
        return True

    def clear(self) -> None:
        """Forget every node and component."""
        self._parent.clear()
        self._members.clear()
        self._minimum.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __contains__(self, node: str) -> bool:
        return node in self._parent

    def representative(self, node: str) -> str:
        """The smallest member of ``node``'s component (node itself if
        unseen-as-singleton semantics are wanted, call add_node first).

        Raises:
            KeyError: If ``node`` was never added.
        """
        return self._minimum[self._find(node)]

    def connected(self, node_a: str, node_b: str) -> bool:
        """Whether both nodes exist and share a component."""
        if node_a not in self._parent or node_b not in self._parent:
            return False
        return self._find(node_a) == self._find(node_b)

    def component(self, node: str) -> frozenset[str]:
        """Every member of ``node``'s component.

        Raises:
            KeyError: If ``node`` was never added.
        """
        return frozenset(self._members[self._find(node)])

    def components(self) -> Iterator[frozenset[str]]:
        """All components, ordered by representative (deterministic)."""
        roots = sorted(self._members, key=lambda root: self._minimum[root])
        for root in roots:
            yield frozenset(self._members[root])

    def representatives(self) -> list[str]:
        """Every component's representative, sorted."""
        return sorted(self._minimum.values())

    @property
    def node_count(self) -> int:
        """Number of nodes ever added."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint components."""
        return len(self._members)

    def update_from_edges(self,
                          edges: Iterable[tuple[str, str]]) -> int:
        """Union many edges; returns the number of merges performed."""
        merged = 0
        for node_a, node_b in edges:
            if self.add_edge(node_a, node_b):
                merged += 1
        return merged

    # ------------------------------------------------------------------
    def _find(self, node: str) -> str:
        """Root of ``node`` with full path compression."""
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def __repr__(self) -> str:
        return (f"AffinityComponents({self.node_count} nodes, "
                f"{self.component_count} components)")
