"""The caching engine: wires local/global graphs into query answering."""

from __future__ import annotations

from typing import Sequence

from repro.cache.global_graph import GlobalAffinityGraph
from repro.cache.local_graph import LocalAffinityGraph
from repro.fine.neighbors import NeighborDevice
from repro.util.timeutil import SECONDS_PER_DAY


class CachingEngine:
    """Maintains the global affinity graph across queries (paper §5).

    Usage per query: call :meth:`order_neighbors` before running
    Algorithm 2 (so high-affinity neighbors are processed first and the
    early-stop fires sooner), then :meth:`record` with the per-neighbor
    edge weights the run computed.
    """

    def __init__(self, sigma: float = SECONDS_PER_DAY,
                 max_observations_per_edge: int = 64) -> None:
        self._graph = GlobalAffinityGraph(
            sigma=sigma, max_observations_per_edge=max_observations_per_edge)
        self.hits = 0
        self.misses = 0

    @property
    def graph(self) -> GlobalAffinityGraph:
        """The underlying global affinity graph."""
        return self._graph

    # ------------------------------------------------------------------
    def order_neighbors(self, mac: str, neighbors: Sequence[NeighborDevice],
                        timestamp: float) -> list[NeighborDevice]:
        """Reorder neighbors by descending cached affinity to ``mac``.

        Counts a *hit* when at least one neighbor has a cached edge (the
        order is informed), a *miss* otherwise (cold cache, order
        unchanged).
        """
        if not neighbors:
            return []
        by_mac = {n.mac: n for n in neighbors}
        ranked = self._graph.rank(mac, list(by_mac.keys()), timestamp)
        if all(affinity == 0.0 for _, affinity in ranked):
            self.misses += 1
            return list(neighbors)
        self.hits += 1
        return [by_mac[other] for other, _ in ranked]

    def neighbor_caps(self, mac: str, neighbors: Sequence[NeighborDevice],
                      timestamp: float) -> dict[str, float]:
        """Cached affinity upper bounds per neighbor (for world bounds).

        A cached weight is the *mean* group affinity over the candidate
        rooms, so the neighbor's total co-location mass is roughly the
        weight times the candidate count; scale up with margin and clamp.
        A device cached with near-zero weight gets a tiny cap, which is
        what lets the early-stop conditions ignore it.
        """
        caps: dict[str, float] = {}
        for neighbor in neighbors:
            cached = self._graph.affinity_at(mac, neighbor.mac, timestamp)
            if cached is not None:
                scaled = cached * 2.0 * max(len(neighbor.candidate_rooms), 1)
                caps[neighbor.mac] = min(max(scaled, 0.02), 0.5)
        return caps

    # ------------------------------------------------------------------
    def record(self, mac: str, timestamp: float,
               edge_weights: dict[str, float]) -> None:
        """Persist one query's local affinity graph into the global graph."""
        local = LocalAffinityGraph(center=mac, timestamp=timestamp)
        for other, weight in edge_weights.items():
            local.add_edge(other, weight)
        self._graph.merge_local(local)

    def stats(self) -> dict[str, int]:
        """Cache effectiveness counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "edges": self._graph.edge_count,
            "nodes": self._graph.node_count,
        }
