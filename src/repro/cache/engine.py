"""The caching engine: wires local/global graphs into query answering."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.cache.global_graph import GlobalAffinityGraph
from repro.cache.local_graph import LocalAffinityGraph
from repro.fine.neighbors import NeighborDevice
from repro.util.timeutil import SECONDS_PER_DAY


class CachingEngine:
    """Maintains the global affinity graph across queries (paper §5).

    Usage per query: call :meth:`order_neighbors` before running
    Algorithm 2 (so high-affinity neighbors are processed first and the
    early-stop fires sooner), then :meth:`record` with the per-neighbor
    edge weights the run computed.
    """

    def __init__(self, sigma: float = SECONDS_PER_DAY,
                 max_observations_per_edge: int = 64) -> None:
        self._graph = GlobalAffinityGraph(
            sigma=sigma, max_observations_per_edge=max_observations_per_edge)
        self.hits = 0
        self.misses = 0

    @property
    def graph(self) -> GlobalAffinityGraph:
        """The underlying global affinity graph."""
        return self._graph

    # ------------------------------------------------------------------
    def order_neighbors(self, mac: str, neighbors: Sequence[NeighborDevice],
                        timestamp: float) -> list[NeighborDevice]:
        """Reorder neighbors by descending cached affinity to ``mac``.

        Counts a *hit* when at least one neighbor has a cached edge (the
        order is informed), a *miss* otherwise (cold cache, order
        unchanged).

        Input multiplicity is preserved: neighbor discovery yields unique
        MACs, but callers supplying duplicates (e.g. merged candidate
        lists) get every entry back, grouped per MAC in input order at
        the MAC's ranked position.
        """
        ordered, _ = self.prepare_neighbors(mac, neighbors, timestamp)
        return ordered

    def prepare_neighbors(self, mac: str,
                          neighbors: Sequence[NeighborDevice],
                          timestamp: float
                          ) -> "tuple[list[NeighborDevice], np.ndarray]":
        """Order neighbors and derive caps with one affinity read per edge.

        The primitive behind :meth:`order_neighbors` and
        :meth:`neighbor_caps` for the per-query hot path: same ordering,
        same caps, same hit/miss accounting, but each cached edge weight
        is read once instead of twice.

        Returns:
            The reordered neighbor list and a float64 cap vector aligned
            with it — the representation the fine localizer's bounds
            machinery consumes directly.  Entries without a cached edge
            are NaN (the localizer substitutes its configured default).
        """
        if not neighbors:
            return [], np.empty(0)
        by_mac: dict[str, list[NeighborDevice]] = {}
        for neighbor in neighbors:
            by_mac.setdefault(neighbor.mac, []).append(neighbor)
        cached: dict[str, "float | None"] = {
            other: self._graph.affinity_at(mac, other, timestamp)
            for other in by_mac}
        cap_by_mac: dict[str, float] = {}
        for other, weight in cached.items():
            if weight is not None:
                cap_by_mac[other] = self._cap(weight, by_mac[other][-1])
        if all(weight is None for weight in cached.values()):
            # Cold cache: no edge to any of these neighbors was ever
            # recorded, so the order carries no information.  (A cached
            # edge with weight 0.0 *is* information — "these two are not
            # companions" — and counts as a hit, per order_neighbors'
            # contract.)
            self.misses += 1
            ordered = list(neighbors)
        else:
            self.hits += 1
            # Same ranking contract as GlobalAffinityGraph.rank
            # (descending affinity, cached zero-weight edges above
            # unseen devices, ties by MAC), reusing the weights already
            # read.
            ranked = sorted(
                ((other, 0.0 if weight is None else weight,
                  weight is None)
                 for other, weight in cached.items()),
                key=lambda entry: (-entry[1], entry[2], entry[0]))
            ordered = [entry for other, _, _ in ranked
                       for entry in by_mac[other]]
        caps = np.array([cap_by_mac.get(n.mac, np.nan) for n in ordered])
        return ordered, caps

    def neighbor_caps(self, mac: str, neighbors: Sequence[NeighborDevice],
                      timestamp: float) -> np.ndarray:
        """Cached affinity upper bounds per neighbor (for world bounds).

        A cached weight is the *mean* group affinity over the candidate
        rooms, so the neighbor's total co-location mass is roughly the
        weight times the candidate count; scale up with margin and clamp.
        A device cached with near-zero weight gets a tiny cap, which is
        what lets the early-stop conditions ignore it.

        Returns:
            A float64 vector aligned with ``neighbors``; NaN where no
            cached edge exists.  Duplicate MACs share the cap of the
            MAC's last entry (matching :meth:`prepare_neighbors`).
        """
        cap_by_mac: dict[str, float] = {}
        for neighbor in neighbors:
            cached = self._graph.affinity_at(mac, neighbor.mac, timestamp)
            if cached is not None:
                cap_by_mac[neighbor.mac] = self._cap(cached, neighbor)
        return np.array([cap_by_mac.get(n.mac, np.nan)
                         for n in neighbors])

    @staticmethod
    def _cap(weight: float, neighbor: NeighborDevice) -> float:
        """The clamped co-location-mass bound for one cached weight."""
        scaled = weight * 2.0 * max(len(neighbor.candidate_rooms), 1)
        return min(max(scaled, 0.02), 0.5)

    # ------------------------------------------------------------------
    def record(self, mac: str, timestamp: float,
               edge_weights: dict[str, float]) -> None:
        """Persist one query's local affinity graph into the global graph."""
        local = LocalAffinityGraph(center=mac, timestamp=timestamp)
        for other, weight in edge_weights.items():
            local.add_edge(other, weight)
        self._graph.merge_local(local)

    def record_batch(self, records: "Iterable[tuple[str, float, dict[str, float]]]"
                     ) -> int:
        """Bulk-merge many queries' local graphs in one call.

        Accepts (mac, timestamp, edge_weights) triples — e.g. replayed
        from a persisted answer journal or collected from a prior run's
        :class:`~repro.fine.localizer.FineResult` values — and folds them
        into the global graph in input order, warming a fresh engine
        front to back.  Returns the number of records with at least one
        edge (empty records are skipped, mirroring the per-query path's
        ``if fine.edge_weights`` guard).
        """
        merged = 0
        for mac, timestamp, edge_weights in records:
            if not edge_weights:
                continue
            self.record(mac, timestamp, edge_weights)
            merged += 1
        return merged

    def stats(self) -> dict[str, int]:
        """Cache effectiveness counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "edges": self._graph.edge_count,
            "nodes": self._graph.node_count,
        }
