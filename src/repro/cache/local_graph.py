"""Per-query local affinity graphs (paper §5, step 1).

After answering a query Q = (d_i, t_q), the devices processed by
Algorithm 2 plus d_i form a small graph whose edge weights summarize how
strongly each pair was co-located at t_q:

    w(e_ab, t_q) = Σ_{r ∈ R(gx)} α({d_a, d_b}, r, t_q) / |R(gx)|
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping, Sequence


@dataclass(slots=True)
class LocalAffinityGraph:
    """The affinity graph of one answered query.

    Attributes:
        center: The queried device d_i.
        timestamp: The query time t_q.
        edges: Mapping from the *other* device's MAC to the edge weight
            between it and ``center`` at ``timestamp``.
    """

    center: str
    timestamp: float
    edges: dict[str, float] = field(default_factory=dict)

    def add_edge(self, other_mac: str, weight: float) -> None:
        """Record the affinity edge (center, other)."""
        if other_mac == self.center:
            raise ValueError("local graph edges must join distinct devices")
        if weight < 0:
            raise ValueError(f"edge weight must be >= 0, got {weight}")
        self.edges[other_mac] = weight

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.edges.items())

    @staticmethod
    def edge_weight(group_affinities: Mapping[str, float],
                    candidate_rooms: Sequence[str]) -> float:
        """w(e_ab, t_q): mean group affinity over the candidate rooms."""
        if not candidate_rooms:
            return 0.0
        total = sum(group_affinities.get(room, 0.0)
                    for room in candidate_rooms)
        return total / len(candidate_rooms)
