"""Caching engine (paper §5): local and global affinity graphs.

Answering a fine-grained query computes pairwise affinities between the
queried device and its neighbors — a *local affinity graph*.  The caching
engine merges every local graph into a *global affinity graph* whose edges
carry vectors of (weight, timestamp) pairs.  Later queries read the global
graph to process neighbors in descending affinity order (weighted by a
Gaussian kernel around the query time), which makes Algorithm 2's early
stop fire sooner.

The graph's *connected components* (:mod:`repro.cache.components`) are
the unit of cache locality the cluster layer routes by — see
:class:`~repro.cluster.router.ComponentAffinityRouter`.
"""

from repro.cache.components import AffinityComponents
from repro.cache.local_graph import LocalAffinityGraph
from repro.cache.global_graph import EdgeObservation, GlobalAffinityGraph
from repro.cache.engine import CachingEngine

__all__ = [
    "AffinityComponents",
    "CachingEngine",
    "EdgeObservation",
    "GlobalAffinityGraph",
    "LocalAffinityGraph",
]
