"""Person profiles: the behavioural templates of the simulator.

A profile controls how predictable a person is — the fraction of in-
building time spent in their preferred room — plus their daily rhythm
(arrival/departure), how likely they are to attend semantic events, and
how chatty their device is.  The paper groups ground-truth users by
predictability bands ([40,55), [55,70), [70,85), [85,100) percent) and
reports precision per band, so the simulator must be able to target a
band precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.util.timeutil import hours, minutes


@dataclass(frozen=True, slots=True)
class PersonProfile:
    """Behavioural parameters of one class of people.

    Attributes:
        name: Profile label (e.g. ``"graduate"``, ``"passenger"``).
        predictability: Target fraction of in-building time spent in the
            preferred room (0..1).  Drives the paper's user bands.
        has_preferred_room: Whether people of this profile own a room
            (office/desk); visitors and passengers do not.
        attendance_probability: Chance of attending an eligible semantic
            event (the "constant probability" of the paper's airport
            generator).
        arrival_mean / arrival_std: Daily arrival time (seconds from
            midnight) mean and standard deviation.
        stay_mean / stay_std: Length of the daily stay in seconds.
        weekend_probability: Chance of coming in on a weekend day.
        connect_period_mean: Mean spacing between connectivity events
            while in coverage (device chattiness; varies per device OS).
        skip_day_probability: Chance of skipping a weekday entirely.
        wander_probability: Chance, per free slot, of wandering to a
            random public room instead of the preferred room.
    """

    name: str
    predictability: float = 0.7
    has_preferred_room: bool = True
    attendance_probability: float = 0.5
    arrival_mean: float = hours(9)
    arrival_std: float = minutes(45)
    stay_mean: float = hours(8)
    stay_std: float = hours(1)
    weekend_probability: float = 0.1
    connect_period_mean: float = minutes(9)
    skip_day_probability: float = 0.05
    wander_probability: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.predictability <= 1.0:
            raise SimulationError(
                f"predictability must be in [0,1], got {self.predictability}")
        if not 0.0 <= self.attendance_probability <= 1.0:
            raise SimulationError(
                "attendance_probability must be in [0,1], got "
                f"{self.attendance_probability}")
        if self.arrival_mean < 0 or self.stay_mean <= 0:
            raise SimulationError("arrival/stay times must be sensible")
        if self.connect_period_mean <= 0:
            raise SimulationError(
                f"connect_period_mean must be > 0, got "
                f"{self.connect_period_mean}")

    def with_predictability(self, value: float) -> "PersonProfile":
        """Copy with a different predictability target."""
        from dataclasses import replace
        return replace(self, predictability=value)


# ---------------------------------------------------------------------------
# Stock profiles used by the scenario builders (paper §6.3 population mixes).
# ---------------------------------------------------------------------------

def staff_profile(name: str = "staff",
                  predictability: float = 0.9) -> PersonProfile:
    """Highly predictable daily workers (staff, receptionists)."""
    return PersonProfile(
        name=name, predictability=predictability, has_preferred_room=True,
        attendance_probability=0.35, arrival_mean=hours(8.5),
        arrival_std=minutes(20), stay_mean=hours(8.5), stay_std=minutes(45),
        weekend_probability=0.05, connect_period_mean=minutes(8),
        skip_day_probability=0.03, wander_probability=0.12)


def resident_profile(name: str = "employee",
                     predictability: float = 0.78) -> PersonProfile:
    """Employees / graduate students: predictable with meetings."""
    return PersonProfile(
        name=name, predictability=predictability, has_preferred_room=True,
        attendance_probability=0.55, arrival_mean=hours(9.5),
        arrival_std=minutes(50), stay_mean=hours(8), stay_std=hours(1),
        weekend_probability=0.15, connect_period_mean=minutes(10),
        skip_day_probability=0.08, wander_probability=0.2)


def roamer_profile(name: str = "undergraduate",
                   predictability: float = 0.5) -> PersonProfile:
    """Semi-predictable roamers: undergraduates, regular customers."""
    return PersonProfile(
        name=name, predictability=predictability, has_preferred_room=True,
        attendance_probability=0.7, arrival_mean=hours(10),
        arrival_std=hours(1.5), stay_mean=hours(5), stay_std=hours(1.5),
        weekend_probability=0.2, connect_period_mean=minutes(12),
        skip_day_probability=0.2, wander_probability=0.5)


def visitor_profile(name: str = "visitor",
                    predictability: float = 0.25) -> PersonProfile:
    """Unpredictable transients: visitors, passengers, random customers."""
    return PersonProfile(
        name=name, predictability=predictability, has_preferred_room=False,
        attendance_probability=0.8, arrival_mean=hours(11),
        arrival_std=hours(2.5), stay_mean=hours(3), stay_std=hours(1.5),
        weekend_probability=0.4, connect_period_mean=minutes(14),
        skip_day_probability=0.45, wander_probability=0.8)
