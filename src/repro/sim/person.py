"""People: a profile instance bound to a device and (maybe) a room."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.profile import PersonProfile


@dataclass(frozen=True, slots=True)
class Person:
    """One simulated person.

    Attributes:
        person_id: Unique id (also used to derive the RNG stream).
        mac: MAC address of the person's device (one device per person;
            the paper's queries are per device).
        profile: The behavioural profile.
        preferred_room: Their owned/preferred room id, or None (visitors).
        predictability: Realized per-person predictability target, drawn
            around the profile's value so a population covers a band.
    """

    person_id: str
    mac: str
    profile: PersonProfile
    preferred_room: "str | None"
    predictability: float

    def __post_init__(self) -> None:
        if not self.person_id or not self.mac:
            raise ValueError("person_id and mac must be non-empty")
        if not 0.0 <= self.predictability <= 1.0:
            raise ValueError(
                f"predictability must be in [0,1], got {self.predictability}")

    def __str__(self) -> str:
        room = self.preferred_room or "-"
        return (f"{self.person_id} ({self.profile.name}, mac={self.mac}, "
                f"room={room}, pred={self.predictability:.2f})")
