"""The simulator's output bundle: events + ground truth + metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.events.table import EventTable
from repro.sim.person import Person
from repro.sim.schedule import DayPlan
from repro.space.building import Building
from repro.space.metadata import SpaceMetadata
from repro.util.timeutil import TimeInterval


@dataclass(slots=True)
class Dataset:
    """Everything a LOCATER evaluation needs, from one simulation run.

    Attributes:
        building: The space model used.
        metadata: Preferred-room metadata derived from room ownership.
        table: Ingested connectivity events (δ already estimated).
        people: The simulated population.
        plans: person_id → per-day plans; these double as the room-level
            ground truth (the paper's camera/diary ground truth analogue).
        span: Simulated time span.
    """

    building: Building
    metadata: SpaceMetadata
    table: EventTable
    people: Sequence[Person]
    plans: Mapping[str, Sequence[DayPlan]]
    span: TimeInterval
    _person_by_mac: dict[str, Person] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._person_by_mac = {p.mac: p for p in self.people}

    # ------------------------------------------------------------------
    def macs(self) -> list[str]:
        """All device MACs in the population."""
        return [p.mac for p in self.people]

    def person_of(self, mac: str) -> Person:
        """The person carrying ``mac``."""
        return self._person_by_mac[mac]

    def true_room_at(self, mac: str, timestamp: float) -> "str | None":
        """Ground-truth room of a device at a time, or None (outside)."""
        person = self._person_by_mac[mac]
        day = int(timestamp // 86400)
        day_plans = self.plans.get(person.person_id, ())
        if not 0 <= day < len(day_plans):
            return None
        return day_plans[day].room_at(timestamp)

    def realized_predictability(self, mac: str) -> float:
        """Realized share of in-building time in the preferred room.

        The paper groups users by this exact statistic; visitors without a
        preferred room realize their *modal* room share instead (matching
        the paper's note that no ground-truth user fell below 40%... in
        our synthetic airports they can).
        """
        person = self._person_by_mac[mac]
        total = 0.0
        per_room: dict[str, float] = {}
        for plan in self.plans.get(person.person_id, ()):
            for visit in plan:
                total += visit.interval.duration
                per_room[visit.room_id] = (
                    per_room.get(visit.room_id, 0.0)
                    + visit.interval.duration)
        if total <= 0:
            return 0.0
        if person.preferred_room is not None:
            return per_room.get(person.preferred_room, 0.0) / total
        return max(per_room.values()) / total

    def event_count(self) -> int:
        """Total connectivity events generated."""
        return len(self.table)
