"""Connectivity event generation: trajectories → WiFi association logs.

Models the paper's observations about association events (§2): events are
generated sporadically — on first connection to an AP, on OS-initiated
probes, and on status changes — so the log does *not* contain an event for
every instant a device is in coverage.  While a person occupies a room,
their device emits events at roughly the device's probe period (jittered,
exponential spacing), each logged by one of the APs covering the room
(nearer APs more likely), and occasionally no event is emitted at all
(missed probes), which is what creates the gaps the coarse localizer must
repair.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.events.event import ConnectivityEvent
from repro.sim.person import Person
from repro.sim.schedule import DayPlan
from repro.space.building import Building
from repro.util.rng import make_rng


class ConnectivityGenerator:
    """Emits connectivity events from day plans.

    Args:
        building: Space model (room → covering APs).
        seed: RNG seed.
        emission_probability: Chance that a scheduled probe actually
            produces a logged association event (paper: "connectivity
            events are not always generated even when the device is in the
            coverage area of an AP").
        sticky_ap_probability: Chance the device stays associated with its
            previous AP when the previous AP also covers the current room
            (device radios are sticky in practice, which is what makes
            region-level cleaning non-trivial).
    """

    def __init__(self, building: Building,
                 seed: "int | np.random.Generator | None" = 0,
                 emission_probability: float = 0.65,
                 sticky_ap_probability: float = 0.35) -> None:
        if not 0.0 < emission_probability <= 1.0:
            raise SimulationError(
                f"emission_probability must be in (0,1], got "
                f"{emission_probability}")
        if not 0.0 <= sticky_ap_probability <= 1.0:
            raise SimulationError(
                f"sticky_ap_probability must be in [0,1], got "
                f"{sticky_ap_probability}")
        self._building = building
        self._rng = make_rng(seed)
        self.emission_probability = emission_probability
        self.sticky_ap_probability = sticky_ap_probability

    # ------------------------------------------------------------------
    def events_for_plan(self, person: Person,
                        plan: DayPlan) -> list[ConnectivityEvent]:
        """Connectivity events for one person-day."""
        events: list[ConnectivityEvent] = []
        period = person.profile.connect_period_mean
        last_ap: "str | None" = None
        for visit in plan:
            covering = self._building.regions_of_room(visit.room_id)
            if not covering:
                last_ap = None
                continue  # blind spot: no AP covers the room
            ap_ids = [region.ap_id for region in covering]
            weights = self._signal_weights(visit.room_id, ap_ids)
            cursor = visit.interval.start
            # Arrival at a new room usually triggers an association.
            first = True
            while cursor < visit.interval.end:
                if first:
                    timestamp = cursor + float(self._rng.uniform(0, 30))
                    first = False
                else:
                    timestamp = cursor + float(
                        self._rng.exponential(period))
                if timestamp >= visit.interval.end:
                    break
                cursor = timestamp
                if self._rng.random() > self.emission_probability:
                    continue  # probe happened but was not logged
                ap_id = self._choose_ap(ap_ids, weights, last_ap)
                last_ap = ap_id
                events.append(ConnectivityEvent(
                    timestamp=timestamp, mac=person.mac, ap_id=ap_id))
        return events

    #: RF falloff scale (metres) for association weighting: the nearest
    #: covering AP is strongly preferred, decorrelating the AP streams of
    #: devices sitting in different rooms of the same region.
    SIGNAL_SIGMA = 3.5

    def _signal_weights(self, room_id: str,
                        ap_ids: Sequence[str]) -> np.ndarray:
        """Association likelihood per covering AP (signal ∝ proximity)."""
        room = self._building.room(room_id)
        rx, ry = room.position
        scores = []
        for ap_id in ap_ids:
            ap = self._building.access_points[ap_id]
            ax, ay = ap.position
            dist2 = (rx - ax) ** 2 + (ry - ay) ** 2
            scores.append(np.exp(-dist2 / (2.0 * self.SIGNAL_SIGMA ** 2)))
        arr = np.asarray(scores, dtype=float)
        total = arr.sum()
        if total <= 0:
            return np.full(len(ap_ids), 1.0 / len(ap_ids))
        return arr / total

    def _choose_ap(self, ap_ids: Sequence[str], weights: np.ndarray,
                   last_ap: "str | None") -> str:
        if (last_ap in ap_ids
                and self._rng.random() < self.sticky_ap_probability):
            return last_ap
        return ap_ids[int(self._rng.choice(len(ap_ids), p=weights))]

    # ------------------------------------------------------------------
    def generate(self, people: Sequence[Person],
                 plans: dict[str, list[DayPlan]]) -> list[ConnectivityEvent]:
        """Events for the whole population, chronologically sorted."""
        events: list[ConnectivityEvent] = []
        for person in people:
            for plan in plans.get(person.person_id, ()):
                events.extend(self.events_for_plan(person, plan))
        events.sort()
        return events
