"""Scenario specifications: the five evaluation environments (§6.1, §6.3).

Each spec bundles a building blueprint, a population mix (profiles with
head-counts), and a recurring semantic-event program.  The mixes follow
the paper: e.g. the airport has 15 restaurant staff, 15 store staff, 20
airline representatives, 15 TSA staff and 200 passengers attending
security checks / dining / boarding / shopping events.  Head-counts are
scaled by ``population_scale`` so tests and benchmarks stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.errors import SimulationError
from repro.events.event import ConnectivityEvent
from repro.sim.profile import (
    PersonProfile,
    resident_profile,
    roamer_profile,
    staff_profile,
    visitor_profile,
)
from repro.sim.semantic_event import SemanticEvent
from repro.space.blueprints import (
    airport_blueprint,
    campus_blueprint,
    dbh_blueprint,
    mall_blueprint,
    office_blueprint,
    university_blueprint,
)
from repro.space.building import Building
from repro.system.query import LocationQuery
from repro.util.rng import make_rng
from repro.util.timeutil import SECONDS_PER_DAY, TimeInterval, hours, minutes


@dataclass(frozen=True, slots=True)
class PopulationGroup:
    """A profile with a head-count."""

    profile: PersonProfile
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SimulationError(f"count must be >= 0, got {self.count}")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A complete simulation scenario.

    Attributes:
        name: Scenario label.
        building_factory: Zero-arg callable producing the building.
        groups: Population mix.
        event_program: Callable building the semantic events for a
            building (so room ids can be resolved against the blueprint).
        seed: Base RNG seed; every sub-generator derives from it.
    """

    name: str
    building_factory: Callable[[], Building]
    groups: tuple[PopulationGroup, ...]
    event_program: Callable[[Building], Sequence[SemanticEvent]]
    seed: int = 0

    def scaled(self, population_scale: float) -> "ScenarioSpec":
        """Copy with every head-count multiplied by ``population_scale``."""
        if population_scale <= 0:
            raise SimulationError(
                f"population_scale must be > 0, got {population_scale}")
        groups = tuple(
            PopulationGroup(g.profile,
                            max(1, round(g.count * population_scale)))
            for g in self.groups if g.count)
        return ScenarioSpec(name=self.name,
                            building_factory=self.building_factory,
                            groups=groups, event_program=self.event_program,
                            seed=self.seed)

    def total_population(self) -> int:
        """Head-count across all groups."""
        return sum(g.count for g in self.groups)

    # ------------------------------------------------------------------
    # Stock scenarios
    # ------------------------------------------------------------------
    @classmethod
    def dbh_like(cls, seed: int = 0, scale: float = 0.25,
                 population: int = 60) -> "ScenarioSpec":
        """The university-building deployment of §6.1 (synthetic stand-in).

        The population spans the paper's four predictability bands.
        Realized predictability (share of in-building time in the
        preferred room) undershoots the profile target by however much
        time semantic events consume, so each band's profile pairs a
        target with an attendance rate calibrated to land inside the
        band: faculty → [85,100), postdocs → [70,85), graduates →
        [55,70), affiliates → [40,55).
        """
        from dataclasses import replace

        quarter = max(1, population // 4)
        faculty = staff_profile("faculty", 0.93)
        postdoc = replace(resident_profile("postdoc", 0.8),
                          attendance_probability=0.4,
                          wander_probability=0.2)
        graduate = replace(resident_profile("graduate", 0.66),
                           attendance_probability=0.55,
                           wander_probability=0.35)
        affiliate = replace(roamer_profile("affiliate", 0.45),
                            attendance_probability=0.75,
                            wander_probability=0.6)
        groups = (
            PopulationGroup(faculty, quarter),
            PopulationGroup(postdoc, quarter),
            PopulationGroup(graduate, quarter),
            PopulationGroup(affiliate, population - 3 * quarter),
        )
        return cls(name="dbh", building_factory=lambda: dbh_blueprint(scale),
                   groups=groups, event_program=_university_events,
                   seed=seed)

    @classmethod
    def office(cls, seed: int = 0, population: int = 45) -> "ScenarioSpec":
        """Office building: the paper's most predictable environment."""
        groups = (
            PopulationGroup(staff_profile("receptionist", 0.93), 2),
            PopulationGroup(staff_profile("manager", 0.85),
                            max(1, population // 9)),
            PopulationGroup(resident_profile("employee", 0.8),
                            max(1, population * 5 // 9)),
            PopulationGroup(roamer_profile("janitorial", 0.45),
                            max(1, population // 9)),
            PopulationGroup(visitor_profile("visitor", 0.3),
                            max(1, population * 2 // 9)),
        )
        return cls(name="office", building_factory=office_blueprint,
                   groups=groups, event_program=_office_events, seed=seed)

    @classmethod
    def university(cls, seed: int = 0,
                   population: int = 60) -> "ScenarioSpec":
        """University building: classes dominate the event program."""
        groups = (
            PopulationGroup(staff_profile("staff", 0.9),
                            max(1, population // 10)),
            PopulationGroup(resident_profile("graduate", 0.78),
                            max(1, population // 5)),
            PopulationGroup(resident_profile("professor", 0.82),
                            max(1, population // 6)),
            PopulationGroup(roamer_profile("undergraduate", 0.55),
                            max(1, population * 2 // 5)),
            PopulationGroup(visitor_profile("visitor", 0.28),
                            max(1, population // 10)),
        )
        return cls(name="university", building_factory=university_blueprint,
                   groups=groups, event_program=_university_events,
                   seed=seed)

    @classmethod
    def mall(cls, seed: int = 0, population: int = 60) -> "ScenarioSpec":
        """Mall: mostly unpredictable customers plus store staff."""
        groups = (
            PopulationGroup(staff_profile("staff", 0.88),
                            max(1, population // 8)),
            PopulationGroup(resident_profile("salesman_restaurant", 0.75),
                            max(1, population // 8)),
            PopulationGroup(resident_profile("salesman_shop", 0.72),
                            max(1, population // 6)),
            PopulationGroup(roamer_profile("regular_customer", 0.5),
                            max(1, population // 4)),
            PopulationGroup(visitor_profile("random_customer", 0.3),
                            max(1, population // 3)),
        )
        return cls(name="mall", building_factory=mall_blueprint,
                   groups=groups, event_program=_mall_events, seed=seed)

    @classmethod
    def airport(cls, seed: int = 0, population: int = 80) -> "ScenarioSpec":
        """Airport terminal per the paper's Santa Ana scenario."""
        # Paper mix (265 heads) shrunk proportionally to ``population``.
        base = {"restaurant_staff": 15, "store_staff": 15,
                "airline_representative": 20, "tsa": 15, "passenger": 200}
        factor = population / sum(base.values())
        groups = (
            PopulationGroup(resident_profile("restaurant_staff", 0.8),
                            max(1, round(base["restaurant_staff"] * factor))),
            PopulationGroup(resident_profile("store_staff", 0.78),
                            max(1, round(base["store_staff"] * factor))),
            PopulationGroup(resident_profile("airline_representative", 0.7),
                            max(1, round(base["airline_representative"]
                                         * factor))),
            PopulationGroup(staff_profile("tsa", 0.85),
                            max(1, round(base["tsa"] * factor))),
            PopulationGroup(visitor_profile("passenger", 0.3),
                            max(1, round(base["passenger"] * factor))),
        )
        return cls(name="airport", building_factory=airport_blueprint,
                   groups=groups, event_program=_airport_events, seed=seed)

    @classmethod
    def campus(cls, seed: int = 0, population: int = 48,
               buildings: int = 3) -> "ScenarioSpec":
        """A multi-building campus: the cluster layer's native workload.

        One space model holds ``buildings`` corridor buildings with
        disjoint per-building AP vocabularies (see
        :func:`~repro.space.blueprints.campus_blueprint`).  Most of the
        population is building-resident — their preferred private
        offices spread across the buildings, so their traffic stays on
        one AP vocabulary — while a commuter tail (high wander, campus
        events in building 0 open to everyone) keeps crossing building
        boundaries, which is exactly what stresses a building-affinity
        shard router: sticky assignments must stay correct for devices
        whose logs span several buildings.
        """
        if buildings < 1:
            raise SimulationError(
                f"campus needs at least 1 building, got {buildings}")
        from dataclasses import replace

        staff = staff_profile("staff", 0.9)
        resident = resident_profile("resident", 0.78)
        commuter = replace(
            roamer_profile("commuter", 0.45),
            attendance_probability=0.85, wander_probability=0.7)
        visitor = visitor_profile("visitor", 0.3)
        groups = (
            PopulationGroup(staff, max(1, population // 8)),
            PopulationGroup(resident, max(1, population * 4 // 8)),
            PopulationGroup(commuter, max(1, population * 2 // 8)),
            PopulationGroup(visitor, max(1, population // 8)),
        )
        return cls(name=f"campus{buildings}",
                   building_factory=lambda: campus_blueprint(buildings),
                   groups=groups, event_program=_campus_events, seed=seed)

    @classmethod
    def by_name(cls, name: str, seed: int = 0) -> "ScenarioSpec":
        """Look up a stock scenario by name."""
        factory = {
            "dbh": cls.dbh_like, "office": cls.office,
            "university": cls.university, "mall": cls.mall,
            "airport": cls.airport, "campus": cls.campus,
        }.get(name)
        if factory is None:
            raise SimulationError(f"unknown scenario {name!r}")
        return factory(seed=seed)


# ---------------------------------------------------------------------------
# Event programs
# ---------------------------------------------------------------------------

def _pick_public(building: Building, count: int) -> list[str]:
    rooms = sorted(r.room_id for r in building.public_rooms())
    if not rooms:
        rooms = sorted(building.rooms)
    step = max(1, len(rooms) // max(1, count))
    return rooms[::step][:count]


def _university_events(building: Building) -> list[SemanticEvent]:
    """Classes, seminars and lunches on weekdays."""
    rooms = _pick_public(building, 6)
    events: list[SemanticEvent] = []
    weekdays = (0, 1, 2, 3, 4)
    for i, room in enumerate(rooms):
        events.append(SemanticEvent(
            event_id=f"class-{i}", room_id=room,
            start_time=hours(9 + (i % 4) * 2), duration=hours(1.5),
            days=weekdays, capacity=25,
            eligible_profiles=("undergraduate", "graduate", "professor",
                               "affiliate")))
    if rooms:
        events.append(SemanticEvent(
            event_id="seminar", room_id=rooms[0], start_time=hours(15),
            duration=hours(1), days=(1, 3), capacity=30,
            eligible_profiles=("graduate", "professor", "faculty",
                               "staff")))
        events.append(SemanticEvent(
            event_id="lunch", room_id=rooms[-1], start_time=hours(12),
            duration=minutes(45), days=weekdays, capacity=60))
    return events


def _office_events(building: Building) -> list[SemanticEvent]:
    """Stand-ups, team meetings and lunches."""
    rooms = _pick_public(building, 4)
    events: list[SemanticEvent] = []
    weekdays = (0, 1, 2, 3, 4)
    for i, room in enumerate(rooms):
        events.append(SemanticEvent(
            event_id=f"meeting-{i}", room_id=room,
            start_time=hours(10 + (i % 3) * 2), duration=hours(1),
            days=weekdays, capacity=12,
            eligible_profiles=("employee", "manager")))
    if rooms:
        events.append(SemanticEvent(
            event_id="lunch", room_id=rooms[-1], start_time=hours(12),
            duration=minutes(45), days=weekdays, capacity=50))
    return events


def _mall_events(building: Building) -> list[SemanticEvent]:
    """Shifts and dining windows."""
    rooms = _pick_public(building, 5)
    events: list[SemanticEvent] = []
    alldays = tuple(range(7))
    for i, room in enumerate(rooms[:-1]):
        events.append(SemanticEvent(
            event_id=f"shift-{i}", room_id=room, start_time=hours(10),
            duration=hours(6), days=alldays, capacity=6,
            eligible_profiles=("staff", "salesman_restaurant",
                               "salesman_shop")))
    if rooms:
        events.append(SemanticEvent(
            event_id="foodcourt", room_id=rooms[-1], start_time=hours(12),
            duration=hours(1.5), days=alldays, capacity=80))
    return events


def _campus_events(building: Building) -> list[SemanticEvent]:
    """Per-building routines plus campus-wide gatherings in building 0.

    The in-building meetings keep residents on their own AP vocabulary;
    the campus events (open to every profile, generous capacity) pull
    attendees — commuters above all — across building boundaries.
    """
    by_building: dict[str, list[str]] = {}
    for room_id in sorted(r.room_id for r in building.public_rooms()):
        prefix, _, rest = room_id.partition("-")
        if rest:
            by_building.setdefault(prefix, []).append(room_id)
    if not by_building:  # non-campus building: fall back to one program
        return _office_events(building)
    events: list[SemanticEvent] = []
    weekdays = (0, 1, 2, 3, 4)
    for index, (key, rooms) in enumerate(sorted(by_building.items())):
        events.append(SemanticEvent(
            event_id=f"{key}-meeting", room_id=rooms[0],
            start_time=hours(9 + (index % 3)), duration=hours(1),
            days=weekdays, capacity=20,
            eligible_profiles=("staff", "resident")))
        events.append(SemanticEvent(
            event_id=f"{key}-lunch", room_id=rooms[-1],
            start_time=hours(12), duration=minutes(45), days=weekdays,
            capacity=40))
    hub = sorted(by_building)[0]
    events.append(SemanticEvent(
        event_id="campus-seminar", room_id=by_building[hub][0],
        start_time=hours(15), duration=hours(1.5), days=(1, 3),
        capacity=120))
    events.append(SemanticEvent(
        event_id="campus-social", room_id=by_building[hub][-1],
        start_time=hours(17), duration=hours(1), days=(4,),
        capacity=120))
    return events


# ---------------------------------------------------------------------------
# Composed datasets
# ---------------------------------------------------------------------------

def isolated_campus_dataset(buildings: int = 3, population: int = 24,
                            days: int = 3, seed: int = 17):
    """A campus dataset whose buildings never exchange devices.

    The stock :meth:`ScenarioSpec.campus` population genuinely crosses
    building boundaries (commuters, campus-wide gatherings, wandering
    over the merged room pool) — good for stressing sticky routing, but
    it collapses the potential co-presence graph into one connected
    component, which makes component routing degenerate to a single
    shard.  This composer builds the complementary workload: each
    building's population is simulated *separately* (its own rooms, its
    own wander pool) and the runs are merged onto one campus space
    model with per-building id prefixes, so the resulting dataset has
    exactly ``buildings`` affinity components — the shape the
    cluster-caching distribution tests and benchmark need.

    Returns:
        A :class:`~repro.sim.dataset.Dataset` over
        :func:`~repro.space.blueprints.campus_blueprint` with device
        MACs prefixed ``b<k>:`` by home building.
    """
    # Local imports: the simulator module imports this one.
    from dataclasses import replace

    from repro.events.table import EventTable
    from repro.events.validity import DeltaEstimator
    from repro.sim.dataset import Dataset
    from repro.sim.schedule import DayPlan, Visit
    from repro.sim.simulator import Simulator
    from repro.space.metadata import SpaceMetadata

    if buildings < 1:
        raise SimulationError(
            f"isolated campus needs at least 1 building, got {buildings}")
    campus = campus_blueprint(buildings)
    per_building = max(2, population // buildings)
    people = []
    plans = {}
    events = []
    for index in range(buildings):
        # A 1-building campus spec: same profiles and event program,
        # ids all prefixed "b0-" for rooms/APs.
        spec = ScenarioSpec.campus(seed=seed + index,
                                   population=per_building, buildings=1)
        run = Simulator(spec).run(days=days)

        def remap(identifier: str, index: int = index) -> str:
            return f"b{index}-" + identifier.removeprefix("b0-")

        mac_prefix = f"b{index}:"
        for person in run.people:
            people.append(replace(
                person,
                person_id=mac_prefix + person.person_id,
                mac=mac_prefix + person.mac,
                preferred_room=None if person.preferred_room is None
                else remap(person.preferred_room)))
        for person_id, day_plans in run.plans.items():
            plans[mac_prefix + person_id] = [
                DayPlan(person_id=mac_prefix + person_id, day=plan.day,
                        visits=[Visit(room_id=remap(visit.room_id),
                                      interval=visit.interval,
                                      reason=visit.reason)
                                for visit in plan.visits])
                for plan in day_plans]
        for mac in run.table.macs():
            events.extend(
                ConnectivityEvent(timestamp=event.timestamp,
                                  mac=mac_prefix + event.mac,
                                  ap_id=remap(event.ap_id))
                for event in run.table.log(mac).events())
    table = EventTable.from_events(sorted(events))
    for person in people:
        table.registry.intern(person.mac)
    DeltaEstimator().fit_table(table)
    metadata = SpaceMetadata(campus)
    for person in people:
        if person.preferred_room is not None:
            metadata.set_preferred_rooms(person.mac,
                                         [person.preferred_room])
    return Dataset(building=campus, metadata=metadata, table=table,
                   people=people, plans=plans,
                   span=TimeInterval(0.0, days * SECONDS_PER_DAY))


# ---------------------------------------------------------------------------
# Streaming workload
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class StreamingBatch:
    """One tick of a streaming day: an ingest batch then a query burst.

    Attributes:
        index: Tick ordinal within the day.
        interval: The time slice whose events arrive in this tick.
        ingest: Events "received from the controllers" during the slice.
        queries: The burst asked right after the tick's ingest; only
            devices already observed by then are queried, and most
            timestamps fall inside the freshly ingested slice so answers
            demonstrably depend on the new data.
    """

    index: int
    interval: TimeInterval
    ingest: tuple[ConnectivityEvent, ...]
    queries: tuple[LocationQuery, ...]


@dataclass(frozen=True, slots=True)
class StreamingWorkload:
    """A live-serving day: warm-up history plus interleaved ticks.

    The canonical event stream is ``warmup`` followed by each batch's
    ``ingest`` in order — cold-rebuild oracles must consume exactly that
    stream (see :meth:`events_through`) to be comparable with a system
    that ingested it incrementally.
    """

    warmup: tuple[ConnectivityEvent, ...]
    batches: tuple[StreamingBatch, ...]

    def events_through(self, batch_index: int) -> list[ConnectivityEvent]:
        """The full stream up to and including batch ``batch_index``."""
        out = list(self.warmup)
        for batch in self.batches[: batch_index + 1]:
            out.extend(batch.ingest)
        return out

    @property
    def event_count(self) -> int:
        """Total events across warm-up and every tick."""
        return len(self.warmup) + sum(len(b.ingest) for b in self.batches)

    @property
    def query_count(self) -> int:
        """Total queries across every burst."""
        return sum(len(b.queries) for b in self.batches)


def streaming_day_workload(dataset, batches: int = 12,
                           queries_per_burst: int = 16,
                           seed: int = 0) -> StreamingWorkload:
    """Carve a simulated dataset into a streaming day (ingest ⇄ query).

    All but the last simulated day become the warm-up history; the final
    day's events are replayed as ``batches`` equal time slices, each
    followed by a deterministic query burst.  Burst queries prefer
    devices active in the freshly ingested slice (two thirds, when
    available) and time points inside it, with the rest sampling the
    already-seen population across the day so far — the mix a live
    tracking dashboard would produce.

    Args:
        dataset: A :class:`~repro.sim.dataset.Dataset` spanning ≥ 2 days.
        batches: Ticks the final day is sliced into.
        queries_per_burst: Queries per burst.
        seed: Burst-sampling seed (the event stream itself is fixed).
    """
    if batches < 1:
        raise SimulationError(f"batches must be >= 1, got {batches}")
    if queries_per_burst < 1:
        raise SimulationError(
            f"queries_per_burst must be >= 1, got {queries_per_burst}")
    span = dataset.span
    if span.duration < 2 * SECONDS_PER_DAY:
        raise SimulationError(
            "streaming workload needs >= 2 simulated days "
            f"(got {span.duration / SECONDS_PER_DAY:.1f})")
    stream = sorted(
        (event for mac in dataset.table.macs()
         for event in dataset.table.events_of(mac)),
        key=lambda e: (e.timestamp, e.mac, e.ap_id))
    cut = span.end - SECONDS_PER_DAY
    warmup = tuple(e for e in stream if e.timestamp < cut)
    day = [e for e in stream if e.timestamp >= cut]
    if not warmup or not day:
        raise SimulationError(
            "dataset has no events on one side of the streaming cut; "
            "simulate more days or a denser population")

    rng = make_rng(seed)
    seen = sorted({e.mac for e in warmup})
    width = (span.end - cut) / batches
    out: list[StreamingBatch] = []
    for index in range(batches):
        lo = cut + index * width
        hi = span.end if index == batches - 1 else cut + (index + 1) * width
        ingest = tuple(e for e in day if lo <= e.timestamp < hi)
        fresh = sorted({e.mac for e in ingest})
        seen = sorted(set(seen).union(fresh))
        queries = []
        for _ in range(queries_per_burst):
            if fresh and rng.random() < 2 / 3:
                mac = fresh[int(rng.integers(len(fresh)))]
                timestamp = float(rng.uniform(lo, hi))
            else:
                mac = seen[int(rng.integers(len(seen)))]
                timestamp = float(rng.uniform(cut, hi))
            queries.append(LocationQuery(mac=mac, timestamp=timestamp))
        out.append(StreamingBatch(index=index,
                                  interval=TimeInterval(lo, hi),
                                  ingest=ingest, queries=tuple(queries)))
    return StreamingWorkload(warmup=warmup, batches=tuple(out))


# ---------------------------------------------------------------------------
# Serving load generators (for the async gateway)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ArrivalSchedule:
    """An open-loop load schedule: queries with submission offsets.

    Open loop means the submission times are fixed in advance — they do
    *not* wait for answers — so the offered rate keeps pressing even
    when the server falls behind.  This is the generator that drives a
    gateway past saturation and exposes whether admission control sheds
    load or lets latency grow without bound.

    Attributes:
        offsets: Seconds from load start at which each query is
            submitted (non-decreasing).
        queries: The query submitted at each offset.
    """

    offsets: tuple[float, ...]
    queries: tuple[LocationQuery, ...]

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.queries):
            raise SimulationError(
                f"offsets and queries must align, got {len(self.offsets)} "
                f"vs {len(self.queries)}")

    @property
    def duration(self) -> float:
        """Seconds from load start to the last submission."""
        return self.offsets[-1] if self.offsets else 0.0

    @property
    def offered_rate(self) -> float:
        """Mean submissions per second over the schedule."""
        return len(self.queries) / max(self.duration, 1e-12)


def open_loop_arrivals(dataset, rate_per_second: float, count: int,
                       seed: int = 0) -> ArrivalSchedule:
    """Poisson arrivals at a fixed offered rate (open-loop load).

    Inter-arrival gaps are exponential with mean ``1/rate_per_second``
    — the memoryless stream a population of independent users offers —
    and each arrival asks a uniform (device, time) query over the whole
    dataset, the paper's generated-query-set distribution.
    """
    if rate_per_second <= 0:
        raise SimulationError(
            f"rate_per_second must be positive, got {rate_per_second}")
    if count < 1:
        raise SimulationError(f"count must be >= 1, got {count}")
    rng = make_rng(seed)
    macs = dataset.macs()
    if not macs:
        raise SimulationError("dataset has no devices to query")
    span = dataset.span
    gaps = rng.exponential(1.0 / rate_per_second, size=count)
    offsets = tuple(float(offset) for offset in gaps.cumsum())
    queries = tuple(
        LocationQuery(mac=macs[int(rng.integers(len(macs)))],
                      timestamp=float(rng.uniform(span.start, span.end)))
        for _ in range(count))
    return ArrivalSchedule(offsets=offsets, queries=queries)


def closed_loop_clients(dataset, clients: int, queries_per_client: int,
                        seed: int = 0) -> list[list[LocationQuery]]:
    """Per-client query streams (closed-loop load).

    Closed loop means each client submits its next query only after the
    previous answer returns, so at most ``clients`` queries are ever in
    flight and the system serves at its natural throughput — the
    generator for saturation-throughput and coalescing measurements
    (more concurrent clients ⇒ fuller batching windows).
    """
    if clients < 1:
        raise SimulationError(f"clients must be >= 1, got {clients}")
    if queries_per_client < 1:
        raise SimulationError(
            f"queries_per_client must be >= 1, got {queries_per_client}")
    rng = make_rng(seed)
    macs = dataset.macs()
    if not macs:
        raise SimulationError("dataset has no devices to query")
    span = dataset.span
    return [
        [LocationQuery(mac=macs[int(rng.integers(len(macs)))],
                       timestamp=float(rng.uniform(span.start, span.end)))
         for _ in range(queries_per_client)]
        for _ in range(clients)]


def _airport_events(building: Building) -> list[SemanticEvent]:
    """Security checks, dining, boarding and shopping (paper §6.3)."""
    rooms = _pick_public(building, 6)
    events: list[SemanticEvent] = []
    alldays = tuple(range(7))
    if len(rooms) >= 4:
        events.append(SemanticEvent(
            event_id="security-am", room_id=rooms[0], start_time=hours(6),
            duration=hours(4), days=alldays, capacity=10,
            eligible_profiles=("tsa",)))
        events.append(SemanticEvent(
            event_id="security-pm", room_id=rooms[0], start_time=hours(12),
            duration=hours(6), days=alldays, capacity=10,
            eligible_profiles=("tsa",)))
        events.append(SemanticEvent(
            event_id="dining", room_id=rooms[1], start_time=hours(11.5),
            duration=hours(2), days=alldays, capacity=60,
            eligible_profiles=("passenger", "restaurant_staff")))
        for i, hour in enumerate((9, 13, 17)):
            events.append(SemanticEvent(
                event_id=f"boarding-{i}", room_id=rooms[2],
                start_time=hours(hour), duration=hours(1.2), days=alldays,
                capacity=50,
                eligible_profiles=("passenger", "airline_representative")))
        events.append(SemanticEvent(
            event_id="shopping", room_id=rooms[3], start_time=hours(14),
            duration=hours(2), days=alldays, capacity=40,
            eligible_profiles=("passenger", "store_staff")))
    return events
