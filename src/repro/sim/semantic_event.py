"""Semantic events: the spatio-temporal footprints people attend.

Per the paper's generator description, events "have an associated
spatio-temporal footprint — they are associated with spaces over time",
repeat periodically (a class, a meeting, a security-check shift, a
flight), constrain who may attend (profile eligibility) and how many
(capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.util.timeutil import SECONDS_PER_DAY


@dataclass(frozen=True, slots=True)
class SemanticEvent:
    """A recurring event anchored to one room.

    Attributes:
        event_id: Unique id.
        room_id: The room hosting the event.
        start_time: Seconds from midnight when the event starts.
        duration: Event length in seconds.
        days: Days of week the event occurs on (0=Mon .. 6=Sun).
        eligible_profiles: Profile names allowed to attend; empty means
            everyone is eligible.
        capacity: Maximum simultaneous attendees (paper: "number of
            students ... limited to be below a maximum enrollment").
    """

    event_id: str
    room_id: str
    start_time: float
    duration: float
    days: tuple[int, ...]
    eligible_profiles: tuple[str, ...] = ()
    capacity: int = 30

    def __post_init__(self) -> None:
        if not 0 <= self.start_time < SECONDS_PER_DAY:
            raise SimulationError(
                f"event start_time must be within a day, got {self.start_time}")
        if self.duration <= 0:
            raise SimulationError(
                f"event duration must be > 0, got {self.duration}")
        if self.start_time + self.duration > SECONDS_PER_DAY:
            raise SimulationError(
                f"event {self.event_id} spans midnight; split it instead")
        if not self.days:
            raise SimulationError(f"event {self.event_id} occurs on no days")
        if any(not 0 <= d <= 6 for d in self.days):
            raise SimulationError(
                f"event {self.event_id} has invalid days {self.days}")
        if self.capacity < 1:
            raise SimulationError(
                f"event {self.event_id} capacity must be >= 1")

    def occurs_on(self, day_of_week: int) -> bool:
        """Whether the event happens on the given weekday."""
        return day_of_week in self.days

    def eligible(self, profile_name: str) -> bool:
        """Whether a profile may attend."""
        return not self.eligible_profiles or \
            profile_name in self.eligible_profiles

    def __str__(self) -> str:
        hh = int(self.start_time // 3600)
        mm = int((self.start_time % 3600) // 60)
        return (f"Event {self.event_id} in {self.room_id} at "
                f"{hh:02d}:{mm:02d} ({self.duration / 60:.0f} min)")
