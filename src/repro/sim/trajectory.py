"""Trajectory generation: turning profiles + events into day plans.

For each person and day the generator decides presence, draws arrival and
departure times, enrolls the person into eligible semantic events (subject
to capacity), and fills the remaining time with preferred-room stays or
wandering into public rooms — balancing the fill so the realized share of
time in the preferred room tracks the person's predictability target.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.person import Person
from repro.sim.schedule import DayPlan, Visit
from repro.sim.semantic_event import SemanticEvent
from repro.space.building import Building
from repro.util.rng import make_rng
from repro.util.timeutil import (
    SECONDS_PER_DAY,
    TimeInterval,
    minutes,
)


class TrajectoryGenerator:
    """Generates room-level day plans for a population.

    Args:
        building: The space (provides rooms and public-room fill targets).
        events: Recurring semantic events people may attend.
        seed: RNG seed for the whole generation run.
    """

    def __init__(self, building: Building,
                 events: Sequence[SemanticEvent],
                 seed: "int | np.random.Generator | None" = 0) -> None:
        self._building = building
        self._events = list(events)
        self._rng = make_rng(seed)
        for event in self._events:
            if event.room_id not in building.rooms:
                raise SimulationError(
                    f"event {event.event_id} hosted in unknown room "
                    f"{event.room_id!r}")
        self._public_rooms = [r.room_id for r in building.public_rooms()]
        # Track attendance per (event, day) to respect capacities.
        self._attendance: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    def generate_day(self, person: Person, day: int) -> DayPlan:
        """One person's plan for one day (possibly empty: out of building)."""
        plan = DayPlan(person_id=person.person_id, day=day)
        profile = person.profile
        dow = day % 7
        is_weekend = dow >= 5

        present_p = (profile.weekend_probability if is_weekend
                     else 1.0 - profile.skip_day_probability)
        if self._rng.random() > present_p:
            return plan

        base = day * SECONDS_PER_DAY
        arrival = base + max(
            minutes(30),
            self._rng.normal(profile.arrival_mean, profile.arrival_std))
        stay = max(minutes(45),
                   self._rng.normal(profile.stay_mean, profile.stay_std))
        departure = min(arrival + stay, base + SECONDS_PER_DAY - minutes(10))
        if departure <= arrival:
            return plan

        # Enroll in eligible events that fit the stay window.
        enrolled: list[tuple[float, float, SemanticEvent]] = []
        for event in self._events:
            if not event.occurs_on(dow):
                continue
            if not event.eligible(profile.name):
                continue
            ev_start = base + event.start_time
            ev_end = ev_start + event.duration
            if ev_start < arrival or ev_end > departure:
                continue
            key = (event.event_id, day)
            if self._attendance.get(key, 0) >= event.capacity:
                continue
            if self._rng.random() <= profile.attendance_probability:
                if any(not (ev_end <= s or ev_start >= e)
                       for s, e, _ in enrolled):
                    continue  # clashes with an already-chosen event
                enrolled.append((ev_start, ev_end, event))
                self._attendance[key] = self._attendance.get(key, 0) + 1
        enrolled.sort()

        # Fill the timeline: events pin their slots; free slots alternate
        # between the preferred room and wandering so the realized
        # preferred-room share approaches the predictability target.
        cursor = arrival
        for ev_start, ev_end, event in enrolled:
            if ev_start > cursor:
                self._fill_free(plan, person, TimeInterval(cursor, ev_start))
            plan.append(Visit(room_id=event.room_id,
                              interval=TimeInterval(ev_start, ev_end),
                              reason=f"event:{event.event_id}"))
            cursor = ev_end
        if cursor < departure:
            self._fill_free(plan, person, TimeInterval(cursor, departure))
        return plan

    # ------------------------------------------------------------------
    def _fill_free(self, plan: DayPlan, person: Person,
                   window: TimeInterval) -> None:
        """Fill a free slot with preferred-room time and wandering."""
        profile = person.profile
        cursor = window.start
        while cursor < window.end - 60.0:
            # Segment lengths ~ 30-90 min keep plans realistic without
            # exploding visit counts.
            seg = float(self._rng.uniform(minutes(30), minutes(90)))
            seg_end = min(cursor + seg, window.end)
            target = person.predictability
            achieved = self._preferred_share(plan, person)
            go_preferred = (person.preferred_room is not None
                            and (achieved < target
                                 or self._rng.random()
                                 > profile.wander_probability))
            if go_preferred:
                room = person.preferred_room
                reason = "preferred"
            else:
                room = self._random_public_room(person)
                reason = "wander"
            plan.append(Visit(room_id=room,
                              interval=TimeInterval(cursor, seg_end),
                              reason=reason))
            cursor = seg_end
        if cursor < window.end:
            room = person.preferred_room or self._random_public_room(person)
            plan.append(Visit(room_id=room,
                              interval=TimeInterval(cursor, window.end),
                              reason="preferred" if person.preferred_room
                              else "wander"))

    def _preferred_share(self, plan: DayPlan, person: Person) -> float:
        """Fraction of today's planned time in the preferred room so far."""
        total = plan.total_time()
        if total <= 0 or person.preferred_room is None:
            return 0.0
        return plan.time_in_room(person.preferred_room) / total

    def _random_public_room(self, person: Person) -> str:
        """A random public room (falling back to any room)."""
        pool = self._public_rooms or sorted(self._building.rooms)
        choices = [r for r in pool if r != person.preferred_room] or pool
        return choices[int(self._rng.integers(len(choices)))]

    # ------------------------------------------------------------------
    def generate(self, people: Sequence[Person], days: int
                 ) -> dict[str, list[DayPlan]]:
        """Plans for the whole population over ``days`` days."""
        if days < 1:
            raise SimulationError(f"days must be >= 1, got {days}")
        out: dict[str, list[DayPlan]] = {}
        for person in people:
            out[person.person_id] = [self.generate_day(person, day)
                                     for day in range(days)]
        return out
