"""The simulator facade: scenario spec → complete dataset."""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.events.table import EventTable
from repro.events.validity import DeltaEstimator
from repro.sim.connectivity import ConnectivityGenerator
from repro.sim.dataset import Dataset
from repro.sim.person import Person
from repro.sim.scenarios import ScenarioSpec
from repro.sim.trajectory import TrajectoryGenerator
from repro.space.metadata import SpaceMetadata
from repro.util.rng import make_rng, spawn_seeds
from repro.util.timeutil import SECONDS_PER_DAY, TimeInterval


class Simulator:
    """Runs one scenario end to end.

    Pipeline: build the building → mint the population (assigning private
    rooms as preferred rooms to profiles that own one) → generate
    trajectories → emit connectivity events → ingest into an
    :class:`EventTable` with per-device δ estimation → bundle with the
    ground-truth plans.

    Args:
        spec: The scenario to simulate.
        emission_probability / sticky_ap_probability: Forwarded to the
            connectivity generator.
    """

    def __init__(self, spec: ScenarioSpec,
                 emission_probability: float = 0.65,
                 sticky_ap_probability: float = 0.35) -> None:
        self.spec = spec
        self.emission_probability = emission_probability
        self.sticky_ap_probability = sticky_ap_probability

    # ------------------------------------------------------------------
    def run(self, days: int = 14) -> Dataset:
        """Simulate ``days`` days and return the dataset."""
        if days < 1:
            raise SimulationError(f"days must be >= 1, got {days}")
        seeds = spawn_seeds(self.spec.seed, 4)
        building = self.spec.building_factory()
        people = self._mint_population(building, seeds[0])
        events_program = list(self.spec.event_program(building))

        trajectories = TrajectoryGenerator(building, events_program,
                                           seed=seeds[1])
        plans = trajectories.generate(people, days)

        connectivity = ConnectivityGenerator(
            building, seed=seeds[2],
            emission_probability=self.emission_probability,
            sticky_ap_probability=self.sticky_ap_probability)
        raw_events = connectivity.generate(people, plans)
        if not raw_events:
            raise SimulationError(
                f"scenario {self.spec.name!r} produced no connectivity "
                "events; population or days too small")

        table = EventTable.from_events(raw_events)
        # Register every device, including people whose device never
        # produced an event (e.g. visitors who skipped every day), so
        # queries about them answer "outside" instead of failing.
        for person in people:
            table.registry.intern(person.mac)
        DeltaEstimator().fit_table(table)

        metadata = SpaceMetadata(building)
        for person in people:
            if person.preferred_room is not None:
                metadata.set_preferred_rooms(person.mac,
                                             [person.preferred_room])

        return Dataset(
            building=building,
            metadata=metadata,
            table=table,
            people=people,
            plans=plans,
            span=TimeInterval(0.0, days * SECONDS_PER_DAY),
        )

    # ------------------------------------------------------------------
    def _mint_population(self, building, seed: int) -> list[Person]:
        """Create people, assigning preferred private rooms round-robin."""
        rng = make_rng(seed)
        private_rooms = sorted(r.room_id for r in building.private_rooms())
        if not private_rooms:
            private_rooms = sorted(building.rooms)
        people: list[Person] = []
        room_cursor = 0
        serial = 0
        for group in self.spec.groups:
            for _ in range(group.count):
                profile = group.profile
                if profile.has_preferred_room:
                    preferred = private_rooms[room_cursor
                                              % len(private_rooms)]
                    room_cursor += 1
                else:
                    preferred = None
                # Spread realized predictability around the profile target
                # so a population covers a band rather than a point.
                predictability = float(np.clip(
                    rng.normal(profile.predictability, 0.06), 0.05, 0.98))
                serial += 1
                people.append(Person(
                    person_id=f"{self.spec.name}-p{serial:04d}",
                    mac=f"{self.spec.name}-mac{serial:04d}",
                    profile=profile,
                    preferred_room=preferred,
                    predictability=predictability,
                ))
        if not people:
            raise SimulationError(
                f"scenario {self.spec.name!r} has an empty population")
        return people
