"""Day plans: the room-level trajectory of one person for one day."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.util.timeutil import TimeInterval


@dataclass(frozen=True, slots=True)
class Visit:
    """A contiguous stay in one room.

    Attributes:
        room_id: Where the person was.
        interval: When (absolute seconds).
        reason: Why (``"event:<id>"``, ``"preferred"``, ``"wander"``);
            useful for debugging generated behaviour.
    """

    room_id: str
    interval: TimeInterval
    reason: str = ""

    def __str__(self) -> str:
        return f"{self.room_id} {self.interval} ({self.reason})"


@dataclass(slots=True)
class DayPlan:
    """All of one person's visits for one day, chronological and disjoint."""

    person_id: str
    day: int
    visits: list[Visit] = field(default_factory=list)

    def append(self, visit: Visit) -> None:
        """Add a visit; it must start at or after the last one ends."""
        if self.visits and visit.interval.start < self.visits[-1].interval.end - 1e-9:
            raise ValueError(
                f"visit {visit} overlaps previous {self.visits[-1]}")
        self.visits.append(visit)

    def __iter__(self) -> Iterator[Visit]:
        return iter(self.visits)

    def __len__(self) -> int:
        return len(self.visits)

    @property
    def in_building(self) -> "TimeInterval | None":
        """Span from first arrival to last departure, or None if absent."""
        if not self.visits:
            return None
        return TimeInterval(self.visits[0].interval.start,
                            self.visits[-1].interval.end)

    def room_at(self, timestamp: float) -> "str | None":
        """Room occupied at ``timestamp``, or None (outside)."""
        for visit in self.visits:
            if visit.interval.contains(timestamp):
                return visit.room_id
        return None

    def time_in_room(self, room_id: str) -> float:
        """Total seconds spent in ``room_id`` during this day."""
        return sum(v.interval.duration for v in self.visits
                   if v.room_id == room_id)

    def total_time(self) -> float:
        """Total seconds spent inside the building during this day."""
        return sum(v.interval.duration for v in self.visits)
