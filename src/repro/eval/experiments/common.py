"""Shared plumbing for the experiment modules.

Datasets are memoized per parameter tuple so an experiment sweep (or a
benchmark session touching several experiments) simulates each world only
once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.sim.dataset import Dataset
from repro.sim.scenarios import ScenarioSpec
from repro.sim.simulator import Simulator


@lru_cache(maxsize=8)
def dbh_dataset(days: int = 14, population: int = 24,
                seed: int = 7) -> Dataset:
    """The DBH-like evaluation dataset (memoized)."""
    spec = ScenarioSpec.dbh_like(seed=seed, population=population)
    return Simulator(spec).run(days=days)


@lru_cache(maxsize=8)
def scenario_dataset(name: str, days: int = 10, seed: int = 11,
                     population_scale: float = 0.5) -> Dataset:
    """One of the paper's four simulated scenarios (memoized)."""
    spec = ScenarioSpec.by_name(name, seed=seed).scaled(population_scale)
    return Simulator(spec).run(days=days)


@lru_cache(maxsize=4)
def campus_dataset(days: int = 6, population: int = 48,
                   buildings: int = 3, seed: int = 17) -> Dataset:
    """The multi-building campus workload (memoized, deterministic)."""
    spec = ScenarioSpec.campus(seed=seed, population=population,
                               buildings=buildings)
    return Simulator(spec).run(days=days)


def clear_caches() -> None:
    """Drop memoized datasets (tests use this to control memory)."""
    dbh_dataset.cache_clear()
    scenario_dataset.cache_clear()
    campus_dataset.cache_clear()
