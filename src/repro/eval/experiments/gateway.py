"""Async gateway experiment: batching-window sweep + admission control.

Three measurements over one simulated workload, all driven through
:class:`~repro.serve.gateway.AsyncGateway` on a caching-on sharded
cluster with **process shards** — the production wiring, where every
window dispatch is a pipe round-trip with pickling.  That per-window
cost is precisely what micro-batching amortizes: the per-query baseline
pays it once per query, a coalescing window once per batch.

* **Window sweep (closed loop)** — N concurrent clients, each awaiting
  its answer before submitting the next query, against several
  (max_wait, max_batch) settings plus the one-query-per-batch baseline.
  Each setting runs the workload twice through its own fresh cluster:
  an untimed warm-up pass (models trained, caches and memos warm), then
  the measured steady-state pass.  Without the warm-up, first-window
  coarse-training dominates every setting equally and masks the
  dispatch/window trade-off the sweep exists to expose.  Reports
  per-setting p50/p99 call latency, throughput and the realized
  coalescing factor — the batching-window/latency trade-off in numbers.
* **Equivalence replay** — every sweep run records its journal (warm-up
  windows included); the realized schedule is replayed through plain
  ``locate_batch`` calls on an identically built cluster and must
  reproduce every answer and the summed §5 cache counters bitwise.
  :func:`run` *raises* on divergence (the repo's raise-on-divergence
  convention): the throughput numbers are never bought with changed
  answers.
* **Load shedding (open loop)** — a Poisson arrival burst far past the
  service rate against a small admission bound.  The gateway must shed
  with typed :class:`~repro.errors.GatewayOverloadedError` while the
  pending queue stays bounded — rejections, not unbounded latency.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.executor import ProcessShardExecutor
from repro.cluster.sharded import ShardedLocater
from repro.errors import GatewayOverloadedError, ReproError
from repro.eval.experiments.common import dbh_dataset
from repro.eval.reporting import format_table
from repro.serve.gateway import AsyncGateway, IngestRecord, WindowRecord
from repro.sim.scenarios import closed_loop_clients, open_loop_arrivals
from repro.system.streaming import MAX_SNAPSHOTS


@dataclass(slots=True)
class SweepPoint:
    """One batching-window setting, measured under closed-loop load."""

    label: str
    max_wait_ms: float
    max_batch: int
    queries: int
    windows: int
    coalescing: float
    throughput_qps: float
    p50_ms: float
    p99_ms: float
    identical: bool


@dataclass(slots=True)
class ShedOutcome:
    """Open-loop saturation run against a small admission bound."""

    offered: int
    served: int
    shed: int
    max_pending: int
    pending_peak: int

    @property
    def bounded(self) -> bool:
        """Whether queue depth stayed within the admission bound."""
        return self.pending_peak <= self.max_pending


@dataclass(slots=True)
class GatewayResult:
    """Window sweep + shedding outcome; renders the trade-off table."""

    points: list[SweepPoint]
    shed: ShedOutcome
    clients: int
    shard_count: int

    @property
    def baseline_qps(self) -> float:
        """Throughput of the one-query-per-batch configuration."""
        return next(p.throughput_qps for p in self.points
                    if p.max_batch == 1)

    @property
    def best_qps(self) -> float:
        """Best coalesced throughput in the sweep."""
        return max(p.throughput_qps for p in self.points
                   if p.max_batch > 1)

    @property
    def coalescing_speedup(self) -> float:
        """Best coalesced throughput over the per-query baseline."""
        return self.best_qps / max(self.baseline_qps, 1e-12)

    @property
    def all_identical(self) -> bool:
        """Whether every sweep run replayed bitwise."""
        return all(p.identical for p in self.points)

    def render(self) -> str:
        rows = [[p.label, f"{p.max_wait_ms:.0f}", p.max_batch, p.queries,
                 p.windows, f"{p.coalescing:.1f}",
                 f"{p.throughput_qps:.0f}", f"{p.p50_ms:.1f}",
                 f"{p.p99_ms:.1f}", "yes" if p.identical else "NO"]
                for p in self.points]
        table = format_table(
            ["setting", "wait (ms)", "max batch", "queries", "windows",
             "coalesce", "qps", "p50 (ms)", "p99 (ms)", "identical"],
            rows,
            title=(f"Gateway window sweep — {self.clients} closed-loop "
                   f"clients over {self.shard_count} shards"))
        return (f"{table}\n"
                f"coalescing speedup {self.coalescing_speedup:.1f}x over "
                f"per-query dispatch | shedding: {self.shed.shed}/"
                f"{self.shed.offered} rejected typed, queue peak "
                f"{self.shed.pending_peak} <= bound "
                f"{self.shed.max_pending}: {self.shed.bounded}")


#: The sweep: the per-query baseline plus three coalescing windows.
WINDOW_SETTINGS = (
    ("per-query", 0.0, 1),
    ("drain", 0.0, 64),
    ("2ms", 0.002, 64),
    ("10ms", 0.010, 128),
)


def _make_cluster(dataset, shard_count: int) -> ShardedLocater:
    """A fresh caching-on process-shard cluster over the dataset's table.

    Process shards are the wiring where window dispatch has a real
    price (pipe + pickle per call) and where warm state lives
    worker-side: each replica shard runs a persistent streaming session
    whose memos survive across windows.  The table is never ingested
    into during the sweep, so every run (and every replay) starts from
    the identical authoritative state.
    """
    return ShardedLocater(
        dataset.building, dataset.metadata, dataset.table,
        shard_count=shard_count, executor=ProcessShardExecutor())


async def _closed_loop(gateway: AsyncGateway,
                       streams: "list[list]") -> "tuple[list[float], float]":
    """Drive per-client streams; returns (latencies_seconds, wall)."""
    latencies: list[float] = []

    async def client(stream) -> None:
        for query in stream:
            begin = time.perf_counter()
            await gateway.locate_query(query)
            latencies.append(time.perf_counter() - begin)

    begin = time.perf_counter()
    await asyncio.gather(*(client(stream) for stream in streams))
    return latencies, time.perf_counter() - begin


def _replay_identical(dataset, shard_count: int, journal,
                      expected_stats) -> bool:
    """Replay a realized schedule through plain ``locate_batch``.

    Builds a second, identical cluster and replays the journal in
    serialization order: every window as one plain ``locate_batch``
    call, every ingest tick through ``cluster.ingest``.  In-process
    replicas thread a persistent cluster batch state through the calls;
    process replicas keep the equivalent state worker-side (their
    streaming sessions substitute it when none is passed).  Bitwise-
    compares every answer and the summed cache counters.
    """
    with _make_cluster(dataset, shard_count) as cluster:
        state = cluster.make_batch_state(max_snapshots=MAX_SNAPSHOTS) \
            if cluster.executor.in_process else None
        for record in journal:
            if isinstance(record, IngestRecord):
                cluster.ingest(record.events)
            elif isinstance(record, WindowRecord):
                expected = cluster.locate_batch(list(record.queries),
                                                state=state)
                if list(record.answers) != expected:
                    return False
        return cluster.cache_stats().total == expected_stats.total


def run(days: int = 10, population: int = 24, shard_count: int = 2,
        clients: int = 48, queries_per_client: int = 12,
        seed: int = 23) -> GatewayResult:
    """Sweep batching windows, prove equivalence, drive past saturation.

    Raises :class:`~repro.errors.ReproError` if any sweep run's replay
    diverges — equivalence is the experiment's correctness contract.
    """
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    streams = closed_loop_clients(dataset, clients=clients,
                                  queries_per_client=queries_per_client,
                                  seed=seed)
    total = clients * queries_per_client

    points: list[SweepPoint] = []
    for label, max_wait, max_batch in WINDOW_SETTINGS:
        with _make_cluster(dataset, shard_count) as cluster:
            gateway = AsyncGateway(cluster, max_wait=max_wait,
                                   max_batch=max_batch, journal=True)

            async def drive(gw=gateway):
                async with gw:
                    await _closed_loop(gw, streams)  # warm-up pass
                    warm = gw.stats()
                    measured = await _closed_loop(gw, streams)
                    return measured, warm

            (latencies, wall), warm = asyncio.run(drive())
            stats = gateway.stats()
            windows = stats.windows - warm.windows
            identical = _replay_identical(
                dataset, shard_count, gateway.journal,
                cluster.cache_stats())
        latencies_ms = np.asarray(latencies) * 1000.0
        points.append(SweepPoint(
            label=label, max_wait_ms=max_wait * 1000.0,
            max_batch=max_batch, queries=total, windows=windows,
            coalescing=total / max(windows, 1),
            throughput_qps=total / max(wall, 1e-12),
            p50_ms=float(np.percentile(latencies_ms, 50)),
            p99_ms=float(np.percentile(latencies_ms, 99)),
            identical=identical))

    if not all(p.identical for p in points):
        bad = [p.label for p in points if not p.identical]
        raise ReproError(
            f"gateway answers diverged from the locate_batch replay for "
            f"window setting(s): {', '.join(bad)}")

    # Saturation: a near-instantaneous Poisson burst, far past the
    # service rate, against a deliberately small admission bound.
    schedule = open_loop_arrivals(dataset, rate_per_second=50_000.0,
                                  count=6 * 64, seed=seed + 1)
    with _make_cluster(dataset, shard_count) as cluster:
        gateway = AsyncGateway(cluster, max_wait=0.02, max_batch=16,
                               max_pending=64)

        async def saturate(gw=gateway):
            served = 0
            shed = 0

            async def one(query) -> None:
                nonlocal served, shed
                try:
                    await gw.locate_query(query)
                    served += 1
                except GatewayOverloadedError:
                    shed += 1

            async with gw:
                begin = asyncio.get_running_loop().time()
                tasks = []
                for offset, query in zip(schedule.offsets,
                                         schedule.queries):
                    delay = offset - (
                        asyncio.get_running_loop().time() - begin)
                    if delay > 0:
                        await asyncio.sleep(delay)
                    tasks.append(asyncio.ensure_future(one(query)))
                await asyncio.gather(*tasks)
            return served, shed

        served, shed = asyncio.run(saturate())
        stats = gateway.stats()

    outcome = ShedOutcome(offered=len(schedule.queries), served=served,
                          shed=shed, max_pending=64,
                          pending_peak=stats.pending_peak)
    return GatewayResult(points=points, shed=outcome, clients=clients,
                         shard_count=shard_count)
