"""Fig. 12 — caching's effect on average query time (D-LOCATER).

The paper reports caching bringing D-LOCATER's per-query cost from ~5 s
to ~1 s.  Absolute numbers depend on the host; the shape to reproduce is
a large relative drop once the global affinity graph is warm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.queries import generated_query_set, labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_batch
from repro.eval.experiments.common import dbh_dataset
from repro.fine.localizer import FineMode
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class ScalabilityResult:
    """Mean per-query latency (ms) per variant per query set.

    Attributes:
        mean_ms: (variant, query set) → mean per-query latency.
        warmup_ms: (variant, query set) → (first-half, second-half) mean
            latency of the same run — the intra-run warm-up signal, which
            is robust against run-to-run load noise.
    """

    mean_ms: dict[tuple[str, str], float]
    warmup_ms: dict[tuple[str, str], tuple[float, float]]

    def cache_speedup(self, query_set: str) -> float:
        """uncached latency / cached latency."""
        plain = self.mean_ms[("D-LOCATER", query_set)]
        cached = self.mean_ms[("D-LOCATER+C", query_set)]
        return plain / cached if cached > 0 else 1.0

    def warmup_ratio(self, variant: str, query_set: str) -> float:
        """first-half latency / second-half latency (>1 = warming helps)."""
        first, second = self.warmup_ms[(variant, query_set)]
        return first / second if second > 0 else 1.0

    def render(self) -> str:
        """Print the comparison like Fig. 12."""
        rows = []
        for (variant, qset), ms in sorted(self.mean_ms.items()):
            first, second = self.warmup_ms[(variant, qset)]
            rows.append([variant, qset, f"{ms:.2f}",
                         f"{first:.2f}", f"{second:.2f}"])
        return format_table(
            ["variant", "query set", "ms/query", "first half",
             "second half"],
            rows, title="Fig 12: caching scalability (D-LOCATER)")


def run(days: int = 10, population: int = 18, per_device: int = 8,
        generated_count: int = 100, seed: int = 7) -> ScalabilityResult:
    """Compare D-LOCATER with and without the caching engine."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    query_sets = {
        "university": labeled_query_set(dataset, per_device=per_device,
                                        seed=seed),
        "generated": generated_query_set(dataset, count=generated_count,
                                         seed=seed),
    }
    mean_ms: dict[tuple[str, str], float] = {}
    warmup_ms: dict[tuple[str, str], tuple[float, float]] = {}
    for variant, use_caching in (("D-LOCATER", False), ("D-LOCATER+C", True)):
        for qset_name, queries in query_sets.items():
            # Paper cost model: affinities are re-derived from history on
            # every query (reuse_affinity_cache=False); the caching
            # engine's neighbor ordering + tighter bounds then cut the
            # number of neighbors whose history must be mined.
            config = LocaterConfig(fine_mode=FineMode.DEPENDENT,
                                   use_caching=use_caching,
                                   reuse_affinity_cache=False)
            system = Locater(dataset.building, dataset.metadata,
                             dataset.table, config=config)
            # Batch path for execution order, but with shared-state
            # memoization off: this figure ablates the caching engine,
            # and the batch memos would otherwise hand the non-cached
            # arm the same cross-query amortization for free.
            outcome = evaluate_batch(system, dataset, queries,
                                     record_latency=True,
                                     share_computation=False)
            mean_ms[(variant, qset_name)] = outcome.mean_query_ms
            latencies = outcome.per_query_seconds
            half = max(1, len(latencies) // 2)
            warmup_ms[(variant, qset_name)] = (
                1000.0 * sum(latencies[:half]) / half,
                1000.0 * sum(latencies[half:]) / max(1,
                                                     len(latencies) - half))
    return ScalabilityResult(mean_ms=mean_ms, warmup_ms=warmup_ms)
