"""Fig. 9 — impact of the caching engine on precision.

Caching replaces exact neighbor processing order with the global-affinity
order and tightens the early-stop bounds with cached caps, so it can trade
a little precision for speed.  Paper shape: the +C variants lose at most
5–10% overall precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.queries import labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate
from repro.eval.experiments.common import dbh_dataset
from repro.fine.localizer import FineMode
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class CachingPrecisionResult:
    """Po (percent) per system variant."""

    po: dict[str, float]

    def loss(self, base: str, cached: str) -> float:
        """Precision loss (percent points) of ``cached`` vs ``base``."""
        return self.po[base] - self.po[cached]

    def render(self) -> str:
        """Print Po per variant like Fig. 9's bars."""
        rows = [[name, f"{value:.1f}"]
                for name, value in self.po.items()]
        return format_table(["system", "Po (%)"], rows,
                            title="Fig 9: caching precision")


def run(days: int = 10, population: int = 18, per_device: int = 12,
        seed: int = 7) -> CachingPrecisionResult:
    """Evaluate I/D-LOCATER with and without the caching engine."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    queries = labeled_query_set(dataset, per_device=per_device, seed=seed)
    po: dict[str, float] = {}
    variants = {
        "I-LOCATER": LocaterConfig(fine_mode=FineMode.INDEPENDENT,
                                   use_caching=False),
        "I-LOCATER+C": LocaterConfig(fine_mode=FineMode.INDEPENDENT,
                                     use_caching=True),
        "D-LOCATER": LocaterConfig(fine_mode=FineMode.DEPENDENT,
                                   use_caching=False),
        "D-LOCATER+C": LocaterConfig(fine_mode=FineMode.DEPENDENT,
                                     use_caching=True),
    }
    for name, config in variants.items():
        system = Locater(dataset.building, dataset.metadata, dataset.table,
                         config=config)
        outcome = evaluate(system, dataset, queries)
        po[name] = 100.0 * outcome.counts.overall_precision
    return CachingPrecisionResult(po=po)
