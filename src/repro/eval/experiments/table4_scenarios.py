"""Table 4 — accuracy per profile on the four simulated scenarios.

For each of office / university / mall / airport, report Pc|Pf|Po per
person profile plus the margin of D-LOCATER's Po over Baseline2's.
Shape to reproduce: Pc stays high (≥ ~80%) everywhere; Pf is high for
predictable profiles (staff, employees) and low for transients
(passengers, random customers); LOCATER beats Baseline2 with the margin
shrinking for very unpredictable profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.metrics import PrecisionCounts
from repro.eval.queries import labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_batch, pooled_counts
from repro.eval.experiments.common import scenario_dataset
from repro.system.baselines import Baseline2
from repro.system.config import LocaterConfig
from repro.system.locater import Locater

#: Scenario order matches the paper's table (most → least predictable).
SCENARIOS = ("office", "university", "mall", "airport")


@dataclass(slots=True)
class ScenarioProfileResult:
    """Per-scenario, per-profile precision triples and baseline margins."""

    scenarios: list[str]
    profiles: dict[str, list[str]]
    cells: dict[tuple[str, str], tuple[float, float, float]]
    margins: dict[tuple[str, str], float]

    def triple(self, scenario: str,
               profile: str) -> tuple[float, float, float]:
        """(Pc, Pf, Po) for one scenario/profile."""
        return self.cells[(scenario, profile)]

    def margin(self, scenario: str, profile: str) -> float:
        """D-LOCATER Po minus Baseline2 Po (percent points)."""
        return self.margins[(scenario, profile)]

    def render(self) -> str:
        """Print one block per scenario like the paper's Table 4."""
        blocks = []
        for scenario in self.scenarios:
            rows = []
            for profile in self.profiles[scenario]:
                pc, pf, po = self.cells[(scenario, profile)]
                margin = self.margins[(scenario, profile)]
                rows.append([profile,
                             f"{pc:.0f}|{pf:.0f}|{po:.0f}({margin:+.0f})"])
            blocks.append(format_table(
                ["profile", "Pc|Pf|Po(margin)"], rows,
                title=f"Table 4 [{scenario}]"))
        return "\n\n".join(blocks)


def run(days: int = 8, per_device: int = 8, seed: int = 11,
        population_scale: float = 0.4,
        scenarios: "tuple[str, ...]" = SCENARIOS) -> ScenarioProfileResult:
    """Evaluate D-LOCATER and Baseline2 per profile on each scenario."""
    result = ScenarioProfileResult(scenarios=list(scenarios), profiles={},
                                   cells={}, margins={})
    for scenario in scenarios:
        dataset = scenario_dataset(scenario, days=days, seed=seed,
                                   population_scale=population_scale)
        queries = labeled_query_set(dataset, per_device=per_device,
                                    seed=seed)
        locater = Locater(dataset.building, dataset.metadata, dataset.table,
                          config=LocaterConfig())
        baseline = Baseline2(dataset.building, dataset.metadata,
                             dataset.table, seed=seed)
        # D-LOCATER goes through the batch engine; Baseline2 has no batch
        # entry point and falls back to the per-query loop inside.
        outcome = evaluate_batch(locater, dataset, queries)
        base_outcome = evaluate_batch(baseline, dataset, queries)

        profile_macs: dict[str, list[str]] = {}
        for person in dataset.people:
            profile_macs.setdefault(person.profile.name,
                                    []).append(person.mac)
        result.profiles[scenario] = sorted(profile_macs)
        for profile, macs in sorted(profile_macs.items()):
            counts: PrecisionCounts = pooled_counts(outcome, macs)
            base: PrecisionCounts = pooled_counts(base_outcome, macs)
            result.cells[(scenario, profile)] = (
                100.0 * counts.coarse_precision,
                100.0 * counts.fine_precision,
                100.0 * counts.overall_precision)
            result.margins[(scenario, profile)] = 100.0 * (
                counts.overall_precision - base.overall_precision)
    return result
