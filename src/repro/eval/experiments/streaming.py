"""Streaming ingestion experiment: fresh answers without full rebuilds.

The paper's Fig. 5 feeds association events from the wireless
controllers into the cleaning engine continuously; this experiment
replays a simulated day as interleaved ingest ticks and query bursts
(see :func:`repro.sim.scenarios.streaming_day_workload`) and compares
two ways of keeping served answers fresh:

* **incremental** — one long-lived :class:`~repro.system.streaming
  .StreamingSession`: events merge into the existing table in O(new),
  and surgical invalidation drops exactly the models/memos the new rows
  staled;
* **rebuild** — the pre-streaming alternative: rebuild the event table,
  re-estimate every δ and construct a fresh ``Locater`` at every tick.

Both must produce **bitwise-identical answers** at every burst (the
systems run without the caching engine and storage, whose warm state is
deliberate cross-query memory, so answers are pure functions of the
table); the result records per-tick latencies and the total
ingest-to-fresh-answer speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ReproError
from repro.eval.reporting import format_table
from repro.eval.experiments.common import dbh_dataset
from repro.events.table import EventTable
from repro.events.validity import DeltaEstimator
from repro.sim.scenarios import streaming_day_workload
from repro.system.config import LocaterConfig
from repro.system.ingestion import IngestionEngine
from repro.system.locater import Locater
from repro.system.streaming import StreamingSession


@dataclass(slots=True)
class StreamingTick:
    """Measured outcome of one ingest tick + query burst."""

    index: int
    ingested: int
    queries: int
    changed_devices: int
    incremental_seconds: float
    rebuild_seconds: float
    identical: bool


@dataclass(slots=True)
class StreamingResult:
    """Per-tick latencies of incremental serving vs full rebuilds."""

    ticks: list[StreamingTick]
    warmup_events: int
    full_invalidations: int

    @property
    def incremental_seconds(self) -> float:
        """Total ingest-to-fresh-answer time, incremental path."""
        return sum(t.incremental_seconds for t in self.ticks)

    @property
    def rebuild_seconds(self) -> float:
        """Total ingest-to-fresh-answer time, rebuild-per-tick path."""
        return sum(t.rebuild_seconds for t in self.ticks)

    @property
    def speedup(self) -> float:
        """Rebuild time over incremental time."""
        return self.rebuild_seconds / max(self.incremental_seconds, 1e-12)

    @property
    def all_identical(self) -> bool:
        """Whether every burst matched the cold rebuild bitwise."""
        return all(t.identical for t in self.ticks)

    def render(self) -> str:
        """Per-tick table plus the totals line."""
        rows = [[t.index, t.ingested, t.queries, t.changed_devices,
                 f"{1000 * t.incremental_seconds:.1f}",
                 f"{1000 * t.rebuild_seconds:.1f}",
                 "yes" if t.identical else "NO"]
                for t in self.ticks]
        table = format_table(
            ["tick", "events", "queries", "changed",
             "incremental (ms)", "rebuild (ms)", "identical"], rows,
            title=(f"Streaming day over {self.warmup_events} warm-up "
                   f"events ({self.full_invalidations} full "
                   "invalidation(s))"))
        return (f"{table}\n"
                f"total incremental {self.incremental_seconds:.2f}s | "
                f"total rebuild {self.rebuild_seconds:.2f}s | "
                f"speedup {self.speedup:.1f}x | "
                f"answers identical: {self.all_identical}")


def run(days: int = 28, population: int = 48, batches: int = 32,
        queries_per_burst: int = 4, seed: int = 13) -> StreamingResult:
    """Replay a streaming day both ways and time each tick.

    Raises :class:`~repro.errors.ReproError` if any burst's answers
    diverge from the cold rebuild — the equivalence is the experiment's
    correctness contract, not merely a reported column.
    """
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    workload = streaming_day_workload(dataset, batches=batches,
                                      queries_per_burst=queries_per_burst,
                                      seed=seed)
    config = LocaterConfig(use_caching=False)

    table = EventTable()
    engine = IngestionEngine(table)
    engine.ingest(workload.warmup)
    locater = Locater(dataset.building, dataset.metadata, table,
                      config=config)
    session = StreamingSession(locater, engine)

    ticks: list[StreamingTick] = []
    for batch in workload.batches:
        start = time.perf_counter()
        report = session.ingest(batch.ingest)
        streamed = session.query(batch.queries)
        incremental = time.perf_counter() - start

        start = time.perf_counter()
        cold_table = EventTable.from_events(
            workload.events_through(batch.index))
        DeltaEstimator().fit_table(cold_table)
        cold = Locater(dataset.building, dataset.metadata, cold_table,
                       config=config)
        expected = cold.locate_batch(batch.queries)
        rebuild = time.perf_counter() - start

        identical = streamed == expected
        if not identical:
            raise ReproError(
                f"streaming tick {batch.index} diverged from the cold "
                "rebuild — surgical invalidation missed a dependency")
        ticks.append(StreamingTick(
            index=batch.index, ingested=len(batch.ingest),
            queries=len(batch.queries), changed_devices=len(report.changed),
            incremental_seconds=incremental, rebuild_seconds=rebuild,
            identical=identical))
    return StreamingResult(ticks=ticks,
                           warmup_events=len(workload.warmup),
                           full_invalidations=session.full_invalidations)
