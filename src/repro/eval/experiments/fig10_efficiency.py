"""Fig. 10 — average time per query as the global affinity graph warms.

The paper plots, for I-LOCATER+C and D-LOCATER+C, the running average of
per-query time against the number of processed queries, on both the
university query set and a large generated set.  Shape to reproduce:
D-LOCATER+C starts expensive (cold cache) and converges to a much lower
steady state; I-LOCATER+C stays flat and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.queries import generated_query_set, labeled_query_set
from repro.eval.reporting import format_series
from repro.eval.runner import evaluate_batch
from repro.eval.experiments.common import dbh_dataset
from repro.fine.localizer import FineMode
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class EfficiencyResult:
    """Running-average per-query latency (ms) at checkpoints."""

    checkpoints: list[int]
    series: dict[tuple[str, str], list[float]]  # (system, query_set) → ms

    def curve(self, system: str, query_set: str) -> list[float]:
        """One latency curve."""
        return self.series[(system, query_set)]

    def warmup_ratio(self, system: str, query_set: str) -> float:
        """First-checkpoint latency divided by last-checkpoint latency."""
        curve = self.curve(system, query_set)
        if curve[-1] <= 0:
            return 1.0
        return curve[0] / curve[-1]

    def render(self) -> str:
        """Print each curve like the paper's two panels."""
        blocks = []
        for (system, qset), values in self.series.items():
            blocks.append(format_series(
                f"{system} on {qset} (running avg ms/query)",
                [str(c) for c in self.checkpoints], values, unit="ms"))
        return "\n".join(blocks)


def _running_average_ms(latencies: list[float],
                        checkpoints: list[int]) -> list[float]:
    csum = np.cumsum(latencies)
    out = []
    for checkpoint in checkpoints:
        k = min(checkpoint, len(latencies))
        out.append(1000.0 * float(csum[k - 1]) / k)
    return out


def run(days: int = 10, population: int = 18, per_device: int = 10,
        generated_count: int = 150, seed: int = 7,
        n_checkpoints: int = 6) -> EfficiencyResult:
    """Measure warm-up curves for both cached systems on both query sets."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    query_sets = {
        "university": labeled_query_set(dataset, per_device=per_device,
                                        seed=seed),
        "generated": generated_query_set(dataset, count=generated_count,
                                         seed=seed),
    }
    smallest = min(len(q) for q in query_sets.values())
    checkpoints = sorted({max(1, round(smallest * (i + 1) / n_checkpoints))
                          for i in range(n_checkpoints)})

    series: dict[tuple[str, str], list[float]] = {}
    for system_name, mode in (("I-LOCATER+C", FineMode.INDEPENDENT),
                              ("D-LOCATER+C", FineMode.DEPENDENT)):
        for qset_name, queries in query_sets.items():
            config = LocaterConfig(fine_mode=mode, use_caching=True)
            system = Locater(dataset.building, dataset.metadata,
                             dataset.table, config=config)
            # Batch path: latencies arrive in the planner's execution
            # order (bucket-granular chronological), which is the
            # warm-up order.  Shared-state memoization is off so the
            # curves show the caching engine warming — the quantity the
            # paper plots — not the batch memos filling up.
            outcome = evaluate_batch(system, dataset, queries,
                                     record_latency=True,
                                     share_computation=False)
            series[(system_name, qset_name)] = _running_average_ms(
                outcome.per_query_seconds, checkpoints)
    return EfficiencyResult(checkpoints=checkpoints, series=series)
