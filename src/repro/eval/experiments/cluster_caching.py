"""Cluster caching experiment: §5 caching under component routing.

The isolated-campus workload (disjoint per-building populations, so the
potential co-presence graph has one affinity component per building —
see :func:`~repro.sim.scenarios.isolated_campus_dataset`) is served at
several shard counts with the caching engine off and on, always routed
by the :class:`~repro.cluster.ComponentAffinityRouter`.  Two contracts
are enforced before any number is reported, each against the matching
lone :class:`~repro.system.locater.Locater`:

* **bitwise identity** — per caching setting, every cluster answers
  exactly what the lone system answers (component routing makes the
  per-shard caches exact, so this holds with caching ON too);
* **cache accounting** — with caching on, the shards' counters summed
  equal the lone engine's counters: the cluster performed the same
  cache traffic, merely partitioned.

What is *measured* is the speed half of Figs. 9/12 under sharding,
with Fig. 12's cost model (D-LOCATER, affinities re-derived from
history per query, cross-query memoization off, so the caching engine
is the only amortization in play): per shard count, the wall-clock
caching-on vs caching-off ratio (cluster overhead cancels — both arms
pay it) and the cluster-wide hit rate.  As with Fig. 12, the hit rate
and the exactness contracts are the deterministic signals; wall-clock
ratios on workloads this size carry container timing noise and are
reported for shape, not asserted tightly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from collections.abc import Sequence

from repro.cluster import ComponentAffinityRouter, ShardedLocater
from repro.errors import ReproError
from repro.eval.queries import generated_query_set, labeled_query_set
from repro.eval.reporting import format_table
from repro.fine.localizer import FineMode
from repro.sim.scenarios import isolated_campus_dataset
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


def _config(use_caching: bool) -> LocaterConfig:
    # Fig. 12's cost model: dependent fine mode, history re-mined per
    # query, so cached neighbor order + caps are the only shortcut.
    return LocaterConfig(fine_mode=FineMode.DEPENDENT,
                         use_caching=use_caching,
                         reuse_affinity_cache=False)


@dataclass(slots=True)
class CachingRun:
    """Measured outcome of one (shard count, caching setting) pair."""

    shards: int
    caching: bool
    seconds: float
    identical: bool
    hits: int
    misses: int

    @property
    def hit_rate(self) -> "float | None":
        """Cache hit rate, or None when caching was off (or saw no
        traffic)."""
        lookups = self.hits + self.misses
        if not self.caching or lookups == 0:
            return None
        return self.hits / lookups

    def qps(self, queries: int) -> float:
        return queries / max(self.seconds, 1e-12)


@dataclass(slots=True)
class ClusterCachingResult:
    """Caching on vs off at every shard count, plus workload shape."""

    runs: list[CachingRun]
    query_count: int
    event_count: int
    device_count: int
    component_count: int
    cpu_count: int
    workload: dict

    @property
    def all_identical(self) -> bool:
        """Whether every run matched its lone counterpart bitwise."""
        return all(run.identical for run in self.runs)

    def run_for(self, shards: int, caching: bool) -> CachingRun:
        for run in self.runs:
            if run.shards == shards and run.caching == caching:
                return run
        raise KeyError((shards, caching))

    def speedup(self, shards: int) -> float:
        """Caching-off time over caching-on time at one shard count."""
        off = self.run_for(shards, caching=False)
        on = self.run_for(shards, caching=True)
        return off.seconds / max(on.seconds, 1e-12)

    def render(self) -> str:
        """Fig. 9/12-style table: caching's serving effect per shard count."""
        rows = []
        for run in self.runs:
            rate = run.hit_rate
            rows.append([
                run.shards, "on" if run.caching else "off",
                f"{run.seconds:.2f}", f"{run.qps(self.query_count):.0f}",
                "-" if rate is None else f"{rate:.2f}",
                f"{self.speedup(run.shards):.2f}x" if run.caching else "-",
                "yes" if run.identical else "NO"])
        table = format_table(
            ["shards", "caching", "seconds", "qps", "hit rate",
             "speedup", "identical"], rows,
            title=(f"Cluster caching: {self.query_count} queries, "
                   f"{self.component_count} components, "
                   f"{self.device_count} devices, "
                   f"{self.event_count} events, "
                   f"{self.cpu_count} cpu(s)"))
        return (f"{table}\n"
                f"answers identical to lone system: {self.all_identical}")

    def to_json(self) -> dict:
        """Machine-readable mirror of :meth:`render` (one dict per run)."""
        return {
            "experiment": "cluster_caching",
            "workload": dict(self.workload,
                             query_count=self.query_count,
                             event_count=self.event_count,
                             device_count=self.device_count,
                             component_count=self.component_count,
                             cpu_count=self.cpu_count),
            "runs": [{
                "shards": run.shards,
                "caching": run.caching,
                "seconds": round(run.seconds, 4),
                "qps": round(run.qps(self.query_count), 1),
                "hit_rate": run.hit_rate,
                "speedup_vs_caching_off":
                    round(self.speedup(run.shards), 3)
                    if run.caching else None,
                "identical": run.identical,
            } for run in self.runs],
        }


def run(buildings: int = 3, population: int = 36, days: int = 10,
        labeled_per_device: int = 4, generated: int = 120,
        shard_counts: Sequence[int] = (1, 2, 4),
        seed: int = 17) -> ClusterCachingResult:
    """Serve the isolated campus with caching off and on per shard count.

    Raises :class:`~repro.errors.ReproError` on any divergence from the
    matching lone baseline (answers, or cache totals with caching on) —
    no speedup is ever bought with divergence.
    """
    dataset = isolated_campus_dataset(buildings=buildings,
                                      population=population, days=days,
                                      seed=seed)
    queries = labeled_query_set(dataset, per_device=labeled_per_device,
                                seed=seed + 1)
    queries += generated_query_set(dataset, count=generated,
                                   seed=seed + 2)

    expected: dict[bool, list] = {}
    lone_stats: "dict | None" = None
    for caching in (False, True):
        lone = Locater(dataset.building, dataset.metadata, dataset.table,
                       config=_config(caching))
        expected[caching] = lone.locate_batch(queries,
                                              share_computation=False)
        if caching:
            lone_stats = lone.cache.stats()

    runs: list[CachingRun] = []
    for shards in shard_counts:
        for caching in (False, True):
            # A fresh router per cluster: binding state is the router's.
            router = ComponentAffinityRouter.from_table(dataset.table,
                                                        dataset.building)
            with ShardedLocater(
                    dataset.building, dataset.metadata, dataset.table,
                    shard_count=shards, router=router,
                    config=_config(caching)) as cluster:
                start = time.perf_counter()
                answers = cluster.locate_batch(queries,
                                               share_computation=False)
                seconds = time.perf_counter() - start
                totals = cluster.cache_stats().total
            identical = answers == expected[caching] and \
                (not caching or totals == lone_stats)
            runs.append(CachingRun(
                shards=shards, caching=caching, seconds=seconds,
                identical=identical,
                hits=totals["hits"] if caching else 0,
                misses=totals["misses"] if caching else 0))
            if not identical:
                raise ReproError(
                    f"cluster ({shards} shards, caching="
                    f"{'on' if caching else 'off'}) diverged from the "
                    f"lone Locater")

    router = ComponentAffinityRouter.from_table(dataset.table,
                                                dataset.building)
    component_count = len({router.representative(mac)
                           for mac in dataset.macs()})
    return ClusterCachingResult(
        runs=runs, query_count=len(queries),
        event_count=dataset.event_count(),
        device_count=dataset.table.device_count,
        component_count=component_count,
        cpu_count=os.cpu_count() or 1,
        workload={"buildings": buildings, "population": population,
                  "days": days, "seed": seed,
                  "shard_counts": list(shard_counts),
                  "router": "component",
                  "cost_model": "dependent, per-query affinity mining, "
                                "no cross-query memoization"})
