"""Shared-memory vs replicated event tables under process sharding.

The zero-copy claim, measured: a cluster of N process-executor shards
either *replicates* the event table (fork copy-on-write, which turns
into N private copies as soon as replicas merge ingest batches) or
*attaches* the one shared-memory copy by segment name
(``ShardedLocater(..., shared_memory=True)``).  Both deployments are
served and streamed over the same campus workload, with three contracts
enforced before any number is reported:

* batch answers in both modes are bitwise identical to a lone
  :class:`~repro.system.locater.Locater` over the same table;
* post-ingest answers of both modes are bitwise identical to each
  other (the sync fan-out reproduces the replica merge exactly);
* the shared deployment's total column bytes stay within a small
  factor of a single copy, no matter the shard count.

The memory figures come from the column stores' logical byte
accounting — exact, and honest where resident-set sizes are not: under
fork, copy-on-write pages are counted in every child's RSS until
written, so RSS is reported only as an auxiliary signal.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from collections.abc import Sequence

from repro.cluster import ProcessShardExecutor, ShardedLocater
from repro.errors import ReproError
from repro.eval.queries import generated_query_set, labeled_query_set
from repro.eval.reporting import format_table
from repro.events.table import EventTable
from repro.events.validity import DeltaEstimator
from repro.sim.scenarios import ScenarioSpec, streaming_day_workload
from repro.sim.simulator import Simulator
from repro.system.config import LocaterConfig
from repro.system.locater import Locater

_CONFIG = LocaterConfig(use_caching=False)


@dataclass(slots=True)
class MemoryRun:
    """One deployment mode's measured serving, ingest and memory."""

    mode: str                  # "replicated" | "shared"
    shards: int
    batch_seconds: float       # cold batch over the warmup table
    ingest_seconds: float      # all ingest fan-outs, summed
    requery_seconds: float     # post-ingest batch
    identical: bool
    single_copy_bytes: int     # the parent table's column bytes
    total_column_bytes: int    # cluster-wide, shared segments counted once
    total_rss_kb: int          # parent + workers VmRSS (auxiliary)

    @property
    def copies(self) -> float:
        """Cluster-wide column bytes as a multiple of one table copy."""
        return self.total_column_bytes / max(self.single_copy_bytes, 1)


@dataclass(slots=True)
class SharedMemoryResult:
    """Replicated vs shared deployments over one campus workload."""

    runs: list[MemoryRun]
    query_count: int
    event_count: int
    device_count: int
    ingest_batches: int
    cpu_count: int
    workload: dict

    @property
    def all_identical(self) -> bool:
        return all(run.identical for run in self.runs)

    def run_for(self, mode: str) -> MemoryRun:
        for run in self.runs:
            if run.mode == mode:
                return run
        raise KeyError(mode)

    @property
    def memory_ratio(self) -> float:
        """Replicated over shared cluster-wide column bytes."""
        return (self.run_for("replicated").total_column_bytes /
                max(self.run_for("shared").total_column_bytes, 1))

    def render(self) -> str:
        rows = []
        for run in self.runs:
            rows.append([
                run.mode, run.shards,
                f"{run.total_column_bytes / 1024:.0f}",
                f"{run.copies:.2f}x",
                f"{run.total_rss_kb / 1024:.0f}",
                f"{run.batch_seconds:.2f}",
                f"{run.ingest_seconds:.2f}",
                f"{run.requery_seconds:.2f}",
                "yes" if run.identical else "NO"])
        table = format_table(
            ["mode", "shards", "columns KiB", "copies", "RSS MiB",
             "batch s", "ingest s", "requery s", "identical"], rows,
            title=(f"Shared-memory event tables: {self.query_count} "
                   f"queries, {self.event_count} events, "
                   f"{self.device_count} devices, "
                   f"{self.ingest_batches} ingest batches, "
                   f"{self.cpu_count} cpu(s)"))
        return (f"{table}\n"
                f"replicated / shared column bytes: "
                f"{self.memory_ratio:.2f}x\n"
                f"answers identical across modes and vs lone: "
                f"{self.all_identical}")

    def to_json(self) -> dict:
        return {
            "experiment": "shared_memory",
            "workload": dict(self.workload,
                             query_count=self.query_count,
                             event_count=self.event_count,
                             device_count=self.device_count,
                             ingest_batches=self.ingest_batches,
                             cpu_count=self.cpu_count),
            "memory_ratio_replicated_over_shared":
                round(self.memory_ratio, 3),
            "runs": [{
                "mode": run.mode,
                "shards": run.shards,
                "single_copy_bytes": run.single_copy_bytes,
                "total_column_bytes": run.total_column_bytes,
                "copies_of_table": round(run.copies, 3),
                "total_rss_kb": run.total_rss_kb,
                "batch_seconds": round(run.batch_seconds, 4),
                "ingest_seconds": round(run.ingest_seconds, 4),
                "requery_seconds": round(run.requery_seconds, 4),
                "batch_qps": round(
                    self.query_count / max(run.batch_seconds, 1e-12), 1),
                "identical": run.identical,
            } for run in self.runs],
        }


def _fresh_table(events) -> EventTable:
    table = EventTable.from_events(events)
    DeltaEstimator().fit_table(table)
    return table


def _total_rss(memory: dict) -> int:
    total = memory["parent"].get("rss_kb", 0)
    return total + sum(shard.get("rss_kb", 0)
                       for shard in memory["shards"])


def run(population: int = 24, days: int = 3, shards: int = 4,
        ingest_batches: int = 2, labeled_per_device: int = 2,
        generated: int = 40, seed: int = 17,
        modes: Sequence[str] = ("replicated", "shared")
        ) -> SharedMemoryResult:
    """Measure both deployment modes on one campus workload.

    Raises :class:`~repro.errors.ReproError` on any divergence — from
    the lone baseline, or between the two modes after ingest — so no
    memory saving is ever bought with changed answers.
    """
    dataset = Simulator(
        ScenarioSpec.campus(seed=seed, population=population)).run(days=days)
    workload = streaming_day_workload(dataset, batches=ingest_batches,
                                      queries_per_burst=1, seed=seed + 1)
    warm_events = list(workload.warmup)
    warm_macs = {event.mac for event in warm_events}
    queries = labeled_query_set(dataset, per_device=labeled_per_device,
                                seed=seed + 2)
    queries += generated_query_set(dataset, count=generated, seed=seed + 3)
    queries = [q for q in queries if q.mac in warm_macs]

    lone_table = _fresh_table(warm_events)
    lone = Locater(dataset.building, dataset.metadata, lone_table,
                   config=_CONFIG)
    expected = lone.locate_batch(queries)

    runs: list[MemoryRun] = []
    requeries: dict[str, list] = {}
    for mode in modes:
        table = _fresh_table(warm_events)
        try:
            with ShardedLocater(dataset.building, dataset.metadata,
                                table, shard_count=shards,
                                executor=ProcessShardExecutor(),
                                config=_CONFIG,
                                shared_memory=(mode == "shared")) as cluster:
                start = time.perf_counter()
                answers = cluster.locate_batch(queries)
                batch_seconds = time.perf_counter() - start
                start = time.perf_counter()
                for batch in workload.batches:
                    cluster.ingest(batch.ingest)
                ingest_seconds = time.perf_counter() - start
                start = time.perf_counter()
                requeries[mode] = cluster.locate_batch(queries)
                requery_seconds = time.perf_counter() - start
                memory = cluster.table_memory()
            identical = answers == expected
            if not identical:
                raise ReproError(
                    f"{mode} cluster diverged from the lone Locater")
            runs.append(MemoryRun(
                mode=mode, shards=shards,
                batch_seconds=batch_seconds,
                ingest_seconds=ingest_seconds,
                requery_seconds=requery_seconds,
                identical=identical,
                single_copy_bytes=memory["parent"]["column_bytes"],
                total_column_bytes=memory["total_column_bytes"],
                total_rss_kb=_total_rss(memory)))
        finally:
            table.close()

    if len(requeries) == 2 and \
            requeries["replicated"] != requeries["shared"]:
        for run_record in runs:
            run_record.identical = False
        raise ReproError(
            "post-ingest answers diverged between replicated and shared "
            "deployments")

    return SharedMemoryResult(
        runs=runs, query_count=len(queries),
        event_count=len(warm_events),
        device_count=len(warm_macs),
        ingest_batches=ingest_batches,
        cpu_count=os.cpu_count() or 1,
        workload={"population": population, "days": days,
                  "shards": shards, "seed": seed,
                  "executor": "process (fork)",
                  "scenario": "campus"})
