"""Fig. 7 — impact of the bootstrap thresholds τl and τh on Pc.

The paper varies τl from 10 to 30 minutes (fixing τh = 180) and τh from
60 to 180 minutes (fixing τl = 20), reporting coarse precision.  The
observed shape: Pc peaks around τl = 20 and rises with τh, levelling off
beyond ~170.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.queries import labeled_query_set
from repro.eval.reporting import format_series
from repro.eval.runner import evaluate
from repro.eval.experiments.common import dbh_dataset
from repro.sim.dataset import Dataset
from repro.system.config import LocaterConfig
from repro.system.locater import Locater
from repro.util.timeutil import minutes


@dataclass(slots=True)
class ThresholdSweepResult:
    """Pc series for the τl and τh sweeps (percent)."""

    tau_low_minutes: list[float]
    pc_by_tau_low: list[float]
    tau_high_minutes: list[float]
    pc_by_tau_high: list[float]

    def best_tau_low(self) -> float:
        """τl (minutes) with the highest Pc."""
        best = max(range(len(self.tau_low_minutes)),
                   key=lambda i: self.pc_by_tau_low[i])
        return self.tau_low_minutes[best]

    def best_tau_high(self) -> float:
        """τh (minutes) with the highest Pc."""
        best = max(range(len(self.tau_high_minutes)),
                   key=lambda i: self.pc_by_tau_high[i])
        return self.tau_high_minutes[best]

    def render(self) -> str:
        """Print both series like the paper's two panels."""
        left = format_series("Pc vs tau_l (tau_h=180min)",
                             [f"{v:.0f}min" for v in self.tau_low_minutes],
                             self.pc_by_tau_low, unit="%")
        right = format_series("Pc vs tau_h (tau_l=20min)",
                              [f"{v:.0f}min" for v in self.tau_high_minutes],
                              self.pc_by_tau_high, unit="%")
        return left + "\n" + right


def _coarse_precision(dataset: Dataset, tau_low: float, tau_high: float,
                      per_device: int, seed: int) -> float:
    config = LocaterConfig(tau_low=tau_low, tau_high=tau_high,
                           use_caching=False)
    system = Locater(dataset.building, dataset.metadata, dataset.table,
                     config=config)
    queries = labeled_query_set(dataset, per_device=per_device, seed=seed)
    result = evaluate(system, dataset, queries)
    return 100.0 * result.counts.coarse_precision


def run(days: int = 10, population: int = 18, per_device: int = 12,
        seed: int = 7,
        tau_low_grid: "tuple[float, ...]" = (10, 15, 20, 25, 30),
        tau_high_grid: "tuple[float, ...]" = (60, 90, 120, 150, 180),
        ) -> ThresholdSweepResult:
    """Run both threshold sweeps on a DBH-like dataset."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    pc_low = [_coarse_precision(dataset, minutes(tl), minutes(180),
                                per_device, seed)
              for tl in tau_low_grid]
    pc_high = [_coarse_precision(dataset, minutes(20), minutes(th),
                                 per_device, seed)
               for th in tau_high_grid]
    return ThresholdSweepResult(
        tau_low_minutes=list(tau_low_grid), pc_by_tau_low=pc_low,
        tau_high_minutes=list(tau_high_grid), pc_by_tau_high=pc_high)
