"""Table 3 — precision per predictability group, LOCATER vs baselines.

Rows: Baseline1, Baseline2, I-LOCATER, D-LOCATER; columns: the four
predictability bands; cells: Pc|Pf|Po.  Shape to reproduce: LOCATER
dominates Baseline1 everywhere and Baseline2 in every band except
(possibly) Pf in [85,100), where picking the metadata office is nearly
optimal for near-always-in-office users; D ≥ I throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.metrics import PrecisionCounts
from repro.eval.predictability import (
    PREDICTABILITY_BANDS,
    band_label,
    group_by_band,
)
from repro.eval.queries import labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate, pooled_counts
from repro.eval.experiments.common import dbh_dataset
from repro.fine.localizer import FineMode
from repro.system.baselines import Baseline1, Baseline2
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class BaselineComparisonResult:
    """(Pc, Pf, Po) percent triples keyed by (system, band)."""

    systems: list[str]
    bands: list[tuple[int, int]]
    cells: dict[tuple[str, tuple[int, int]], tuple[float, float, float]]
    band_sizes: dict[tuple[int, int], int]

    def triple(self, system: str,
               band: tuple[int, int]) -> tuple[float, float, float]:
        """The (Pc, Pf, Po) cell for a system and band."""
        return self.cells[(system, band)]

    def render(self) -> str:
        """Print the table in the paper's Pc|Pf|Po cell format."""
        headers = ["system"] + [
            f"{band_label(b)} n={self.band_sizes.get(b, 0)}"
            for b in self.bands]
        rows = []
        for system in self.systems:
            row = [system]
            for band in self.bands:
                pc, pf, po = self.cells[(system, band)]
                row.append(f"{pc:.0f}|{pf:.0f}|{po:.0f}")
            rows.append(row)
        return format_table(headers, rows,
                            title="Table 3: precision by user group "
                                  "(Pc|Pf|Po)")


def run(days: int = 10, population: int = 24, per_device: int = 12,
        seed: int = 7) -> BaselineComparisonResult:
    """Compare the four systems across the predictability bands."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    band_map = group_by_band(dataset)
    queries = labeled_query_set(dataset, per_device=per_device, seed=seed)

    systems = {
        "Baseline1": Baseline1(dataset.building, dataset.metadata,
                               dataset.table, seed=seed),
        "Baseline2": Baseline2(dataset.building, dataset.metadata,
                               dataset.table, seed=seed),
        "I-LOCATER": Locater(dataset.building, dataset.metadata,
                             dataset.table,
                             config=LocaterConfig(
                                 fine_mode=FineMode.INDEPENDENT)),
        "D-LOCATER": Locater(dataset.building, dataset.metadata,
                             dataset.table,
                             config=LocaterConfig(
                                 fine_mode=FineMode.DEPENDENT)),
    }

    cells: dict[tuple[str, tuple[int, int]],
                tuple[float, float, float]] = {}
    for name, system in systems.items():
        outcome = evaluate(system, dataset, queries)
        for band in PREDICTABILITY_BANDS:
            macs = band_map.get(band, [])
            counts: PrecisionCounts = pooled_counts(outcome, macs)
            cells[(name, band)] = (
                100.0 * counts.coarse_precision,
                100.0 * counts.fine_precision,
                100.0 * counts.overall_precision)
    return BaselineComparisonResult(
        systems=list(systems.keys()),
        bands=list(PREDICTABILITY_BANDS),
        cells=cells,
        band_sizes={b: len(band_map.get(b, [])) for b
                    in PREDICTABILITY_BANDS})
