"""Cluster scaling experiment: throughput versus shard count and executor.

The campus workload (multi-building space model, commuter devices, see
:meth:`repro.sim.scenarios.ScenarioSpec.campus`) is served three ways —
a lone :class:`~repro.system.locater.Locater` baseline, then a
:class:`~repro.cluster.ShardedLocater` for every (shard count,
executor) combination — and every configuration's answers are verified
**bitwise identical** to the baseline before its throughput is
reported, so no speedup is ever bought with divergence.  A final
configuration swaps the hash router for the
:class:`~repro.cluster.BuildingAffinityRouter` to show routing by
campus building on the same workload.

Executors tell three different stories on purpose:

* ``serial`` isolates pure partition-and-merge overhead;
* ``thread`` is GIL-bound on this pure-Python pipeline, so it measures
  dispatch overhead more than parallelism;
* ``process`` forks one worker per shard and scales with the machine's
  cores — on a single-core host it degrades to serial-plus-pickling,
  which the result records honestly (``cpu_count`` is part of the
  rendered output).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.cluster import (
    BuildingAffinityRouter,
    HashRouter,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardedLocater,
    ThreadShardExecutor,
)
from repro.errors import ReproError
from repro.eval.experiments.common import campus_dataset
from repro.eval.queries import generated_query_set
from repro.eval.reporting import format_table
from repro.space.blueprints import campus_ap_buildings
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class ClusterRun:
    """Measured outcome of one cluster configuration."""

    shards: int
    executor: str
    router: str
    seconds: float
    identical: bool

    def qps(self, queries: int) -> float:
        return queries / max(self.seconds, 1e-12)


@dataclass(slots=True)
class ClusterScalingResult:
    """Baseline vs every (shard count, executor, router) combination."""

    runs: list[ClusterRun]
    query_count: int
    baseline_seconds: float
    event_count: int
    device_count: int
    cpu_count: int

    @property
    def all_identical(self) -> bool:
        """Whether every configuration matched the lone system bitwise."""
        return all(run.identical for run in self.runs)

    def speedup(self, run: ClusterRun) -> float:
        """Baseline time over this configuration's time."""
        return self.baseline_seconds / max(run.seconds, 1e-12)

    def best(self, executor: str) -> "ClusterRun | None":
        """The fastest run of one executor kind."""
        candidates = [run for run in self.runs if run.executor == executor]
        return min(candidates, key=lambda run: run.seconds) \
            if candidates else None

    def render(self) -> str:
        """Scaling table plus the baseline line."""
        rows = [[run.shards, run.executor, run.router,
                 f"{run.seconds:.2f}", f"{run.qps(self.query_count):.0f}",
                 f"{self.speedup(run):.2f}x",
                 "yes" if run.identical else "NO"]
                for run in self.runs]
        table = format_table(
            ["shards", "executor", "router", "seconds", "qps",
             "vs lone", "identical"], rows,
            title=(f"Campus cluster scaling: {self.query_count} queries, "
                   f"{self.event_count} events, {self.device_count} "
                   f"devices, {self.cpu_count} cpu(s)"))
        baseline_qps = self.query_count / max(self.baseline_seconds, 1e-12)
        return (f"{table}\n"
                f"lone Locater baseline {self.baseline_seconds:.2f}s "
                f"({baseline_qps:.0f} qps) | "
                f"answers identical: {self.all_identical}")


def run(days: int = 6, population: int = 48, buildings: int = 3,
        queries: int = 600, shard_counts: Sequence[int] = (1, 2, 4),
        seed: int = 17) -> ClusterScalingResult:
    """Serve one campus query batch under every cluster configuration.

    Raises :class:`~repro.errors.ReproError` on any divergence from the
    lone baseline — bitwise identity is the experiment's correctness
    contract, not merely a reported column.
    """
    dataset = campus_dataset(days=days, population=population,
                             buildings=buildings, seed=seed)
    batch = generated_query_set(dataset, count=queries, seed=seed + 1)
    # Caching off: cluster answers are then pure functions of the table,
    # which is what makes cross-configuration bitwise comparison valid
    # (the caching engine is deliberate cross-query warm state and would
    # make even two differently-ordered lone runs diverge).
    config = LocaterConfig(use_caching=False)

    lone = Locater(dataset.building, dataset.metadata, dataset.table,
                   config=config)
    start = time.perf_counter()
    expected = lone.locate_batch(batch)
    baseline_seconds = time.perf_counter() - start

    executors: "list[tuple[str, Callable[[], object]]]" = [
        ("serial", SerialShardExecutor),
        ("thread", ThreadShardExecutor),
        ("process", ProcessShardExecutor),
    ]
    runs: list[ClusterRun] = []

    def measure(shards: int, executor_name: str, executor_factory,
                router, router_name: str) -> None:
        with ShardedLocater(dataset.building, dataset.metadata,
                            dataset.table, shard_count=shards,
                            router=router, executor=executor_factory(),
                            config=config) as cluster:
            start = time.perf_counter()
            answers = cluster.locate_batch(batch)
            seconds = time.perf_counter() - start
        identical = answers == expected
        # Recorded before the divergence check so a caller catching the
        # raise still sees the failed configuration in the partial runs.
        runs.append(ClusterRun(shards=shards, executor=executor_name,
                               router=router_name, seconds=seconds,
                               identical=identical))
        if not identical:
            raise ReproError(
                f"cluster ({shards} shards, {executor_name}, "
                f"{router_name}) diverged from the lone Locater")

    for shards in shard_counts:
        for executor_name, executor_factory in executors:
            measure(shards, executor_name, executor_factory,
                    HashRouter(), "hash")
    # Building-affinity routing on the widest configuration: same
    # answers, load partitioned along campus-building lines.
    affinity = BuildingAffinityRouter.from_table(
        dataset.table, campus_ap_buildings(dataset.building))
    measure(max(shard_counts), "process", ProcessShardExecutor,
            affinity, "building")

    return ClusterScalingResult(
        runs=runs, query_count=len(batch),
        baseline_seconds=baseline_seconds,
        event_count=dataset.event_count(),
        device_count=dataset.table.device_count,
        cpu_count=os.cpu_count() or 1)
