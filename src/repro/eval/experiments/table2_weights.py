"""Table 2 — impact of room-affinity weights on fine precision.

The paper evaluates four (w^pf, w^pb, w^pr) combinations for I-FINE and
D-FINE.  Shape to reproduce: precision is insensitive to the choice, C2
is (slightly) best, and D-FINE beats I-FINE by a few points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.queries import labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate
from repro.eval.experiments.common import dbh_dataset
from repro.fine.affinity import TABLE2_COMBINATIONS
from repro.fine.localizer import FineMode
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class WeightSweepResult:
    """Pf (percent) per combination per mode."""

    combinations: list[str]
    pf_independent: dict[str, float]
    pf_dependent: dict[str, float]

    def best_combination(self, mode: str = "D-FINE") -> str:
        """Combination with the highest Pf under the given mode."""
        table = (self.pf_dependent if mode == "D-FINE"
                 else self.pf_independent)
        return max(self.combinations, key=lambda c: table[c])

    def mean_gap_dependent_minus_independent(self) -> float:
        """Average Pf advantage of D-FINE over I-FINE (percent points)."""
        gaps = [self.pf_dependent[c] - self.pf_independent[c]
                for c in self.combinations]
        return sum(gaps) / len(gaps)

    def render(self) -> str:
        """Print the table like the paper's Table 2."""
        rows = [
            ["I-FINE"] + [f"{self.pf_independent[c]:.1f}"
                          for c in self.combinations],
            ["D-FINE"] + [f"{self.pf_dependent[c]:.1f}"
                          for c in self.combinations],
        ]
        return format_table(["Pf"] + self.combinations, rows,
                            title="Table 2: impact of room affinity weights")


def run(days: int = 10, population: int = 18, per_device: int = 12,
        seed: int = 7) -> WeightSweepResult:
    """Evaluate every Table-2 weight combination under both modes."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    queries = labeled_query_set(dataset, per_device=per_device, seed=seed)
    pf_i: dict[str, float] = {}
    pf_d: dict[str, float] = {}
    for name, weights in TABLE2_COMBINATIONS.items():
        for mode, sink in ((FineMode.INDEPENDENT, pf_i),
                           (FineMode.DEPENDENT, pf_d)):
            config = LocaterConfig(room_weights=weights, fine_mode=mode,
                                   use_caching=False)
            system = Locater(dataset.building, dataset.metadata,
                             dataset.table, config=config)
            result = evaluate(system, dataset, queries)
            sink[name] = 100.0 * result.counts.fine_precision
    return WeightSweepResult(
        combinations=list(TABLE2_COMBINATIONS.keys()),
        pf_independent=pf_i, pf_dependent=pf_d)
