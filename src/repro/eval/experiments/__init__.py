"""Per-table / per-figure experiment modules (paper §6).

Every module exposes a ``run(...)`` returning a structured result with a
``render()`` method that prints the same rows/series the paper reports:

================  =========================================================
Module            Paper artifact
================  =========================================================
fig7_thresholds   Fig. 7 — Pc vs τl and τh
table2_weights    Table 2 — Pf per room-affinity weight combination
fig8_history      Fig. 8 — Pc/Pf/Po vs weeks of historical data
fig9_caching      Fig. 9 — precision with vs without caching
table3_baselines  Table 3 — Pc|Pf|Po per predictability group vs baselines
table4_scenarios  Table 4 — precision per profile on simulated scenarios
fig10_efficiency  Fig. 10 — avg time/query vs #processed queries
fig11_stopcond    Fig. 11 — stop conditions on vs off
fig12_scalability Fig. 12 — caching on vs off (D-LOCATER)
streaming         Fig. 5 live loop — incremental ingest vs full rebuild
cluster_scaling   throughput vs shard count/executor (extension)
cluster_caching   Fig. 9's speedup half under sharding (extension)
shared_memory     replicated vs zero-copy shared tables (extension)
================  =========================================================
"""

from repro.eval.experiments import common

__all__ = ["common"]
