"""Fig. 11 — effect of the loosened stop conditions on efficiency.

Without stop conditions Algorithm 2 processes every neighbor; with them
it can answer after a handful.  Shape to reproduce: a substantially lower
average time per query with stop conditions enabled, at (near) equal
precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.queries import generated_query_set, labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate
from repro.eval.experiments.common import dbh_dataset
from repro.fine.localizer import FineMode
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class StopConditionResult:
    """Mean per-query latency (ms) and Po (%) with/without early stop."""

    mean_ms: dict[tuple[str, str], float]   # (variant, query_set) → ms
    po: dict[str, float]                    # variant → overall precision
    neighbors_processed: dict[str, float]   # variant → mean neighbors

    def speedup(self, query_set: str) -> float:
        """no-stop latency / with-stop latency on one query set."""
        without = self.mean_ms[("no-stop", query_set)]
        with_stop = self.mean_ms[("stop", query_set)]
        return without / with_stop if with_stop > 0 else 1.0

    def render(self) -> str:
        """Print the comparison like Fig. 11's bars."""
        rows = []
        for (variant, qset), ms in sorted(self.mean_ms.items()):
            rows.append([variant, qset, f"{ms:.2f}",
                         f"{self.po[variant]:.1f}",
                         f"{self.neighbors_processed[variant]:.1f}"])
        return format_table(
            ["variant", "query set", "ms/query", "Po (%)",
             "mean neighbors"],
            rows, title="Fig 11: stop conditions")


def run(days: int = 10, population: int = 18, per_device: int = 8,
        generated_count: int = 100, seed: int = 7) -> StopConditionResult:
    """Compare I-LOCATER with and without the loosened stop conditions."""
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    query_sets = {
        "university": labeled_query_set(dataset, per_device=per_device,
                                        seed=seed),
        "generated": generated_query_set(dataset, count=generated_count,
                                         seed=seed),
    }
    mean_ms: dict[tuple[str, str], float] = {}
    po: dict[str, float] = {}
    neighbors: dict[str, float] = {}
    for variant, use_stop in (("stop", True), ("no-stop", False)):
        processed: list[int] = []
        for qset_name, queries in query_sets.items():
            # Paper cost model: affinities re-derived from history per
            # query (reuse_affinity_cache=False), so processing fewer
            # neighbors is what saves time.
            config = LocaterConfig(fine_mode=FineMode.INDEPENDENT,
                                   use_stop_conditions=use_stop,
                                   use_caching=False,
                                   reuse_affinity_cache=False)
            system = Locater(dataset.building, dataset.metadata,
                             dataset.table, config=config)

            outcome = evaluate(system, dataset, queries,
                               record_latency=True)
            mean_ms[(variant, qset_name)] = outcome.mean_query_ms
            if qset_name == "university":
                po[variant] = 100.0 * outcome.counts.overall_precision
        # Re-run a few queries to sample neighbor counts processed.
        config = LocaterConfig(fine_mode=FineMode.INDEPENDENT,
                               use_stop_conditions=use_stop,
                               use_caching=False,
                               reuse_affinity_cache=False)
        system = Locater(dataset.building, dataset.metadata, dataset.table,
                         config=config)
        for query in query_sets["university"][:30]:
            answer = system.locate(query.mac, query.timestamp)
            if answer.fine is not None:
                processed.append(answer.fine.neighbors_processed)
        neighbors[variant] = (sum(processed) / len(processed)
                              if processed else 0.0)
    return StopConditionResult(mean_ms=mean_ms, po=po,
                               neighbors_processed=neighbors)
