"""Cluster recovery experiment: the cost and exactness of resurrection.

A sharded cluster serves a batched query workload while a scripted
:class:`~repro.cluster.faults.FaultPlan` SIGKILLs its busiest shard
mid-workload (once per configured kill, at deterministic dispatch
indices).  A supervised cluster absorbs every kill — the worker is
resurrected from the factory, its §5 cache restored from the last
checkpoint, and only its slice re-dispatched — and the experiment
*verifies* the recovered run bitwise against an uninterrupted control
running the identical batch splits: answers and summed cache counters
must match exactly, or the run raises.  What gets measured on top:

* **recovery latency** — per episode, detection to serving replacement
  (:attr:`~repro.cluster.supervision.RecoveryEvent.duration_seconds`);
* **availability** — fraction of queries answered across the whole
  chaos run (1.0 when every kill is absorbed within budget);
* **disruption overhead** — chaos wall time over control wall time,
  the price of dying ``kills`` times mid-workload.
"""

from __future__ import annotations

import statistics
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.cluster import (
    ComponentAffinityRouter,
    Fault,
    FaultInjectingExecutor,
    FaultPlan,
    ProcessShardExecutor,
    RecoveryPolicy,
    SerialShardExecutor,
    ShardedLocater,
    ThreadShardExecutor,
)
from repro.errors import ConfigurationError, ReproError
from repro.eval.queries import generated_query_set
from repro.eval.reporting import format_table
from repro.sim.scenarios import isolated_campus_dataset

_EXECUTORS = {
    "serial": SerialShardExecutor,
    "thread": ThreadShardExecutor,
    "process": ProcessShardExecutor,
}


@dataclass(slots=True)
class ClusterRecoveryResult:
    """Verified outcome of one chaos run against its control."""

    episodes: list[dict] = field(default_factory=list)
    query_count: int = 0
    batch_count: int = 0
    shard_count: int = 0
    victim_shard: int = 0
    kills: int = 0
    executor: str = "process"
    control_seconds: float = 0.0
    chaos_seconds: float = 0.0
    availability: float = 0.0
    equivalence_verified: bool = False

    def recovery_seconds(self) -> dict[str, float]:
        """Latency stats over the run's recovery episodes."""
        durations = [episode["duration_seconds"]
                     for episode in self.episodes]
        if not durations:
            return {}
        return {
            "min": min(durations),
            "median": statistics.median(durations),
            "mean": statistics.fmean(durations),
            "max": max(durations),
        }

    @property
    def disruption_overhead(self) -> float:
        """Chaos wall time over control wall time (1.0 = free kills)."""
        return self.chaos_seconds / max(self.control_seconds, 1e-12)

    def render(self) -> str:
        rows = [[episode["shard_id"], episode["method"],
                 episode["outcome"], episode["restarts"],
                 f"{episode['duration_seconds'] * 1e3:.1f}"]
                for episode in self.episodes]
        table = format_table(
            ["shard", "method", "outcome", "restarts", "latency_ms"],
            rows,
            title=(f"Cluster recovery: {self.kills} kill(s) of shard "
                   f"{self.victim_shard} across {self.batch_count} "
                   f"batches, {self.query_count} queries, "
                   f"{self.shard_count} {self.executor} shards"))
        latency = self.recovery_seconds()
        latency_line = (
            f"recovery latency ms: "
            f"median {latency.get('median', 0.0) * 1e3:.1f}, "
            f"max {latency.get('max', 0.0) * 1e3:.1f}"
            if latency else "recovery latency: no episodes")
        return (f"{table}\n{latency_line}\n"
                f"availability {self.availability:.3f} | "
                f"chaos {self.chaos_seconds:.2f}s vs control "
                f"{self.control_seconds:.2f}s "
                f"({self.disruption_overhead:.2f}x) | "
                f"bitwise identical: {self.equivalence_verified}")


def run(buildings: int = 3, population: int = 24, days: int = 3,
        queries: int = 60, shards: int = 4, batches: int = 3,
        kills: int = 2, executor: str = "process",
        seed: int = 17) -> ClusterRecoveryResult:
    """Chaos run vs uninterrupted control over identical batch splits.

    Raises :class:`~repro.errors.ReproError` if the recovered cluster's
    answers or summed cache counters diverge from the control — bitwise
    recovery is the experiment's correctness contract, not a column.
    """
    if executor not in _EXECUTORS:
        raise ConfigurationError(
            f"executor must be one of {sorted(_EXECUTORS)}, "
            f"got {executor!r}")
    if batches < kills + 1:
        raise ConfigurationError(
            f"need at least kills+1 batches so every kill lands on a "
            f"serving dispatch, got batches={batches}, kills={kills}")
    dataset = isolated_campus_dataset(buildings=buildings,
                                      population=population, days=days,
                                      seed=seed)
    batch = generated_query_set(dataset, count=queries, seed=seed + 1)
    size = max(1, len(batch) // batches)
    chunks = [batch[index * size:(index + 1) * size]
              for index in range(batches - 1)]
    chunks.append(batch[(batches - 1) * size:])

    def router():
        return ComponentAffinityRouter.from_table(dataset.table,
                                                  dataset.building)

    victim = Counter(router().shard_of(query.mac, shards)
                     for query in batch).most_common(1)[0][0]

    with ShardedLocater(dataset.building, dataset.metadata,
                        dataset.table, shard_count=shards,
                        router=router()) as control:
        start = time.perf_counter()
        expected = [control.locate_batch(chunk) for chunk in chunks]
        control_seconds = time.perf_counter() - start
        expected_totals = control.cache_stats().total

    # Kill j fires on the victim's (2j+1)-th locate_batch dispatch:
    # even indices are the scripted batches themselves interleaved with
    # the recovery re-dispatches each kill provokes (see the chaos
    # suite's repeated-kill test for the arithmetic).
    plan = FaultPlan([
        Fault(shard_id=victim, kind="kill", method="locate_batch",
              call_index=2 * index + 1)
        for index in range(kills)])
    injector = FaultInjectingExecutor(_EXECUTORS[executor](), plan)
    with ShardedLocater(dataset.building, dataset.metadata,
                        dataset.table, shard_count=shards,
                        router=router(), executor=injector,
                        recovery=RecoveryPolicy(max_restarts=kills,
                                                backoff=(0.0,))
                        ) as cluster:
        start = time.perf_counter()
        got = [cluster.locate_batch(chunk) for chunk in chunks]
        chaos_seconds = time.perf_counter() - start
        got_totals = cluster.cache_stats().total
        episodes = [{
            "shard_id": episode.shard_id,
            "method": episode.method,
            "error": episode.error,
            "restarts": episode.restarts,
            "outcome": episode.outcome,
            "duration_seconds": episode.duration_seconds,
        } for episode in cluster.recovery_events]

    answered = sum(len(chunk_answers) for chunk_answers in got)
    identical = got == expected and got_totals == expected_totals
    result = ClusterRecoveryResult(
        episodes=episodes, query_count=len(batch),
        batch_count=len(chunks), shard_count=shards,
        victim_shard=victim, kills=kills, executor=executor,
        control_seconds=control_seconds, chaos_seconds=chaos_seconds,
        availability=answered / max(len(batch), 1),
        equivalence_verified=identical)
    if not plan.exhausted:
        raise ReproError(
            f"fault plan did not exhaust: {len(plan.pending)} fault(s) "
            f"never fired — the workload shape no longer reaches them")
    if not identical:
        raise ReproError(
            "recovered cluster diverged from the uninterrupted control "
            "(answers or cache counters); recovery is not bitwise")
    return result
