"""Fig. 8 — impact of the amount of historical data on precision.

The paper trains on 0..9 weeks of history and reports Pc, Pf and Po for
the [40,55) and [55,70) predictability groups.  Shape to reproduce:
precision rises with history; Pc plateaus late (~8 weeks), Pf plateaus
early (~3 weeks) and roughly doubles from 0 to 1 week of data; the
overall curve follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.eval.predictability import band_label, group_by_band
from repro.eval.queries import labeled_query_set
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate, pooled_counts
from repro.eval.experiments.common import dbh_dataset
from repro.system.config import LocaterConfig
from repro.system.locater import Locater


@dataclass(slots=True)
class HistorySweepResult:
    """Per-band Pc/Pf/Po (percent) per history length (weeks)."""

    weeks: list[float]
    bands: list[tuple[int, int]]
    pc: dict[tuple[int, int], list[float]] = field(default_factory=dict)
    pf: dict[tuple[int, int], list[float]] = field(default_factory=dict)
    po: dict[tuple[int, int], list[float]] = field(default_factory=dict)

    def series(self, metric: str,
               band: tuple[int, int]) -> list[float]:
        """One curve: metric in {"Pc", "Pf", "Po"} for one band."""
        return {"Pc": self.pc, "Pf": self.pf, "Po": self.po}[metric][band]

    def render(self) -> str:
        """Print the three panels of Fig. 8 as tables."""
        blocks = []
        for metric in ("Pc", "Pf", "Po"):
            rows = []
            for band in self.bands:
                rows.append([band_label(band)]
                            + [f"{v:.1f}" for v in self.series(metric, band)])
            headers = ["band \\ weeks"] + [f"{w:g}" for w in self.weeks]
            blocks.append(format_table(headers, rows,
                                       title=f"Fig 8: {metric} vs history"))
        return "\n\n".join(blocks)


def run(weeks_grid: Sequence[float] = (0, 0.5, 1, 2, 3),
        population: int = 20, per_device: int = 10, seed: int = 7,
        bands: Sequence[tuple[int, int]] = ((40, 55), (55, 70)),
        ) -> HistorySweepResult:
    """Sweep the training-history length.

    The dataset always spans ``max(weeks_grid)`` weeks plus an evaluation
    margin; each sweep point restricts model training (coarse classifiers
    and affinity mining) to the last ``w`` weeks via
    ``LocaterConfig.history_days``.  ``weeks=0`` trains on (almost) no
    history — the paper's "no data at all" point — here one hour of tail
    data so the pipeline still runs.
    """
    max_weeks = max(weeks_grid)
    days = max(3, int(max_weeks * 7) + 3)
    dataset = dbh_dataset(days=days, population=population, seed=seed)
    band_map = group_by_band(dataset)
    result = HistorySweepResult(weeks=list(weeks_grid),
                                bands=[tuple(b) for b in bands])
    queries = labeled_query_set(dataset, per_device=per_device, seed=seed)

    for band in result.bands:
        result.pc[band] = []
        result.pf[band] = []
        result.po[band] = []

    for weeks in weeks_grid:
        history_days = max(1, round(weeks * 7)) if weeks > 0 else 0
        config = LocaterConfig(use_caching=False,
                               history_days=history_days)
        system = Locater(dataset.building, dataset.metadata, dataset.table,
                         config=config)
        outcome = evaluate(system, dataset, queries)
        for band in result.bands:
            macs = band_map.get(band, [])
            counts = pooled_counts(outcome, macs)
            result.pc[band].append(100.0 * counts.coarse_precision)
            result.pf[band].append(100.0 * counts.fine_precision)
            result.po[band].append(100.0 * counts.overall_precision)
    return result
