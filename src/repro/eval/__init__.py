"""Evaluation harness (paper §6): metrics, queries, runners, experiments.

Reproduces the paper's evaluation protocol: queries sampled against
ground truth, precision metrics Pc / Pf / Po, user grouping by
predictability bands, and one experiment module per table/figure.
"""

from repro.eval.metrics import PrecisionCounts, precision_summary
from repro.eval.queries import generated_query_set, labeled_query_set
from repro.eval.predictability import PREDICTABILITY_BANDS, band_of, group_by_band
from repro.eval.runner import EvaluationResult, SystemUnderTest, evaluate
from repro.eval.reporting import format_table

__all__ = [
    "PREDICTABILITY_BANDS",
    "EvaluationResult",
    "PrecisionCounts",
    "SystemUnderTest",
    "band_of",
    "evaluate",
    "format_table",
    "generated_query_set",
    "group_by_band",
    "labeled_query_set",
    "precision_summary",
]
