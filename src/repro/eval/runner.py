"""The experiment runner: score a system against ground truth."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.eval.metrics import PrecisionCounts
from repro.sim.dataset import Dataset
from repro.system.locater import LocationAnswer
from repro.system.query import LocationQuery


class SystemUnderTest(Protocol):
    """Anything with ``locate(mac, timestamp) -> LocationAnswer``."""

    def locate(self, mac: str, timestamp: float) -> LocationAnswer: ...


@dataclass(slots=True)
class EvaluationResult:
    """Scores and timings of one evaluated system on one query set.

    Attributes:
        counts: Pooled precision counters.
        per_device: Counters keyed by MAC (for per-band pooling).
        elapsed_seconds: Total wall-clock spent inside ``locate``.
        per_query_seconds: Running time of each query, in order (drives
            the paper's Fig. 10 running-time-vs-queries curves).
    """

    counts: PrecisionCounts = field(default_factory=PrecisionCounts)
    per_device: dict[str, PrecisionCounts] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    per_query_seconds: list[float] = field(default_factory=list)

    @property
    def mean_query_ms(self) -> float:
        """Average per-query latency in milliseconds."""
        if not self.per_query_seconds:
            return 0.0
        return 1000.0 * self.elapsed_seconds / len(self.per_query_seconds)


def evaluate(system: SystemUnderTest, dataset: Dataset,
             queries: Sequence[LocationQuery],
             progress: "Callable[[int], None] | None" = None,
             record_latency: bool = False) -> EvaluationResult:
    """Run ``queries`` through ``system`` and score against ground truth.

    Scoring rules (matching §6.1's Q_out / Q_region / Q_room):

    * truth outside + predicted outside → counts toward Q_out;
    * truth inside + predicted region whose room set contains the true
      room → Q_region;
    * exact room match on top of that → Q_room.
    """
    result = EvaluationResult()
    building = dataset.building
    for index, query in enumerate(queries):
        start = time.perf_counter()
        answer = system.locate(query.mac, query.timestamp)
        elapsed = time.perf_counter() - start
        result.elapsed_seconds += elapsed
        if record_latency:
            result.per_query_seconds.append(elapsed)

        truth_room = dataset.true_room_at(query.mac, query.timestamp)
        truth_outside = truth_room is None
        region_correct = False
        room_correct = False
        if not truth_outside and answer.inside and \
                answer.region_id is not None:
            region_rooms = building.region(answer.region_id).rooms
            region_correct = truth_room in region_rooms
            room_correct = answer.room_id == truth_room
        per_dev = result.per_device.setdefault(query.mac,
                                               PrecisionCounts())
        for counts in (result.counts, per_dev):
            counts.record(truth_outside=truth_outside,
                          predicted_outside=not answer.inside,
                          region_correct=region_correct,
                          room_correct=room_correct)
        if progress is not None:
            progress(index + 1)
    return result


def pooled_counts(result: EvaluationResult,
                  macs: Sequence[str]) -> PrecisionCounts:
    """Merge the per-device counters of ``macs`` (band-level scores)."""
    pooled = PrecisionCounts()
    for mac in macs:
        counts = result.per_device.get(mac)
        if counts is not None:
            pooled = pooled.merge(counts)
    return pooled
