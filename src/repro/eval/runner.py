"""The experiment runner: score a system against ground truth."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Protocol, runtime_checkable

from repro.eval.metrics import PrecisionCounts
from repro.sim.dataset import Dataset
from repro.system.locater import LocationAnswer
from repro.system.query import LocationQuery


class SystemUnderTest(Protocol):
    """Anything with ``locate(mac, timestamp) -> LocationAnswer``."""

    def locate(self, mac: str, timestamp: float) -> LocationAnswer: ...


@runtime_checkable
class BatchSystemUnderTest(Protocol):
    """A system that additionally answers whole batches at once."""

    def locate(self, mac: str, timestamp: float) -> LocationAnswer: ...

    def locate_batch(self, queries: Sequence[LocationQuery],
                     bucket_seconds: float = ...,
                     timings: "list[tuple[int, float]] | None" = ...,
                     share_computation: bool = ...
                     ) -> list[LocationAnswer]: ...


@dataclass(slots=True)
class EvaluationResult:
    """Scores and timings of one evaluated system on one query set.

    Attributes:
        counts: Pooled precision counters.
        per_device: Counters keyed by MAC (for per-band pooling).
        elapsed_seconds: Total wall-clock spent inside ``locate``.
        per_query_seconds: Running time of each query, in order (drives
            the paper's Fig. 10 running-time-vs-queries curves).
    """

    counts: PrecisionCounts = field(default_factory=PrecisionCounts)
    per_device: dict[str, PrecisionCounts] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    per_query_seconds: list[float] = field(default_factory=list)

    @property
    def mean_query_ms(self) -> float:
        """Average per-query latency in milliseconds."""
        if not self.per_query_seconds:
            return 0.0
        return 1000.0 * self.elapsed_seconds / len(self.per_query_seconds)


def evaluate(system: SystemUnderTest, dataset: Dataset,
             queries: Sequence[LocationQuery],
             progress: "Callable[[int], None] | None" = None,
             record_latency: bool = False) -> EvaluationResult:
    """Run ``queries`` through ``system`` and score against ground truth.

    Scoring rules (matching §6.1's Q_out / Q_region / Q_room):

    * truth outside + predicted outside → counts toward Q_out;
    * truth inside + predicted region whose room set contains the true
      room → Q_region;
    * exact room match on top of that → Q_room.
    """
    result = EvaluationResult()
    for index, query in enumerate(queries):
        start = time.perf_counter()
        answer = system.locate(query.mac, query.timestamp)
        elapsed = time.perf_counter() - start
        result.elapsed_seconds += elapsed
        if record_latency:
            result.per_query_seconds.append(elapsed)
        _score_answer(result, dataset, query, answer)
        if progress is not None:
            progress(index + 1)
    return result


def evaluate_batch(system: SystemUnderTest, dataset: Dataset,
                   queries: Sequence[LocationQuery],
                   record_latency: bool = False,
                   share_computation: bool = True) -> EvaluationResult:
    """Like :func:`evaluate`, but through ``locate_batch`` when available.

    Systems without a batch entry point (the baselines) fall back to the
    per-query loop of :func:`evaluate`.  Latencies are recorded in the
    batch planner's *execution* order — bucket-granular timestamp order
    — which is the order in which the caching engine warms, so warm-up
    curves (Fig. 10/12) read the same way as in the sequential runner.

    Args:
        share_computation: Forwarded to ``locate_batch``.  Timing
            experiments that ablate the *caching engine* must pass False
            so the batch memos don't amortize the very work whose
            per-query cost is being measured.
    """
    if not isinstance(system, BatchSystemUnderTest):
        return evaluate(system, dataset, queries,
                        record_latency=record_latency)
    timings: list[tuple[int, float]] = []
    answers = system.locate_batch(queries, timings=timings,
                                  share_computation=share_computation)
    result = EvaluationResult()
    for query, answer in zip(queries, answers):
        _score_answer(result, dataset, query, answer)
    result.elapsed_seconds = sum(seconds for _, seconds in timings)
    if record_latency:
        result.per_query_seconds = [seconds for _, seconds in timings]
    return result


def _score_answer(result: EvaluationResult, dataset: Dataset,
                  query: LocationQuery, answer: LocationAnswer) -> None:
    """Score one answer against ground truth (§6.1's Q_out/Q_region/Q_room)."""
    truth_room = dataset.true_room_at(query.mac, query.timestamp)
    truth_outside = truth_room is None
    region_correct = False
    room_correct = False
    if not truth_outside and answer.inside and \
            answer.region_id is not None:
        region_rooms = dataset.building.region(answer.region_id).rooms
        region_correct = truth_room in region_rooms
        room_correct = answer.room_id == truth_room
    per_dev = result.per_device.setdefault(query.mac,
                                           PrecisionCounts())
    for counts in (result.counts, per_dev):
        counts.record(truth_outside=truth_outside,
                      predicted_outside=not answer.inside,
                      region_correct=region_correct,
                      room_correct=room_correct)


def pooled_counts(result: EvaluationResult,
                  macs: Sequence[str]) -> PrecisionCounts:
    """Merge the per-device counters of ``macs`` (band-level scores)."""
    pooled = PrecisionCounts()
    for mac in macs:
        counts = result.per_device.get(mac)
        if counts is not None:
            pooled = pooled.merge(counts)
    return pooled
