"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table (paper-style experiment output)."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object],
                  ys: Sequence[float], unit: str = "") -> str:
    """Render one figure series as ``x -> y`` lines."""
    suffix = f" {unit}" if unit else ""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {y:.2f}{suffix}")
    return "\n".join(lines)
