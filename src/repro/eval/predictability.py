"""Grouping users by predictability (paper §6.2).

The paper buckets ground-truth users by the share of in-building time
spent in their preferred room: [40,55), [55,70), [70,85), [85,100).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.dataset import Dataset

#: The paper's four bands, as (low, high) percent pairs.
PREDICTABILITY_BANDS: tuple[tuple[int, int], ...] = (
    (40, 55), (55, 70), (70, 85), (85, 100))


def band_of(share: float,
            bands: Sequence[tuple[int, int]] = PREDICTABILITY_BANDS
            ) -> "tuple[int, int] | None":
    """The band containing a preferred-room share (0..1 scale).

    Shares below the lowest band return None (the paper notes no ground
    truth user fell below 40%; synthetic visitors can).
    """
    pct = share * 100.0
    for low, high in bands:
        if low <= pct < high:
            return (low, high)
    if pct >= bands[-1][1]:
        return bands[-1]
    return None


def group_by_band(dataset: Dataset,
                  macs: "Sequence[str] | None" = None
                  ) -> dict[tuple[int, int], list[str]]:
    """Partition devices into predictability bands."""
    out: dict[tuple[int, int], list[str]] = {b: [] for b
                                             in PREDICTABILITY_BANDS}
    for mac in (macs if macs is not None else dataset.macs()):
        band = band_of(dataset.realized_predictability(mac))
        if band is not None:
            out[band].append(mac)
    return out


def band_label(band: tuple[int, int]) -> str:
    """Render a band the way the paper prints it, e.g. ``[40,55)``."""
    return f"[{band[0]},{band[1]})"
