"""Precision metrics of §6.1.

Given a query set Q, let Q_out, Q_region, Q_room be the queries answered
correctly as outside / in the right region / in the right room:

* coarse precision  Pc = (|Q_out| + |Q_region|) / |Q|
* fine precision    Pf = |Q_room| / |Q_region|
* overall precision Po = (|Q_room| + |Q_out|) / |Q|
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.stats import safe_div


@dataclass(slots=True)
class PrecisionCounts:
    """Counters accumulated over an evaluated query set."""

    total: int = 0
    correct_outside: int = 0
    correct_region: int = 0
    correct_room: int = 0

    def record(self, truth_outside: bool, predicted_outside: bool,
               region_correct: bool, room_correct: bool) -> None:
        """Tally one query.

        Args:
            truth_outside: Ground truth says the device was outside.
            predicted_outside: The system said outside.
            region_correct: Both inside and the region contains the true
                room.
            room_correct: Both inside and the exact room matched.
        """
        self.total += 1
        if truth_outside and predicted_outside:
            self.correct_outside += 1
            return
        if region_correct:
            self.correct_region += 1
            if room_correct:
                self.correct_room += 1

    # ------------------------------------------------------------------
    @property
    def coarse_precision(self) -> float:
        """Pc = (|Q_out| + |Q_region|) / |Q|."""
        return safe_div(self.correct_outside + self.correct_region,
                        self.total)

    @property
    def fine_precision(self) -> float:
        """Pf = |Q_room| / |Q_region|."""
        return safe_div(self.correct_room, self.correct_region)

    @property
    def overall_precision(self) -> float:
        """Po = (|Q_room| + |Q_out|) / |Q|."""
        return safe_div(self.correct_room + self.correct_outside,
                        self.total)

    def merge(self, other: "PrecisionCounts") -> "PrecisionCounts":
        """Sum two counter sets (for pooling user groups)."""
        return PrecisionCounts(
            total=self.total + other.total,
            correct_outside=self.correct_outside + other.correct_outside,
            correct_region=self.correct_region + other.correct_region,
            correct_room=self.correct_room + other.correct_room)

    def __str__(self) -> str:
        return (f"Pc={self.coarse_precision:.1%} "
                f"Pf={self.fine_precision:.1%} "
                f"Po={self.overall_precision:.1%} (n={self.total})")


def precision_summary(counts: PrecisionCounts) -> dict[str, float]:
    """The (Pc, Pf, Po) triple as percentages, like the paper's tables."""
    return {
        "Pc": 100.0 * counts.coarse_precision,
        "Pf": 100.0 * counts.fine_precision,
        "Po": 100.0 * counts.overall_precision,
    }
