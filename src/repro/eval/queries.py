"""Query-set generation (paper §6.1, §6.4).

Two kinds of query sets mirror the paper's:

* the *university* style set: queries about devices with ground truth,
  balanced per device (the paper used 5,008 queries over 19 individuals);
* the *generated* style set: (device, time) pairs drawn uniformly over
  all devices and the whole dataset span, used for scalability runs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.dataset import Dataset
from repro.system.query import LocationQuery
from repro.util.rng import make_rng


def labeled_query_set(dataset: Dataset, per_device: int = 40,
                      macs: "Sequence[str] | None" = None,
                      seed: int = 17,
                      inside_fraction: float = 0.85) -> list[LocationQuery]:
    """Queries against ground-truth users, balanced per device.

    Query times are sampled inside the device's ground-truth visits with
    probability ``inside_fraction`` (so coarse/fine both get exercised)
    and uniformly over the span otherwise (catching outside periods).
    """
    rng = make_rng(seed)
    queries: list[LocationQuery] = []
    span = dataset.span
    for mac in (macs if macs is not None else dataset.macs()):
        person = dataset.person_of(mac)
        visits = [visit
                  for plan in dataset.plans.get(person.person_id, ())
                  for visit in plan]
        for _ in range(per_device):
            if visits and rng.random() < inside_fraction:
                visit = visits[int(rng.integers(len(visits)))]
                t = float(rng.uniform(visit.interval.start,
                                      visit.interval.end))
            else:
                t = float(rng.uniform(span.start, span.end))
            queries.append(LocationQuery(mac=mac, timestamp=t))
    order = rng.permutation(len(queries))
    return [queries[i] for i in order]


def generated_query_set(dataset: Dataset, count: int,
                        seed: int = 29) -> list[LocationQuery]:
    """Uniform (device, time) queries over all devices and the full span."""
    rng = make_rng(seed)
    macs = dataset.macs()
    span = dataset.span
    queries = []
    for _ in range(count):
        mac = macs[int(rng.integers(len(macs)))]
        t = float(rng.uniform(span.start, span.end))
        queries.append(LocationQuery(mac=mac, timestamp=t))
    return queries
