"""The baseline systems of the paper's evaluation (§6.1).

Coarse-Baseline: a gap of at least one hour means outside; otherwise the
device stays in the last known region.

Fine-Baseline1: pick a candidate room uniformly at random.
Fine-Baseline2: pick the room associated with the user in the metadata
(their office / preferred room) when it is among the candidates, else fall
back to random.

Baseline1 = Coarse-Baseline + Fine-Baseline1;
Baseline2 = Coarse-Baseline + Fine-Baseline2.
"""

from __future__ import annotations

from repro.events.gaps import find_gap_at
from repro.events.table import EventTable
from repro.events.validity import valid_event_at
from repro.space.building import Building
from repro.space.metadata import SpaceMetadata
from repro.system.query import LocationQuery
from repro.system.locater import LocationAnswer
from repro.util.rng import make_rng
from repro.util.timeutil import hours


class CoarseBaseline:
    """The shared coarse step: >= 1 h gap → outside, else last region."""

    def __init__(self, building: Building, table: EventTable,
                 outside_threshold: float = hours(1)) -> None:
        self._building = building
        self._table = table
        self.outside_threshold = outside_threshold

    def locate(self, mac: str, timestamp: float
               ) -> "tuple[bool, int | None, bool]":
        """Returns (inside, region_id, from_event)."""
        log = self._table.log(mac)
        if log.is_empty:
            return False, None, False
        hit = valid_event_at(log, timestamp)
        if hit is not None:
            region = self._building.region_of_ap(hit.ap_id)
            return True, region.region_id, True
        gap = find_gap_at(log, timestamp)
        if gap is None:
            return False, None, False
        if gap.duration >= self.outside_threshold:
            return False, None, False
        region = self._building.region_of_ap(gap.ap_before)
        return True, region.region_id, False


class _BaselineSystem:
    """Common query plumbing for both baselines."""

    def __init__(self, building: Building, metadata: SpaceMetadata,
                 table: EventTable, seed: "int | None" = 0) -> None:
        self._building = building
        self._metadata = metadata
        self._table = table
        self._coarse = CoarseBaseline(building, table)
        self._rng = make_rng(seed)

    def _pick_room(self, mac: str, candidates: list[str]) -> str:
        raise NotImplementedError

    def locate(self, mac: str, timestamp: float) -> LocationAnswer:
        """Answer a query with the baseline pipeline."""
        query = LocationQuery(mac=mac, timestamp=timestamp)
        inside, region_id, from_event = self._coarse.locate(mac, timestamp)
        if not inside or region_id is None:
            return LocationAnswer(query=query, inside=False, region_id=None,
                                  room_id=None, from_event=from_event,
                                  fine=None)
        candidates = sorted(self._building.region(region_id).rooms)
        room = self._pick_room(mac, candidates)
        return LocationAnswer(query=query, inside=True, region_id=region_id,
                              room_id=room, from_event=from_event, fine=None)


class Baseline1(_BaselineSystem):
    """Coarse-Baseline + random candidate room."""

    def _pick_room(self, mac: str, candidates: list[str]) -> str:
        return candidates[int(self._rng.integers(len(candidates)))]


class Baseline2(_BaselineSystem):
    """Coarse-Baseline + metadata room (user's office) when available."""

    def _pick_room(self, mac: str, candidates: list[str]) -> str:
        preferred = self._metadata.preferred_rooms(mac)
        matches = [room for room in candidates if room in preferred]
        if matches:
            return matches[0]
        return candidates[int(self._rng.integers(len(candidates)))]
