"""The LOCATER system (paper §5, Fig. 5): ingestion, storage, cleaning, query.

`Locater` wires the coarse-grained and fine-grained cleaning engines with
the caching engine behind a single ``locate(mac, t)`` query interface, the
way the paper's prototype does, plus a batched ``locate_batch(queries)``
entry point backed by the planner of :mod:`repro.system.planner`.
`Baseline1` and `Baseline2` implement the comparison systems of §6.1.
"""

from repro.system.baselines import Baseline1, Baseline2, CoarseBaseline
from repro.system.config import LocaterConfig
from repro.system.ingestion import IngestionEngine, IngestReport
from repro.system.locater import (
    BatchState,
    InvalidationSummary,
    Locater,
    LocationAnswer,
)
from repro.system.memory import MemoryManager, approx_nbytes
from repro.system.planner import (
    DEFAULT_BUCKET_SECONDS,
    PlannedQuery,
    QueryGroup,
    QueryPlan,
    plan_queries,
)
from repro.system.query import LocationQuery
from repro.system.storage import (
    InMemoryStorage,
    NamespacedStorage,
    SqliteStorage,
    StorageEngine,
)
from repro.system.streaming import StreamingSession

__all__ = [
    "Baseline1",
    "Baseline2",
    "BatchState",
    "CoarseBaseline",
    "DEFAULT_BUCKET_SECONDS",
    "IngestReport",
    "IngestionEngine",
    "InMemoryStorage",
    "InvalidationSummary",
    "Locater",
    "LocaterConfig",
    "LocationAnswer",
    "LocationQuery",
    "MemoryManager",
    "NamespacedStorage",
    "PlannedQuery",
    "QueryGroup",
    "QueryPlan",
    "SqliteStorage",
    "StorageEngine",
    "StreamingSession",
    "approx_nbytes",
    "plan_queries",
]
