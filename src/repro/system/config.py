"""One dataclass holding every tunable of the LOCATER pipeline.

Defaults follow the best values reported in the paper's evaluation:
τl = 20 min, τh = 170 min (Fig. 7), τ′l = 20 min, τ′h = 40 min, room
affinity weights C2 = (0.6, 0.3, 0.1) (Table 2), D-FINE mode (Table 3),
caching enabled, stop conditions enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.fine.affinity import RoomAffinityWeights
from repro.fine.localizer import FineMode
from repro.util.timeutil import SECONDS_PER_DAY, minutes


@dataclass(frozen=True, slots=True)
class LocaterConfig:
    """Complete configuration of a :class:`~repro.system.locater.Locater`.

    Attributes:
        tau_low: Bootstrap threshold τl — gaps at most this long are
            labeled inside the building.
        tau_high: Bootstrap threshold τh — gaps at least this long are
            labeled outside.
        tau_region_low / tau_region_high: The τ′ thresholds of the
            region-level bootstrapper.
        room_weights: The (w^pf, w^pb, w^pr) room-affinity triple.
        fine_mode: I-FINE (independent) or D-FINE (dependent clusters).
        use_stop_conditions: Algorithm 2's loosened early termination.
        use_caching: Maintain and consult the global affinity graph.
        cache_sigma: Temporal Gaussian σ (seconds) of the caching engine.
        max_neighbors: Cap on neighbors examined per fine query.
        affinity_cap: Default co-location-mass upper bound for unprocessed
            neighbors in the possible-world bounds.
        affinity_noise_floor: Device affinities below this count as zero
            when computing group affinity (suppresses incidental same-AP
            coincidences between unrelated devices).
        reuse_affinity_cache: Memoize mined device affinities across
            queries.  Default True (production-sane).  The paper's
            efficiency experiments (§6.4) assume affinities are
            re-derived from history per query — set False to reproduce
            that cost model (the caching *engine* then provides the
            savings, as in the paper).
        self_training_batch: Gaps promoted per Algorithm 1 round (1 =
            paper-literal; higher is faster, near-identical labels).
        history_days: Days of history used to train models and mine
            affinities (None = everything available).
        memory_budget_bytes: Resident-byte budget for recomputable state
            (trained coarse models, batch memos, cold log columns).
            ``None`` (default) disables eviction entirely; any budget —
            including 0 — only trades recompute time for memory, never
            answers (see :mod:`repro.system.memory`).
    """

    tau_low: float = minutes(20)
    tau_high: float = minutes(170)
    tau_region_low: float = minutes(20)
    tau_region_high: float = minutes(40)
    room_weights: RoomAffinityWeights = field(
        default_factory=RoomAffinityWeights)
    fine_mode: FineMode = FineMode.DEPENDENT
    use_stop_conditions: bool = True
    use_caching: bool = True
    cache_sigma: float = SECONDS_PER_DAY
    max_neighbors: int = 24
    affinity_cap: float = 0.1
    affinity_noise_floor: float = 0.1
    reuse_affinity_cache: bool = True
    self_training_batch: int = 4
    history_days: "int | None" = None
    memory_budget_bytes: "int | None" = None

    def __post_init__(self) -> None:
        if self.tau_low <= 0 or self.tau_high <= self.tau_low:
            raise ConfigurationError(
                f"need 0 < tau_low < tau_high, got "
                f"({self.tau_low}, {self.tau_high})")
        if self.max_neighbors < 1:
            raise ConfigurationError(
                f"max_neighbors must be >= 1, got {self.max_neighbors}")
        if self.self_training_batch < 1:
            raise ConfigurationError(
                f"self_training_batch must be >= 1, got "
                f"{self.self_training_batch}")
        if self.history_days is not None and self.history_days < 0:
            raise ConfigurationError(
                f"history_days must be >= 0 or None, got {self.history_days}")
        if self.memory_budget_bytes is not None and \
                self.memory_budget_bytes < 0:
            raise ConfigurationError(
                f"memory_budget_bytes must be >= 0 or None, got "
                f"{self.memory_budget_bytes}")

    def with_(self, **changes) -> "LocaterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def independent(cls, **changes) -> "LocaterConfig":
        """Convenience: an I-LOCATER configuration."""
        return cls(fine_mode=FineMode.INDEPENDENT).with_(**changes)

    @classmethod
    def dependent(cls, **changes) -> "LocaterConfig":
        """Convenience: a D-LOCATER configuration."""
        return cls(fine_mode=FineMode.DEPENDENT).with_(**changes)
