"""The LOCATER facade: coarse cleaning → fine cleaning → caching (Fig. 5)."""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.coarse.bootstrap import BootstrapLabeler
from repro.coarse.localizer import CoarseLocalizer, CoarseSharedState
from repro.cache.engine import CachingEngine
from repro.events.table import EventTable
from repro.fine.affinity import DeviceAffinityIndex, RoomAffinityModel
from repro.fine.localizer import FineLocalizer, FineResult, FineSharedState
from repro.fine.neighbors import NeighborIndex, find_neighbors
from repro.space.building import Building
from repro.space.metadata import SpaceMetadata
from repro.system.config import LocaterConfig
from repro.system.planner import DEFAULT_BUCKET_SECONDS, plan_queries
from repro.errors import EmptyHistoryError
from repro.system.ingestion import IngestReport
from repro.system.memory import MEMO_ENTRY_NBYTES, MemoryManager
from repro.system.query import LocationQuery
from repro.system.storage import StorageEngine
from repro.util.timeutil import SECONDS_PER_DAY, TimeInterval, day_span


@dataclass(frozen=True, slots=True)
class LocationAnswer:
    """The cleaned location of a device at the queried time.

    Attributes:
        query: The original query.
        inside: Whether the device was inside the building.
        region_id: Region when inside, else None.
        room_id: Room when inside, else None.
        from_event: Coarse answer came straight from a valid event.
        fine: The full fine-grained result (None when outside).
    """

    query: LocationQuery
    inside: bool
    region_id: "int | None"
    room_id: "str | None"
    from_event: bool
    fine: "FineResult | None"

    @property
    def location_label(self) -> str:
        """Compact label: ``outside`` or the room id."""
        if not self.inside:
            return "outside"
        return self.room_id if self.room_id is not None else "unknown"

    def __str__(self) -> str:
        if not self.inside:
            return f"{self.query} → outside"
        return (f"{self.query} → room {self.room_id} "
                f"(region g{self.region_id})")


# No slots: the memory-budget tier tracks live states through weakrefs
# (dataclass weakref_slot only exists on 3.11+, and the 3.10 floor
# matters more than a few dozen bytes on a per-batch object).
@dataclass
class BatchState:
    """Shared-computation state threaded through ``locate_batch``.

    Normally created fresh per call; a streaming session keeps one alive
    across query bursts (every memo is a pure function of table state,
    so reuse never changes answers) and prunes it on ingest via
    :meth:`drop_device` / the neighbor index's invalidation hooks.
    """

    neighbors: NeighborIndex
    coarse: CoarseSharedState = field(default_factory=CoarseSharedState)
    fine: FineSharedState = field(default_factory=FineSharedState)

    def drop_device(self, mac: str) -> None:
        """Forget every memo involving one device (its log changed)."""
        self.drop_devices({mac})

    def drop_devices(self, macs: "set[str]") -> None:
        """Forget memos involving any given device, one pass per memo."""
        self.coarse.drop_devices(macs)
        self.fine.drop_devices(macs)

    def memo_dicts(self) -> list[dict]:
        """Every memo dict of this state, freshly resolved.

        The single enumeration the trim/reset plumbing iterates (the
        shared states declare their own ``MEMO_ATTRS``); resolved on
        each call because the drop paths rebind the dicts.
        """
        return [getattr(self.coarse, name)
                for name in CoarseSharedState.MEMO_ATTRS] + \
               [getattr(self.fine, name)
                for name in FineSharedState.MEMO_ATTRS]


@dataclass(frozen=True, slots=True)
class InvalidationSummary:
    """What :meth:`Locater.on_ingest` invalidated.

    Attributes:
        full: Every trained model and memo was dropped (the training
            window itself moved — sliding ``history_days`` window, or
            the table span's day range changed, which shifts the density
            feature of *every* device).
        macs: The devices invalidated surgically (empty when ``full``).
        delta_changed: Devices whose δ estimate moved — their validity
            windows shifted at all times, so time-keyed snapshots
            involving them are stale everywhere.
        answers_dropped: Cleaned answers purged from storage.
    """

    full: bool
    macs: frozenset[str]
    delta_changed: frozenset[str]
    answers_dropped: int


class Locater:
    """The online location cleaning system of the paper.

    Args:
        building: Space model.
        metadata: Per-device preferred-room metadata.
        table: Connectivity events table (already ingested).
        config: Pipeline configuration; defaults to the paper's best.
        storage: Optional storage engine; cleaned answers are persisted
            and exact-repeat queries short-circuit to the stored answer.
        room_model: Optional room-affinity model override — e.g. a
            :class:`~repro.fine.time_dependent.TimeDependentRoomAffinityModel`
            carrying per-time-of-day preference schedules.  Defaults to
            the static model built from ``metadata`` and the configured
            weights.

    Example:
        >>> locater = Locater(building, metadata, table)
        >>> answer = locater.locate("7fbh", timestamp)
        >>> answer.room_id
        '2061'
    """

    def __init__(self, building: Building, metadata: SpaceMetadata,
                 table: EventTable,
                 config: "LocaterConfig | None" = None,
                 storage: "StorageEngine | None" = None,
                 room_model: "RoomAffinityModel | None" = None) -> None:
        self.config = config or LocaterConfig()
        self._building = building
        self._metadata = metadata
        self._table = table
        self._storage = storage

        history = self._resolve_history()
        bootstrap = BootstrapLabeler(
            building,
            tau_low=self.config.tau_low,
            tau_high=self.config.tau_high,
            tau_region_low=self.config.tau_region_low,
            tau_region_high=self.config.tau_region_high)
        self.coarse = CoarseLocalizer(
            building, table, bootstrap=bootstrap, history=history,
            batch_size=self.config.self_training_batch)
        self._room_model = room_model if room_model is not None else \
            RoomAffinityModel(metadata, weights=self.config.room_weights)
        self._device_index = DeviceAffinityIndex(
            table, history=history,
            reuse_cache=self.config.reuse_affinity_cache)
        self.fine = FineLocalizer(
            building, table, self._room_model, self._device_index,
            mode=self.config.fine_mode,
            use_stop_conditions=self.config.use_stop_conditions,
            max_neighbors=self.config.max_neighbors,
            affinity_cap=self.config.affinity_cap,
            affinity_noise_floor=self.config.affinity_noise_floor)
        self.cache = CachingEngine(sigma=self.config.cache_sigma) \
            if self.config.use_caching else None
        self._history_fingerprint = self._span_fingerprint()
        # Memory-budgeted eviction (repro.system.memory): one LRU over
        # trained coarse models, batch memos and cold log columns.
        # Everything it evicts recomputes deterministically, so any
        # budget — including 0 — leaves answers bitwise unchanged.
        self.memory: "MemoryManager | None" = None
        if self.config.memory_budget_bytes is not None:
            self.memory = MemoryManager(self.config.memory_budget_bytes)
            table.enable_eviction(self.memory)
            self.coarse.set_memory_manager(self.memory)

    def _resolve_history(self) -> "TimeInterval | None":
        if self.config.history_days is None:
            return None
        span = self._table.span()
        start = max(span.start, span.end -
                    self.config.history_days * SECONDS_PER_DAY)
        return TimeInterval(start, span.end)

    def _span_fingerprint(self) -> "tuple[int, int] | None":
        """(first day, last day) of the table span, or None when empty.

        The coarse gap features depend on the training window only
        through this day range (the density feature divides by the
        number of days), so as long as the fingerprint is stable an
        unchanged device's trained models stay valid under the grown
        window — the invariant behind surgical invalidation.
        """
        try:
            span = self._table.span()
        except EmptyHistoryError:
            return None
        return day_span(span)

    # ------------------------------------------------------------------
    @property
    def building(self) -> Building:
        """The space model this system cleans against."""
        return self._building

    @property
    def table(self) -> EventTable:
        """The connectivity events table."""
        return self._table

    # ------------------------------------------------------------------
    def locate(self, mac: str, timestamp: float) -> LocationAnswer:
        """Answer Q = (mac, timestamp) through the full cleaning pipeline."""
        return self.locate_query(LocationQuery(mac=mac, timestamp=timestamp))

    def locate_query(self, query: LocationQuery,
                     state: "BatchState | None" = None) -> LocationAnswer:
        """Answer one :class:`LocationQuery` — the single-query code path.

        ``locate`` and the batch engine's per-query execution both funnel
        through here (``locate_batch`` passes its shared ``state``);
        cluster shards route to this entry point too.
        """
        answer = self._locate_one(query, state)
        if self.memory is not None:
            self.memory.enforce()
        return answer

    def make_batch_state(self,
                         max_snapshots: "int | None" = None) -> BatchState:
        """A shared-computation state for :meth:`locate_batch`.

        Create one per batch (the default), or keep one alive across
        bursts in a streaming session — in that case every ingest must
        prune it (see :class:`~repro.system.streaming.StreamingSession`)
        and ``max_snapshots`` should bound the neighbor-snapshot memo.
        """
        state = BatchState(neighbors=NeighborIndex(
            self._building, self._table, max_snapshots=max_snapshots))
        if self.memory is not None:
            self._register_batch_state(state)
        return state

    def _register_batch_state(self, state: BatchState) -> None:
        """Put a batch state's memos under the memory budget.

        One persistent LRU entry per state: its size tracks the memo
        dicts and neighbor snapshots (nominal bytes per entry — O(1) to
        report), evicting rebinds them all to empty (memos are pure
        functions of the table; they recompute on demand).  The entry is
        held through a weakref so the budget never pins a dead state,
        and is released when the state is collected.
        """
        ref = weakref.ref(state)

        def memo_size() -> int:
            live = ref()
            if live is None:
                return 0
            entries = sum(len(d) for d in live.memo_dicts())
            return (entries + live.neighbors.snapshot_count) \
                * MEMO_ENTRY_NBYTES

        def evict_memos() -> None:
            live = ref()
            if live is None:
                return
            for name in CoarseSharedState.MEMO_ATTRS:
                setattr(live.coarse, name, {})
            for name in FineSharedState.MEMO_ATTRS:
                setattr(live.fine, name, {})
            live.neighbors.invalidate_all()

        entry = self.memory.charge("batch-memos", ("batch-memos", id(state)),
                                   size_fn=memo_size, evictor=evict_memos,
                                   persistent=True)
        weakref.finalize(state, self.memory.release, entry)

    def locate_batch(self, queries: Iterable[LocationQuery],
                     bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                     timings: "list[tuple[int, float]] | None" = None,
                     share_computation: bool = True,
                     state: "BatchState | None" = None
                     ) -> list[LocationAnswer]:
        """Answer a batch of queries with shared computation.

        The batch is planned by :func:`~repro.system.planner.plan_queries`
        — grouped by (device, time bucket), groups executed in
        bucket-granular timestamp order so the caching engine warms
        front-to-back — then each group is answered with shared neighbor
        snapshots, coarse gap features, and fine-grained affinity memos.

        Answers are **bitwise identical** to calling :meth:`locate` once
        per query in the plan's execution order
        (``plan_queries(queries).ordered_queries()``) on a fresh system,
        including cache hit/miss counters and storage persistence; only
        redundant work is shared, never skipped.  Answers are returned
        in *input* order.

        Args:
            queries: The batch, in any order.
            bucket_seconds: Planning bucket width (see planner module).
            timings: Optional sink; when given, one ``(input_index,
                seconds)`` pair per query is appended in execution order
                (drives the warm-up curves of Fig. 10/12).
            share_computation: Disable to pay full per-query cost while
                keeping the planner's execution order — the paper's
                efficiency experiments need this so the *caching engine*
                (not the batch memos) is the only thing amortizing work
                across queries.
            state: Externally owned shared-computation state (see
                :meth:`make_batch_state`); defaults to a fresh one per
                call.  Ignored when ``share_computation`` is False.

        Example:
            >>> answers = locater.locate_batch(
            ...     [LocationQuery("7fbh", t) for t in grid])
            >>> [a.location_label for a in answers]
        """
        queries = list(queries)
        plan = plan_queries(queries, bucket_seconds=bucket_seconds)
        if not share_computation:
            state = None
        else:
            # Bulk-train before executing: one vectorized sweep over the
            # devices whose queries will actually consult models (a gap
            # query; event hits never train), instead of lazy
            # one-at-a-time training inside the burst.  Training is
            # pure, so answers are unchanged; with sharing disabled the
            # pre-pass is skipped too, keeping the paper-cost ablations
            # honest.
            self.coarse.train_devices(self._devices_needing_models(plan))
            if state is None:
                state = self.make_batch_state()
        answers: "list[LocationAnswer | None]" = [None] * len(queries)
        for group in plan.groups:
            for planned in group.queries:
                if timings is None:
                    answers[planned.index] = self.locate_query(planned.query,
                                                               state)
                else:
                    start = time.perf_counter()
                    answers[planned.index] = self.locate_query(planned.query,
                                                               state)
                    timings.append((planned.index,
                                    time.perf_counter() - start))
        if self.memory is not None:
            self.memory.enforce()
        return answers  # type: ignore[return-value]  # every slot filled

    def _devices_needing_models(self, plan) -> list[str]:
        """Devices of a plan with at least one gap query (training needed).

        Mirrors the lazy criterion exactly — including the storage
        short-circuit: a query whose answer is already persisted never
        reaches the coarse models, so it must not trigger training
        either.  The pre-pass therefore trains the same device set a
        sequential run would, just in one bulk sweep up front.
        """
        needed: set[str] = set()
        for group in plan.groups:
            if group.mac in needed:
                continue
            for planned in group.queries:
                # Cheap binary-search check first; the storage lookup
                # only runs for the gap queries that would train.
                if not self.coarse.needs_model(group.mac,
                                               planned.query.timestamp):
                    continue
                if self._storage is not None and self._storage.find_answer(
                        group.mac, planned.query.timestamp) is not None:
                    continue
                needed.add(group.mac)
                break
        return sorted(needed)

    def _locate_one(self, query: LocationQuery,
                    state: "BatchState | None") -> LocationAnswer:
        """The per-query pipeline; ``state`` shares work across a batch."""
        mac, timestamp = query.mac, query.timestamp
        if self._storage is not None:
            cached = self._storage.find_answer(mac, timestamp)
            if cached is not None:
                return self._answer_from_stored(query, cached)

        coarse = self.coarse.locate(
            mac, timestamp, shared=state.coarse if state else None)
        if not coarse.inside or coarse.region_id is None:
            answer = LocationAnswer(query=query, inside=False,
                                    region_id=None, room_id=None,
                                    from_event=coarse.from_event, fine=None)
            self._persist(answer)
            return answer

        if state is not None:
            neighbors = state.neighbors.neighbors_for(
                mac, timestamp, coarse.region_id,
                max_neighbors=self.config.max_neighbors)
        else:
            neighbors = find_neighbors(
                self._building, self._table, mac, timestamp,
                coarse.region_id, max_neighbors=self.config.max_neighbors)
        # Caps arrive as a float vector aligned with the reordered
        # neighbor list (NaN = no cached bound) — the representation the
        # fine localizer's bounds machinery consumes directly.
        caps = None
        if self.cache is not None:
            neighbors, caps = self.cache.prepare_neighbors(
                mac, neighbors, timestamp)

        fine = self.fine.locate(mac, timestamp, coarse.region_id,
                                neighbor_order=neighbors,
                                neighbor_caps=caps,
                                shared=state.fine if state else None)

        if self.cache is not None and fine.edge_weights:
            self.cache.record(mac, timestamp, fine.edge_weights)

        answer = LocationAnswer(query=query, inside=True,
                                region_id=coarse.region_id,
                                room_id=fine.room_id,
                                from_event=coarse.from_event, fine=fine)
        self._persist(answer)
        return answer

    # ------------------------------------------------------------------
    # Online ingestion
    # ------------------------------------------------------------------
    def on_ingest(self, report: IngestReport) -> InvalidationSummary:
        """React to new events so served answers stay fresh.

        Subscribe this to an :class:`~repro.system.ingestion
        .IngestionEngine` wrapping the same table::

            engine = IngestionEngine(locater.table, storage=storage)
            engine.subscribe(locater.on_ingest)

        Invalidation is *surgical* when provably safe: only the changed
        devices' coarse models, affinity memos and (when they fed it)
        the population aggregate are dropped, and everything else keeps
        serving from cache — a rebuilt system would reproduce the
        surviving state bit for bit, because each cached value is a pure
        function of inputs the ingest did not touch.  When the training
        window itself moved (``history_days`` sliding window, or the
        span's day range grew, which changes every device's density
        feature), invalidation escalates to a full drop.  Cleaned
        answers in storage are always purged: co-location couples
        devices, so no stored answer is provably unaffected.

        Invalidated devices are *not* retrained here: a device may change
        on many consecutive ingest ticks before it is queried again, so
        training inside the ingest path would redo work lazily-trained
        systems never pay.  The retrain instead happens in bulk at the
        next serve — ``locate_batch`` pre-trains every device its plan
        touches via ``CoarseLocalizer.train_devices``, so the first
        post-ingest burst pays one vectorized sweep over exactly the
        devices it needs.
        """
        if not report.changed:
            # Nothing merged (e.g. an empty poll tick): every cached
            # model, memo and stored answer is still exact.
            return InvalidationSummary(full=False, macs=frozenset(),
                                       delta_changed=frozenset(),
                                       answers_dropped=0)
        answers_dropped = self._storage.clear_answers() \
            if self._storage is not None else 0
        fingerprint = self._span_fingerprint()
        full = self.config.history_days is not None or \
            fingerprint != self._history_fingerprint
        self._history_fingerprint = fingerprint
        delta_changed = frozenset(report.delta_changes)
        if full:
            history = self._resolve_history()
            self.coarse.set_history(history)
            self._device_index.set_history(history)
            if self.memory is not None:
                self.memory.enforce()
            return InvalidationSummary(full=True, macs=frozenset(),
                                       delta_changed=delta_changed,
                                       answers_dropped=answers_dropped)
        # The span may have grown inside the same day range; models
        # survive (see _span_fingerprint), but the lazily-cached window
        # must track what a cold rebuild would resolve.
        self.coarse.advance_history(self._table.span())
        self.coarse.invalidate_devices(report.macs)
        self._device_index.invalidate_devices(report.macs)
        if self.memory is not None:
            # The merged rows just grew some logs; spill back under
            # budget before the next serve.
            self.memory.enforce()
        return InvalidationSummary(full=False, macs=report.macs,
                                   delta_changed=delta_changed,
                                   answers_dropped=answers_dropped)

    # ------------------------------------------------------------------
    def _persist(self, answer: LocationAnswer) -> None:
        if self._storage is not None:
            self._storage.store_answer(answer.query.mac,
                                       answer.query.timestamp,
                                       answer.location_label)

    def _answer_from_stored(self, query: LocationQuery,
                            stored: str) -> LocationAnswer:
        if stored == "outside":
            return LocationAnswer(query=query, inside=False, region_id=None,
                                  room_id=None, from_event=False, fine=None)
        # A room routinely spans several overlapping regions (paper Fig. 1);
        # the stored answer keeps only the room, so resolve the region
        # deterministically as the lowest region id rather than trusting
        # whatever order the building happens to list them in.
        regions = self._building.regions_of_room(stored)
        region_id = min(r.region_id for r in regions) if regions else None
        return LocationAnswer(query=query, inside=True, region_id=region_id,
                              room_id=stored, from_event=False, fine=None)
