"""The LOCATER facade: coarse cleaning → fine cleaning → caching (Fig. 5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.coarse.bootstrap import BootstrapLabeler
from repro.coarse.localizer import CoarseLocalizer
from repro.cache.engine import CachingEngine
from repro.events.table import EventTable
from repro.fine.affinity import DeviceAffinityIndex, RoomAffinityModel
from repro.fine.localizer import FineLocalizer, FineResult
from repro.fine.neighbors import find_neighbors
from repro.space.building import Building
from repro.space.metadata import SpaceMetadata
from repro.system.config import LocaterConfig
from repro.system.query import LocationQuery
from repro.system.storage import StorageEngine
from repro.util.timeutil import SECONDS_PER_DAY, TimeInterval


@dataclass(frozen=True, slots=True)
class LocationAnswer:
    """The cleaned location of a device at the queried time.

    Attributes:
        query: The original query.
        inside: Whether the device was inside the building.
        region_id: Region when inside, else None.
        room_id: Room when inside, else None.
        from_event: Coarse answer came straight from a valid event.
        fine: The full fine-grained result (None when outside).
    """

    query: LocationQuery
    inside: bool
    region_id: "int | None"
    room_id: "str | None"
    from_event: bool
    fine: "FineResult | None"

    @property
    def location_label(self) -> str:
        """Compact label: ``outside`` or the room id."""
        if not self.inside:
            return "outside"
        return self.room_id if self.room_id is not None else "unknown"

    def __str__(self) -> str:
        if not self.inside:
            return f"{self.query} → outside"
        return (f"{self.query} → room {self.room_id} "
                f"(region g{self.region_id})")


class Locater:
    """The online location cleaning system of the paper.

    Args:
        building: Space model.
        metadata: Per-device preferred-room metadata.
        table: Connectivity events table (already ingested).
        config: Pipeline configuration; defaults to the paper's best.
        storage: Optional storage engine; cleaned answers are persisted
            and exact-repeat queries short-circuit to the stored answer.
        room_model: Optional room-affinity model override — e.g. a
            :class:`~repro.fine.time_dependent.TimeDependentRoomAffinityModel`
            carrying per-time-of-day preference schedules.  Defaults to
            the static model built from ``metadata`` and the configured
            weights.

    Example:
        >>> locater = Locater(building, metadata, table)
        >>> answer = locater.locate("7fbh", timestamp)
        >>> answer.room_id
        '2061'
    """

    def __init__(self, building: Building, metadata: SpaceMetadata,
                 table: EventTable,
                 config: "LocaterConfig | None" = None,
                 storage: "StorageEngine | None" = None,
                 room_model: "RoomAffinityModel | None" = None) -> None:
        self.config = config or LocaterConfig()
        self._building = building
        self._metadata = metadata
        self._table = table
        self._storage = storage

        history = self._resolve_history()
        bootstrap = BootstrapLabeler(
            building,
            tau_low=self.config.tau_low,
            tau_high=self.config.tau_high,
            tau_region_low=self.config.tau_region_low,
            tau_region_high=self.config.tau_region_high)
        self.coarse = CoarseLocalizer(
            building, table, bootstrap=bootstrap, history=history,
            batch_size=self.config.self_training_batch)
        self._room_model = room_model if room_model is not None else \
            RoomAffinityModel(metadata, weights=self.config.room_weights)
        self._device_index = DeviceAffinityIndex(
            table, history=history,
            reuse_cache=self.config.reuse_affinity_cache)
        self.fine = FineLocalizer(
            building, table, self._room_model, self._device_index,
            mode=self.config.fine_mode,
            use_stop_conditions=self.config.use_stop_conditions,
            max_neighbors=self.config.max_neighbors,
            affinity_cap=self.config.affinity_cap,
            affinity_noise_floor=self.config.affinity_noise_floor)
        self.cache = CachingEngine(sigma=self.config.cache_sigma) \
            if self.config.use_caching else None

    def _resolve_history(self) -> "TimeInterval | None":
        if self.config.history_days is None:
            return None
        span = self._table.span()
        start = max(span.start, span.end -
                    self.config.history_days * SECONDS_PER_DAY)
        return TimeInterval(start, span.end)

    # ------------------------------------------------------------------
    @property
    def building(self) -> Building:
        """The space model this system cleans against."""
        return self._building

    @property
    def table(self) -> EventTable:
        """The connectivity events table."""
        return self._table

    # ------------------------------------------------------------------
    def locate(self, mac: str, timestamp: float) -> LocationAnswer:
        """Answer Q = (mac, timestamp) through the full cleaning pipeline."""
        query = LocationQuery(mac=mac, timestamp=timestamp)

        if self._storage is not None:
            cached = self._storage.find_answer(mac, timestamp)
            if cached is not None:
                return self._answer_from_stored(query, cached)

        coarse = self.coarse.locate(mac, timestamp)
        if not coarse.inside or coarse.region_id is None:
            answer = LocationAnswer(query=query, inside=False,
                                    region_id=None, room_id=None,
                                    from_event=coarse.from_event, fine=None)
            self._persist(answer)
            return answer

        neighbors = find_neighbors(
            self._building, self._table, mac, timestamp, coarse.region_id,
            max_neighbors=self.config.max_neighbors)
        caps = None
        if self.cache is not None:
            neighbors = self.cache.order_neighbors(mac, neighbors, timestamp)
            caps = self.cache.neighbor_caps(mac, neighbors, timestamp)

        fine = self.fine.locate(mac, timestamp, coarse.region_id,
                                neighbor_order=neighbors,
                                neighbor_caps=caps)

        if self.cache is not None and fine.edge_weights:
            self.cache.record(mac, timestamp, fine.edge_weights)

        answer = LocationAnswer(query=query, inside=True,
                                region_id=coarse.region_id,
                                room_id=fine.room_id,
                                from_event=coarse.from_event, fine=fine)
        self._persist(answer)
        return answer

    def locate_query(self, query: LocationQuery) -> LocationAnswer:
        """Answer an explicit :class:`LocationQuery`."""
        return self.locate(query.mac, query.timestamp)

    # ------------------------------------------------------------------
    def _persist(self, answer: LocationAnswer) -> None:
        if self._storage is not None:
            self._storage.store_answer(answer.query.mac,
                                       answer.query.timestamp,
                                       answer.location_label)

    def _answer_from_stored(self, query: LocationQuery,
                            stored: str) -> LocationAnswer:
        if stored == "outside":
            return LocationAnswer(query=query, inside=False, region_id=None,
                                  room_id=None, from_event=False, fine=None)
        regions = self._building.regions_of_room(stored)
        region_id = regions[0].region_id if regions else None
        return LocationAnswer(query=query, inside=True, region_id=region_id,
                              room_id=stored, from_event=False, fine=None)
