"""Query types of the LOCATER query engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timeutil import format_timestamp


@dataclass(frozen=True, slots=True)
class LocationQuery:
    """Q = (d_i, t_q): where was device ``mac`` at time ``timestamp``?

    ``timestamp`` may be current (real-time tracking) or past (historical
    analysis) — the cleaning path is identical.
    """

    mac: str
    timestamp: float

    def __post_init__(self) -> None:
        if not self.mac:
            raise ValueError("query mac must be non-empty")
        if self.timestamp < 0:
            raise ValueError(
                f"query timestamp must be >= 0, got {self.timestamp}")

    def __str__(self) -> str:
        return f"Q({self.mac} @ {format_timestamp(self.timestamp)})"
