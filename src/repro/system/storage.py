"""Storage engine (paper Fig. 5): dirty data, clean data, metadata.

Two interchangeable backends implement the same interface: an in-memory
store for tests and benchmarks, and a SQLite store (stdlib ``sqlite3``)
showing how a deployment persists raw events, cleaned answers and space
metadata.  All SQL uses parameterized statements.

Backends can be shared by several independent consumers — the shards of
a :class:`~repro.cluster.ShardedLocater` — through *namespaces*:
:meth:`StorageEngine.namespace` returns a :class:`NamespacedStorage`
view that prefixes answer and metadata keys so views never collide,
while raw events (whose ids are globally unique already) remain shared.
Both backends serialize every operation behind an internal lock (and
SQLite connects with ``check_same_thread=False``), so namespace views
may be driven from different threads — e.g. a cluster's thread-pool
shards persisting answers concurrently — without corrupting shared
state.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.events.event import ConnectivityEvent


class StorageEngine(ABC):
    """Interface shared by storage backends.

    "Dirty" rows are raw connectivity events as ingested; "clean" rows are
    answered queries (device, time, location) kept for reuse and audit.
    """

    # -- dirty (raw) events --------------------------------------------
    @abstractmethod
    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        """Persist raw events; returns the number stored."""

    @abstractmethod
    def load_events(self) -> Iterator[ConnectivityEvent]:
        """Iterate all stored raw events in timestamp order."""

    @abstractmethod
    def event_count(self) -> int:
        """Number of raw events stored."""

    @abstractmethod
    def max_event_id(self) -> int:
        """Largest event id stored, or −1 when no row carries one.

        Ingestion engines seed their id counters from this (and the
        table's maximum) so restarts over a pre-populated store never
        reissue colliding ids.
        """

    # -- clean (answered) locations ------------------------------------
    @abstractmethod
    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        """Persist one cleaned localization answer."""

    @abstractmethod
    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        """Exact-match lookup of a previously cleaned answer."""

    @abstractmethod
    def clear_answers(self, mac_prefix: "str | None" = None) -> int:
        """Drop cleaned answers; returns how many were dropped.

        Cleaned answers are a memo of the cleaning pipeline's output over
        the *current* event table.  New events can change any answer —
        even of devices that emitted nothing, because cleaning couples
        devices through co-location — so ingestion invalidates the whole
        store rather than guessing a safe subset.

        Args:
            mac_prefix: When given, only answers whose mac starts with
                this prefix are dropped — the primitive behind
                namespace-scoped invalidation (a shard clearing its own
                answers must not clear its siblings').
        """

    # -- metadata -------------------------------------------------------
    @abstractmethod
    def store_metadata(self, key: str, value: dict) -> None:
        """Persist one metadata document under ``key``."""

    @abstractmethod
    def load_metadata(self, key: str) -> "dict | None":
        """Load a metadata document, or None."""

    @abstractmethod
    def close(self) -> None:
        """Release resources; further use raises :class:`StorageError`."""

    def namespace(self, prefix: str) -> "NamespacedStorage":
        """A view of this backend whose answers/metadata live under ``prefix``.

        Views share the backend's raw-event store (event ids are globally
        unique, so there is nothing to isolate) but mangle answer macs and
        metadata keys to ``"<prefix>:<key>"``, letting many independent
        consumers — e.g. the shards of a cluster — share one backend
        without key collisions.  Closing a view does not close the
        backend.
        """
        return NamespacedStorage(self, prefix)

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NamespacedStorage(StorageEngine):
    """A prefix-scoped view over a shared backend (see ``namespace``).

    Answer macs and metadata keys are stored as ``"<prefix>:<key>"``;
    :meth:`clear_answers` drops only this namespace's answers.  Event
    operations delegate untouched.  Nesting namespaces concatenates the
    prefixes (``a`` then ``b`` → ``"a:b:<key>"``).
    """

    def __init__(self, inner: StorageEngine, prefix: str) -> None:
        if not prefix or ":" in prefix:
            raise StorageError(
                f"namespace prefix must be non-empty and ':'-free, "
                f"got {prefix!r}")
        self._inner = inner
        self._prefix = prefix
        self._closed = False

    @property
    def prefix(self) -> str:
        """The namespace prefix of this view."""
        return self._prefix

    @property
    def backend(self) -> StorageEngine:
        """The shared backend this view writes through to."""
        return self._inner

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage namespace view already closed")

    def _key(self, key: str) -> str:
        return f"{self._prefix}:{key}"

    # -- events: shared with the backend, ids already globally unique --
    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        self._check_open()
        return self._inner.store_events(events)

    def load_events(self) -> Iterator[ConnectivityEvent]:
        self._check_open()
        return self._inner.load_events()

    def event_count(self) -> int:
        self._check_open()
        return self._inner.event_count()

    def max_event_id(self) -> int:
        self._check_open()
        return self._inner.max_event_id()

    # -- answers and metadata: prefix-scoped ---------------------------
    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        self._check_open()
        self._inner.store_answer(self._key(mac), timestamp, location)

    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        self._check_open()
        return self._inner.find_answer(self._key(mac), timestamp)

    def clear_answers(self, mac_prefix: "str | None" = None) -> int:
        self._check_open()
        scoped = self._key(mac_prefix) if mac_prefix else f"{self._prefix}:"
        return self._inner.clear_answers(mac_prefix=scoped)

    def store_metadata(self, key: str, value: dict) -> None:
        self._check_open()
        self._inner.store_metadata(self._key(key), value)

    def load_metadata(self, key: str) -> "dict | None":
        self._check_open()
        return self._inner.load_metadata(self._key(key))

    def close(self) -> None:
        # Only the view closes; the shared backend stays usable for the
        # other namespaces (and for whoever owns its lifecycle).
        self._closed = True


class InMemoryStorage(StorageEngine):
    """Dictionary-backed storage for tests and benchmarks.

    Thread-safe: every operation holds one internal lock, so concurrent
    shard threads sharing this backend (directly or through namespace
    views) never observe a dict mid-mutation.
    """

    def __init__(self) -> None:
        self._events: list[ConnectivityEvent] = []
        self._answers: dict[tuple[str, float], str] = {}
        self._metadata: dict[str, dict] = {}
        self._closed = False
        self._lock = threading.RLock()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage engine already closed")

    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        with self._lock:
            self._check_open()
            count = 0
            for event in events:
                self._events.append(event)
                count += 1
            return count

    def load_events(self) -> Iterator[ConnectivityEvent]:
        with self._lock:
            self._check_open()
            return iter(sorted(self._events))

    def event_count(self) -> int:
        with self._lock:
            self._check_open()
            return len(self._events)

    def max_event_id(self) -> int:
        with self._lock:
            self._check_open()
            return max((e.event_id for e in self._events), default=-1)

    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        with self._lock:
            self._check_open()
            self._answers[(mac, timestamp)] = location

    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        with self._lock:
            self._check_open()
            return self._answers.get((mac, timestamp))

    def clear_answers(self, mac_prefix: "str | None" = None) -> int:
        with self._lock:
            self._check_open()
            if mac_prefix is None:
                dropped = len(self._answers)
                self._answers.clear()
                return dropped
            doomed = [key for key in self._answers
                      if key[0].startswith(mac_prefix)]
            for key in doomed:
                del self._answers[key]
            return len(doomed)

    def store_metadata(self, key: str, value: dict) -> None:
        with self._lock:
            self._check_open()
            # Round-trip through JSON so both backends accept the same
            # values.
            self._metadata[key] = json.loads(json.dumps(value))

    def load_metadata(self, key: str) -> "dict | None":
        with self._lock:
            self._check_open()
            return self._metadata.get(key)

    def close(self) -> None:
        with self._lock:
            self._closed = True


class SqliteStorage(StorageEngine):
    """SQLite-backed storage engine.

    Args:
        path: Database file path, or ``":memory:"`` (default) for an
            ephemeral database.

    Thread-safe: one shared connection opened with
    ``check_same_thread=False``, every operation serialized behind an
    internal lock (SQLite's own serialized mode would also do, but the
    stdlib does not guarantee it is compiled in).
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS dirty_events (
        event_id  INTEGER PRIMARY KEY AUTOINCREMENT,
        mac       TEXT    NOT NULL,
        timestamp REAL    NOT NULL,
        ap_id     TEXT    NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_dirty_mac_time
        ON dirty_events (mac, timestamp);
    CREATE TABLE IF NOT EXISTS clean_answers (
        mac       TEXT NOT NULL,
        timestamp REAL NOT NULL,
        location  TEXT NOT NULL,
        PRIMARY KEY (mac, timestamp)
    );
    CREATE TABLE IF NOT EXISTS metadata (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()
        self._closed = False
        self._lock = threading.RLock()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage engine already closed")

    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        with self._lock:
            self._check_open()
            # Persist stamped ids verbatim (NULL lets SQLite autoassign
            # for unstamped rows), so replaying from this backend
            # reproduces the ids the ingestion engine issued, exactly
            # like the in-memory one.
            rows = [(e.event_id if e.event_id >= 0 else None,
                     e.mac, e.timestamp, e.ap_id) for e in events]
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO dirty_events "
                    "(event_id, mac, timestamp, ap_id) "
                    "VALUES (?, ?, ?, ?)", rows)
            return len(rows)

    def load_events(self) -> Iterator[ConnectivityEvent]:
        with self._lock:
            self._check_open()
            # event_id breaks timestamp/mac/ap ties so replay order
            # matches InMemoryStorage, which sorts full
            # ConnectivityEvent tuples (timestamp, mac, ap_id,
            # event_id).  Fetched eagerly: a lazily-consumed cursor
            # would read the connection outside the lock.
            rows = self._conn.execute(
                "SELECT event_id, mac, timestamp, ap_id FROM dirty_events "
                "ORDER BY timestamp, mac, ap_id, event_id").fetchall()
        return iter([ConnectivityEvent(timestamp=timestamp, mac=mac,
                                       ap_id=ap_id, event_id=event_id)
                     for event_id, mac, timestamp, ap_id in rows])

    def event_count(self) -> int:
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT COUNT(*) FROM dirty_events").fetchone()
            return int(row[0])

    def max_event_id(self) -> int:
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT COALESCE(MAX(event_id), -1) FROM dirty_events"
            ).fetchone()
            return int(row[0])

    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        with self._lock:
            self._check_open()
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO clean_answers "
                    "(mac, timestamp, location) VALUES (?, ?, ?)",
                    (mac, timestamp, location))

    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT location FROM clean_answers "
                "WHERE mac = ? AND timestamp = ?",
                (mac, timestamp)).fetchone()
            return None if row is None else str(row[0])

    def clear_answers(self, mac_prefix: "str | None" = None) -> int:
        with self._lock:
            self._check_open()
            with self._conn:
                if mac_prefix is None:
                    cursor = self._conn.execute(
                        "DELETE FROM clean_answers")
                else:
                    # Escape LIKE metacharacters so the prefix matches
                    # literally whatever the namespace layer produced.
                    escaped = (mac_prefix.replace("\\", "\\\\")
                               .replace("%", "\\%").replace("_", "\\_"))
                    cursor = self._conn.execute(
                        "DELETE FROM clean_answers "
                        "WHERE mac LIKE ? ESCAPE '\\'", (escaped + "%",))
            return int(cursor.rowcount)

    def store_metadata(self, key: str, value: dict) -> None:
        with self._lock:
            self._check_open()
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO metadata (key, value) "
                    "VALUES (?, ?)", (key, json.dumps(value,
                                                      sort_keys=True)))

    def load_metadata(self, key: str) -> "dict | None":
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT value FROM metadata WHERE key = ?",
                (key,)).fetchone()
            return None if row is None else json.loads(row[0])

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True
