"""Storage engine (paper Fig. 5): dirty data, clean data, metadata.

Two interchangeable backends implement the same interface: an in-memory
store for tests and benchmarks, and a SQLite store (stdlib ``sqlite3``)
showing how a deployment persists raw events, cleaned answers and space
metadata.  All SQL uses parameterized statements.
"""

from __future__ import annotations

import json
import sqlite3
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.events.event import ConnectivityEvent


class StorageEngine(ABC):
    """Interface shared by storage backends.

    "Dirty" rows are raw connectivity events as ingested; "clean" rows are
    answered queries (device, time, location) kept for reuse and audit.
    """

    # -- dirty (raw) events --------------------------------------------
    @abstractmethod
    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        """Persist raw events; returns the number stored."""

    @abstractmethod
    def load_events(self) -> Iterator[ConnectivityEvent]:
        """Iterate all stored raw events in timestamp order."""

    @abstractmethod
    def event_count(self) -> int:
        """Number of raw events stored."""

    @abstractmethod
    def max_event_id(self) -> int:
        """Largest event id stored, or −1 when no row carries one.

        Ingestion engines seed their id counters from this (and the
        table's maximum) so restarts over a pre-populated store never
        reissue colliding ids.
        """

    # -- clean (answered) locations ------------------------------------
    @abstractmethod
    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        """Persist one cleaned localization answer."""

    @abstractmethod
    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        """Exact-match lookup of a previously cleaned answer."""

    @abstractmethod
    def clear_answers(self) -> int:
        """Drop every cleaned answer; returns how many were dropped.

        Cleaned answers are a memo of the cleaning pipeline's output over
        the *current* event table.  New events can change any answer —
        even of devices that emitted nothing, because cleaning couples
        devices through co-location — so ingestion invalidates the whole
        store rather than guessing a safe subset.
        """

    # -- metadata -------------------------------------------------------
    @abstractmethod
    def store_metadata(self, key: str, value: dict) -> None:
        """Persist one metadata document under ``key``."""

    @abstractmethod
    def load_metadata(self, key: str) -> "dict | None":
        """Load a metadata document, or None."""

    @abstractmethod
    def close(self) -> None:
        """Release resources; further use raises :class:`StorageError`."""

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InMemoryStorage(StorageEngine):
    """Dictionary-backed storage for tests and benchmarks."""

    def __init__(self) -> None:
        self._events: list[ConnectivityEvent] = []
        self._answers: dict[tuple[str, float], str] = {}
        self._metadata: dict[str, dict] = {}
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage engine already closed")

    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        self._check_open()
        count = 0
        for event in events:
            self._events.append(event)
            count += 1
        return count

    def load_events(self) -> Iterator[ConnectivityEvent]:
        self._check_open()
        return iter(sorted(self._events))

    def event_count(self) -> int:
        self._check_open()
        return len(self._events)

    def max_event_id(self) -> int:
        self._check_open()
        return max((e.event_id for e in self._events), default=-1)

    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        self._check_open()
        self._answers[(mac, timestamp)] = location

    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        self._check_open()
        return self._answers.get((mac, timestamp))

    def clear_answers(self) -> int:
        self._check_open()
        dropped = len(self._answers)
        self._answers.clear()
        return dropped

    def store_metadata(self, key: str, value: dict) -> None:
        self._check_open()
        # Round-trip through JSON so both backends accept the same values.
        self._metadata[key] = json.loads(json.dumps(value))

    def load_metadata(self, key: str) -> "dict | None":
        self._check_open()
        return self._metadata.get(key)

    def close(self) -> None:
        self._closed = True


class SqliteStorage(StorageEngine):
    """SQLite-backed storage engine.

    Args:
        path: Database file path, or ``":memory:"`` (default) for an
            ephemeral database.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS dirty_events (
        event_id  INTEGER PRIMARY KEY AUTOINCREMENT,
        mac       TEXT    NOT NULL,
        timestamp REAL    NOT NULL,
        ap_id     TEXT    NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_dirty_mac_time
        ON dirty_events (mac, timestamp);
    CREATE TABLE IF NOT EXISTS clean_answers (
        mac       TEXT NOT NULL,
        timestamp REAL NOT NULL,
        location  TEXT NOT NULL,
        PRIMARY KEY (mac, timestamp)
    );
    CREATE TABLE IF NOT EXISTS metadata (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("storage engine already closed")

    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        self._check_open()
        # Persist stamped ids verbatim (NULL lets SQLite autoassign for
        # unstamped rows), so replaying from this backend reproduces the
        # ids the ingestion engine issued, exactly like the in-memory one.
        rows = [(e.event_id if e.event_id >= 0 else None,
                 e.mac, e.timestamp, e.ap_id) for e in events]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO dirty_events (event_id, mac, timestamp, ap_id) "
                "VALUES (?, ?, ?, ?)", rows)
        return len(rows)

    def load_events(self) -> Iterator[ConnectivityEvent]:
        self._check_open()
        # event_id breaks timestamp/mac/ap ties so replay order matches
        # InMemoryStorage, which sorts full ConnectivityEvent tuples
        # (timestamp, mac, ap_id, event_id).
        cursor = self._conn.execute(
            "SELECT event_id, mac, timestamp, ap_id FROM dirty_events "
            "ORDER BY timestamp, mac, ap_id, event_id")
        for event_id, mac, timestamp, ap_id in cursor:
            yield ConnectivityEvent(timestamp=timestamp, mac=mac,
                                    ap_id=ap_id, event_id=event_id)

    def event_count(self) -> int:
        self._check_open()
        row = self._conn.execute(
            "SELECT COUNT(*) FROM dirty_events").fetchone()
        return int(row[0])

    def max_event_id(self) -> int:
        self._check_open()
        row = self._conn.execute(
            "SELECT COALESCE(MAX(event_id), -1) FROM dirty_events"
        ).fetchone()
        return int(row[0])

    def store_answer(self, mac: str, timestamp: float, location: str) -> None:
        self._check_open()
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO clean_answers "
                "(mac, timestamp, location) VALUES (?, ?, ?)",
                (mac, timestamp, location))

    def find_answer(self, mac: str, timestamp: float) -> "str | None":
        self._check_open()
        row = self._conn.execute(
            "SELECT location FROM clean_answers "
            "WHERE mac = ? AND timestamp = ?", (mac, timestamp)).fetchone()
        return None if row is None else str(row[0])

    def clear_answers(self) -> int:
        self._check_open()
        with self._conn:
            cursor = self._conn.execute("DELETE FROM clean_answers")
        return int(cursor.rowcount)

    def store_metadata(self, key: str, value: dict) -> None:
        self._check_open()
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO metadata (key, value) VALUES (?, ?)",
                (key, json.dumps(value, sort_keys=True)))

    def load_metadata(self, key: str) -> "dict | None":
        self._check_open()
        row = self._conn.execute(
            "SELECT value FROM metadata WHERE key = ?", (key,)).fetchone()
        return None if row is None else json.loads(row[0])

    def close(self) -> None:
        if not self._closed:
            self._conn.close()
            self._closed = True
