"""Batch query planning: shared-computation execution order (tentpole of §5+).

The caching engine of the paper amortizes affinity work *across* queries;
this module extends the same idea to the query-execution layer.  A batch
of location queries is grouped by (device, time bucket) and the groups
are executed in bucket-granular timestamp order — strictly chronological
across buckets, device-major inside a bucket — so that:

* the caching engine warms front-to-back — early-bucket queries record
  the affinity edges that later buckets' neighbor ordering and bounds
  consume;
* queries of one device inside one bucket run back to back, sharing the
  device's trained coarse models and gap feature rows;
* queries landing on the same timestamp (occupancy grids, trajectory
  sampling, contact tracing) share one online-device snapshot for
  neighbor discovery and reuse memoized affinity computations.

The plan never changes *what* is computed — only the order and the
sharing.  ``Locater.locate_batch`` therefore produces answers bitwise
identical to calling ``locate`` once per query in the plan's execution
order (``QueryPlan.ordered_queries``); the equivalence suite in
``tests/integration/test_batch_equivalence.py`` enforces this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.system.query import LocationQuery

#: Default width of a planning time bucket (one hour).  Buckets bound how
#: far execution may deviate from global timestamp order while still
#: keeping one device's nearby queries adjacent.
DEFAULT_BUCKET_SECONDS = 3600.0


@dataclass(frozen=True, slots=True)
class PlannedQuery:
    """One query of a batch, remembering its position in the input.

    Attributes:
        index: Position in the input sequence (answers are returned in
            input order regardless of execution order).
        query: The query itself.
    """

    index: int
    query: LocationQuery


@dataclass(frozen=True, slots=True)
class QueryGroup:
    """All queries of one device falling into one time bucket.

    Attributes:
        mac: The queried device.
        bucket: Bucket ordinal (``floor(timestamp / bucket_seconds)``).
        queries: The group's queries, sorted by (timestamp, input index).
    """

    mac: str
    bucket: int
    queries: tuple[PlannedQuery, ...]

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def start(self) -> float:
        """Earliest query timestamp in the group."""
        return self.queries[0].query.timestamp

    @property
    def end(self) -> float:
        """Latest query timestamp in the group."""
        return self.queries[-1].query.timestamp

    def __str__(self) -> str:
        return (f"group({self.mac}, bucket {self.bucket}, "
                f"{len(self.queries)} queries)")


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """The full execution plan of one batch.

    Groups are ordered by (bucket, device): execution sweeps the
    timeline front to back at bucket granularity (inside one bucket,
    one device's queries run together even if another device's queries
    have earlier timestamps).  Iterating the plan's groups and each
    group's queries yields the canonical execution order.
    """

    groups: tuple[QueryGroup, ...]
    bucket_seconds: float

    def __len__(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def group_count(self) -> int:
        """Number of (device, bucket) groups."""
        return len(self.groups)

    def ordered(self) -> list[PlannedQuery]:
        """Every planned query in execution order."""
        return [planned for group in self.groups
                for planned in group.queries]

    def ordered_queries(self) -> list[LocationQuery]:
        """Execution-order queries — the sequential-equivalence reference.

        Running ``locate`` once per entry of this list on a fresh system
        produces exactly the answers ``locate_batch`` returns (modulo the
        return ordering, which follows the input instead).
        """
        return [planned.query for planned in self.ordered()]

    def stats(self) -> dict[str, float]:
        """Plan shape summary (for logs and tests)."""
        sizes = [len(group) for group in self.groups] or [0]
        return {
            "queries": float(len(self)),
            "groups": float(len(self.groups)),
            "max_group": float(max(sizes)),
            "mean_group": sum(sizes) / max(len(self.groups), 1),
        }


def plan_queries(queries: "Iterable[LocationQuery] | Sequence[LocationQuery]",
                 bucket_seconds: float = DEFAULT_BUCKET_SECONDS) -> QueryPlan:
    """Group ``queries`` by (device, time bucket) into an execution plan.

    The plan is deterministic: groups are sorted by (bucket, mac) and
    queries inside a group by (timestamp, input index), so duplicate
    (mac, timestamp) queries keep their input order — which is what lets
    storage-backed duplicate short-circuiting behave exactly as in the
    sequential path.

    Args:
        queries: The batch, in caller order.
        bucket_seconds: Bucket width; must be positive.
    """
    if not bucket_seconds > 0 or not math.isfinite(bucket_seconds):
        raise ConfigurationError(
            f"bucket_seconds must be positive and finite, "
            f"got {bucket_seconds}")
    grouped: dict[tuple[int, str], list[PlannedQuery]] = {}
    for index, query in enumerate(queries):
        bucket = int(math.floor(query.timestamp / bucket_seconds))
        grouped.setdefault((bucket, query.mac), []).append(
            PlannedQuery(index=index, query=query))
    groups = []
    for (bucket, mac) in sorted(grouped):
        members = sorted(grouped[(bucket, mac)],
                         key=lambda p: (p.query.timestamp, p.index))
        groups.append(QueryGroup(mac=mac, bucket=bucket,
                                 queries=tuple(members)))
    return QueryPlan(groups=tuple(groups), bucket_seconds=bucket_seconds)
