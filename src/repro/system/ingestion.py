"""Ingestion engine (paper Fig. 5): stream events into table + storage.

Real deployments receive association events from wireless controllers via
SNMP/NETCONF/Syslog; here any iterable of :class:`ConnectivityEvent`
plays that role.  The engine assigns event ids, forwards rows to the
storage engine in batches, and maintains the in-memory
:class:`~repro.events.table.EventTable` the cleaning engine reads.

Ingestion is an *online* operation: every :meth:`IngestionEngine.ingest`
call merges the new rows incrementally (see ``EventTable.freeze``),
re-estimates δ only for the devices whose logs actually changed, and
publishes an :class:`IngestReport` to subscribers — which is how a
:class:`~repro.system.locater.Locater` learns it must invalidate models
trained on the pre-ingest table (``Locater.on_ingest``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping

from repro.events.event import ConnectivityEvent
from repro.events.table import EventTable
from repro.events.validity import DeltaEstimator
from repro.system.storage import StorageEngine
from repro.util.timeutil import TimeInterval


@dataclass(frozen=True, slots=True)
class IngestReport:
    """What one :meth:`IngestionEngine.ingest` call changed.

    Attributes:
        count: Events ingested by this call.
        generation: The table generation after the merge (pass to
            ``EventTable.changed_since`` to resume the change feed).
        changed: Per changed MAC, the interval spanning the timestamps of
            the rows merged by this call (``end`` is the latest merged
            timestamp itself).
        delta_changes: MAC → (old δ, new δ) for devices whose validity
            period estimate actually moved; consumers holding
            validity-derived snapshots must treat these devices as
            changed at *all* times, not just inside ``changed``.
    """

    count: int
    generation: int
    changed: Mapping[str, TimeInterval] = field(default_factory=dict)
    delta_changes: Mapping[str, tuple[float, float]] = field(
        default_factory=dict)

    @property
    def macs(self) -> frozenset[str]:
        """The devices whose logs changed."""
        return frozenset(self.changed)


class IngestionEngine:
    """Feeds connectivity events into the system.

    Args:
        table: Event table the cleaning engine queries.
        storage: Optional storage engine receiving the raw (dirty) rows.
        batch_size: Rows per storage write.
        estimate_deltas: Re-estimate δ after each ingest batch for the
            devices whose logs changed (cheap, and keeps validity windows
            calibrated as data grows).

    Event ids continue from whatever the table or storage already holds,
    so a second engine — or one restarted over a persisted store — never
    reissues ids that collide with existing rows.

    Subscribers registered with :meth:`subscribe` receive the
    :class:`IngestReport` of every ingest call, in registration order.
    """

    def __init__(self, table: EventTable,
                 storage: "StorageEngine | None" = None,
                 batch_size: int = 1000,
                 estimate_deltas: bool = True) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._table = table
        self._storage = storage
        self._batch_size = batch_size
        self._estimate_deltas = estimate_deltas
        self._estimator = DeltaEstimator()
        seed = table.max_event_id
        if storage is not None:
            seed = max(seed, storage.max_event_id())
        self._next_event_id = seed + 1
        self._subscribers: list[Callable[[IngestReport], None]] = []

    @property
    def table(self) -> EventTable:
        """The event table maintained by this engine."""
        return self._table

    def subscribe(self, listener: Callable[[IngestReport], None]
                  ) -> Callable[[], None]:
        """Register a change-feed listener; returns an unsubscribe hook.

        The returned zero-arg handle and :meth:`unsubscribe` are
        equivalent; both are idempotent, so teardown paths (e.g. a
        cluster closing its shards, a streaming session exiting its
        context) can call either without tracking registration state.
        """
        self._subscribers.append(listener)
        return lambda: self.unsubscribe(listener)

    def unsubscribe(self, listener: Callable[[IngestReport], None]) -> bool:
        """Remove a change-feed listener; returns whether it was registered.

        Listeners hold references to whole serving stacks (a
        ``Locater.on_ingest`` bound method keeps its models and memos
        alive), so long-lived engines must drop them on teardown or the
        stacks leak and keep receiving reports.

        Removal is a single atomic ``list.remove`` — no check-then-act
        window — so concurrent unsubscribes of the same listener (a
        gateway closing its session from the event loop while shard
        teardown runs elsewhere) race benignly: exactly one caller wins
        and returns True.  An ingest mid-publish is unaffected either
        way; it notifies a snapshot of the subscriber list.
        """
        try:
            self._subscribers.remove(listener)
        except ValueError:
            return False
        return True

    def resync_event_ids(self) -> int:
        """Catch the id counter up with the table and storage maxima.

        Two engines over one table each seed their counter at
        construction — if both then ingest, the second would reissue
        the first's ids.  :meth:`ingest` therefore resyncs before
        stamping (the counter only ever moves forward, so with a single
        engine this is a no-op); the method is public for owners that
        want the next id without ingesting.  Returns the next id that
        will be issued.
        """
        seed = self._table.max_event_id
        if self._storage is not None:
            seed = max(seed, self._storage.max_event_id())
        self._next_event_id = max(self._next_event_id, seed + 1)
        return self._next_event_id

    def ingest(self, events: Iterable[ConnectivityEvent]) -> IngestReport:
        """Consume a stream of events; returns what changed.

        The report's ``count`` says how many events were ingested; its
        ``changed``/``delta_changes`` maps drive surgical invalidation in
        subscribers.
        """
        # Another engine over the same table (a cluster's and a
        # streaming session's, say) may have stamped ids since this one
        # last looked; never reissue them.
        self.resync_event_ids()
        generation_before = self._table.generation
        batch: list[ConnectivityEvent] = []
        count = 0
        for event in events:
            stamped = ConnectivityEvent(
                timestamp=event.timestamp, mac=event.mac, ap_id=event.ap_id,
                event_id=self._next_event_id)
            self._next_event_id += 1
            self._table.append(stamped)
            batch.append(stamped)
            count += 1
            if len(batch) >= self._batch_size:
                self._flush(batch)
                batch = []
        if batch:
            self._flush(batch)
        self._table.freeze()
        changed = self._table.changed_since(generation_before)
        delta_changes: dict[str, tuple[float, float]] = {}
        if self._estimate_deltas and changed:
            old = {mac: self._table.registry.get(mac).delta
                   for mac in changed}
            new = self._estimator.fit_devices(self._table, sorted(changed))
            delta_changes = {mac: (old[mac], new[mac]) for mac in changed
                             if new[mac] != old[mac]}
        report = IngestReport(count=count,
                              generation=self._table.generation,
                              changed=changed,
                              delta_changes=delta_changes)
        for listener in list(self._subscribers):
            listener(report)
        return report

    def _flush(self, batch: list[ConnectivityEvent]) -> None:
        if self._storage is not None:
            self._storage.store_events(batch)
