"""Ingestion engine (paper Fig. 5): stream events into table + storage.

Real deployments receive association events from wireless controllers via
SNMP/NETCONF/Syslog; here any iterable of :class:`ConnectivityEvent`
plays that role.  The engine assigns event ids, forwards rows to the
storage engine in batches, and maintains the in-memory
:class:`~repro.events.table.EventTable` the cleaning engine reads.
"""

from __future__ import annotations

from typing import Iterable

from repro.events.event import ConnectivityEvent
from repro.events.table import EventTable
from repro.events.validity import DeltaEstimator
from repro.system.storage import StorageEngine


class IngestionEngine:
    """Feeds connectivity events into the system.

    Args:
        table: Event table the cleaning engine queries.
        storage: Optional storage engine receiving the raw (dirty) rows.
        batch_size: Rows per storage write.
        estimate_deltas: Re-estimate per-device δ after each ingest batch
            (cheap, and keeps validity windows calibrated as data grows).
    """

    def __init__(self, table: EventTable,
                 storage: "StorageEngine | None" = None,
                 batch_size: int = 1000,
                 estimate_deltas: bool = True) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._table = table
        self._storage = storage
        self._batch_size = batch_size
        self._estimate_deltas = estimate_deltas
        self._estimator = DeltaEstimator()
        self._next_event_id = 0

    @property
    def table(self) -> EventTable:
        """The event table maintained by this engine."""
        return self._table

    def ingest(self, events: Iterable[ConnectivityEvent]) -> int:
        """Consume a stream of events; returns how many were ingested."""
        batch: list[ConnectivityEvent] = []
        count = 0
        for event in events:
            stamped = ConnectivityEvent(
                timestamp=event.timestamp, mac=event.mac, ap_id=event.ap_id,
                event_id=self._next_event_id)
            self._next_event_id += 1
            self._table.append(stamped)
            batch.append(stamped)
            count += 1
            if len(batch) >= self._batch_size:
                self._flush(batch)
                batch = []
        if batch:
            self._flush(batch)
        self._table.freeze()
        if self._estimate_deltas and count:
            self._estimator.fit_table(self._table)
        return count

    def _flush(self, batch: list[ConnectivityEvent]) -> None:
        if self._storage is not None:
            self._storage.store_events(batch)
