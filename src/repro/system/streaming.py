"""Online serving: interleave ingestion with query answering (Fig. 5, live).

LOCATER is a *live* system — association events stream in from wireless
controllers while location queries keep arriving.  The pieces involved
are all independently usable (``IngestionEngine.subscribe``,
``Locater.on_ingest``, ``Locater.make_batch_state``); this module wires
them into one object so a deployment loop is three lines::

    session = StreamingSession(locater)          # wraps locater.table
    session.ingest(new_events)                   # merge + invalidate
    answers = session.query(burst)               # fresh, shared-work

The session owns a persistent :class:`~repro.system.locater.BatchState`
so query bursts keep reusing neighbor snapshots and affinity memos
*across* bursts, and prunes exactly the entries each ingest staled:
memos mentioning a changed device, and online-device snapshots within
validity reach of the new rows (all snapshots, when a device's δ
estimate moved).  Because every cached value is a pure function of table
state, the answers are bitwise identical to what a system rebuilt from
scratch over the merged log would produce — the equivalence suite in
``tests/integration/test_streaming_equivalence.py`` enforces this.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.events.event import ConnectivityEvent
from repro.system.ingestion import IngestionEngine, IngestReport
from repro.system.locater import Locater, LocationAnswer
from repro.system.planner import DEFAULT_BUCKET_SECONDS
from repro.system.query import LocationQuery


#: Bound on the session's neighbor-snapshot memo (one entry per distinct
#: query timestamp); oldest-inserted snapshots evict first.
MAX_SNAPSHOTS = 4096

#: When any one of the session's affinity/feature memo dicts outgrows
#: this, it is cleared wholesale — memos are pure caches, so the only
#: cost is recomputation, and wholesale clearing keeps the steady-state
#: bookkeeping trivial.
MAX_MEMO_ENTRIES = 65536


def prune_batch_state(state, report: IngestReport, summary,
                      registry) -> None:
    """Drop from a persistent batch state everything one ingest staled.

    THE surgical-invalidation policy for held states — shared by
    :class:`StreamingSession` and the cluster layer's ingest fan-out so
    the rule cannot drift between them (the bitwise-equivalence suites
    of both depend on it): memos mentioning a changed device are
    dropped, and online-device snapshots within validity reach of the
    new rows are invalidated (all snapshots, when any device's δ
    estimate moved — a moved δ shifts that device's validity windows
    everywhere).

    Full invalidations are the *caller's* job (a session swaps in a
    fresh state; a cluster resets in place) — this handles the
    surgical case only.

    Args:
        state: A :class:`~repro.system.locater.BatchState` or any
            object with the same ``drop_devices``/``neighbors`` surface
            (e.g. a cluster's fan-out state).
        report: The ingest report that triggered the invalidation.
        summary: The :class:`~repro.system.locater.InvalidationSummary`
            the locater derived from it.
        registry: The table's device registry (for per-device δ slack).
    """
    if summary.macs:
        state.drop_devices(set(summary.macs))
    if summary.delta_changed:
        state.neighbors.invalidate_all()
    else:
        for mac, interval in report.changed.items():
            state.neighbors.invalidate_interval(
                interval, slack=registry.get(mac).delta)


class StreamingSession:
    """A long-running serve loop: ingest batches, answer query bursts.

    Args:
        locater: The cleaning system to keep fresh.
        engine: Optional ingestion engine; must wrap the locater's table.
            Defaults to a new storage-less engine over that table.  The
            session subscribes itself — do not additionally subscribe
            ``locater.on_ingest`` to the same engine, or invalidation
            runs twice (harmless, but wasted work).
        bucket_seconds: Planning bucket width for query bursts.
    """

    def __init__(self, locater: Locater,
                 engine: "IngestionEngine | None" = None,
                 bucket_seconds: float = DEFAULT_BUCKET_SECONDS) -> None:
        if engine is None:
            engine = IngestionEngine(locater.table)
        elif engine.table is not locater.table:
            raise ConfigurationError(
                "ingestion engine and locater must share one event table")
        self._locater = locater
        self._engine = engine
        self._bucket_seconds = bucket_seconds
        self._state = locater.make_batch_state(max_snapshots=MAX_SNAPSHOTS)
        self._unsubscribe = engine.subscribe(self._on_ingest)
        self.ingests = 0
        self.full_invalidations = 0

    @property
    def locater(self) -> Locater:
        """The cleaning system served by this session."""
        return self._locater

    @property
    def engine(self) -> IngestionEngine:
        """The ingestion engine feeding the session."""
        return self._engine

    @property
    def state(self):
        """The persistent shared-computation state (pruned on ingest).

        Replaced wholesale after a full invalidation, so hold the
        session — not this object — across ingests.
        """
        return self._state

    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[ConnectivityEvent]) -> IngestReport:
        """Merge new events; stale models and memos are pruned en route."""
        return self._engine.ingest(events)

    def query(self, queries: Sequence[LocationQuery]
              ) -> list[LocationAnswer]:
        """Answer a burst of queries against the current table."""
        return self._locater.locate_batch(
            queries, bucket_seconds=self._bucket_seconds, state=self._state)

    def locate(self, mac: str, timestamp: float) -> LocationAnswer:
        """Answer a single query (still sharing the session's memos)."""
        return self.query([LocationQuery(mac=mac, timestamp=timestamp)])[0]

    def close(self) -> None:
        """Detach from the engine's change feed.  Idempotent — shard
        teardown may run again after a supervised restart replaces a
        half-closed worker, and a gateway may close its session while a
        serve loop is mid-tick.  The handle is swapped out *before* it
        is invoked (and unsubscribe itself removes atomically), so
        concurrent or re-entrant closes release the subscription exactly
        once."""
        unsubscribe, self._unsubscribe = self._unsubscribe, None
        if unsubscribe is not None:
            unsubscribe()

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def observe_report(self, report: IngestReport):
        """React to a merge some *external* actor applied to the table.

        The cluster's shared-memory sync path uses this: the authoritative
        process merged and published new segments, the attached view
        applied the sync, and this session must now invalidate and prune
        exactly as if its own engine had merged — same escalation rule,
        same surgical pruning, same counters.  Returns the
        :class:`~repro.system.locater.InvalidationSummary`.
        """
        return self._on_ingest(report)

    # ------------------------------------------------------------------
    def _on_ingest(self, report: IngestReport):
        """Invalidate the locater and prune the persistent batch state."""
        self.ingests += 1
        summary = self._locater.on_ingest(report)
        if summary.full:
            self.full_invalidations += 1
            self._state = self._locater.make_batch_state(
                max_snapshots=MAX_SNAPSHOTS)
            return summary
        prune_batch_state(self._state, report, summary,
                          self._locater.table.registry)
        self._trim_memos()
        return summary

    def _trim_memos(self) -> None:
        """Bound the persistent memos (timestamp-keyed entries accrue
        across bursts; clearing an oversized memo only costs
        recomputation)."""
        for memo in self._state.memo_dicts():
            if len(memo) > MAX_MEMO_ENTRIES:
                memo.clear()
