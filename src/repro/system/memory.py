"""Memory-budgeted eviction over the system's recomputable state.

LOCATER's caches — trained per-device coarse models, batch memo dicts,
and the cold tail of the event log itself — are all *pure functions* of
the table (plus configuration).  That is the invariant this module
trades on: any of them can be dropped at any time and the system's
answers stay bitwise identical, because the recompute-on-miss path runs
the exact code that produced the cached value in the first place.  What
a budget buys is therefore purely a space/time trade, never a
correctness trade (the shape of the §5 caching cost model, applied to
memory instead of latency).

:class:`MemoryManager` is a single LRU over heterogeneous *entries*:

* **log columns** — a cold :class:`~repro.events.columns.HeapColumnHandle`
  spills its bytes to disk and reloads them bitwise on next access
  (``np.savez``/``np.load`` round-trip float64/int32 exactly).
* **coarse models** — evicting pops the trained classifiers; the next
  query for that device retrains from the unchanged log (training is
  deterministic, so the model — and every answer — is reproduced).
* **batch memos** — evicting rebinds the memo dicts of a live
  :class:`~repro.system.locater.BatchState` to empty ones; memoized
  values are recomputed on demand.

Entries self-report their size through a ``size_fn`` — sizes change as
memos grow or columns spill, so nothing is cached; ``enforce()`` walks
entries in LRU order evicting until the resident total fits the budget.
*Persistent* entries (logs, memos: the owning object outlives any one
eviction) stay registered after evicting — their ``size_fn`` simply
reports less — while one-shot entries (models: the entry dies with the
cached object) are dropped from the index.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError

#: Nominal accounting size of one memo-dict entry.  Memo values are
#: mostly small numpy rows and floats; a flat per-entry constant keeps
#: the size_fn O(1) (len() of the dicts) while still scaling the
#: accounted bytes with actual usage.
MEMO_ENTRY_NBYTES = 256

#: Baseline object overhead charged per python object in
#: :func:`approx_nbytes` (header + refcount + alignment, rounded up).
_OBJECT_OVERHEAD = 56


class _Entry:
    """One evictable unit inside the manager's LRU."""

    __slots__ = ("category", "key", "size_fn", "evictor", "persistent",
                 "alive", "evictions")

    def __init__(self, category: str, key: object,
                 size_fn: Callable[[], int],
                 evictor: Callable[[], "int | None"],
                 persistent: bool) -> None:
        self.category = category
        self.key = key
        self.size_fn = size_fn
        self.evictor = evictor
        self.persistent = persistent
        self.alive = True
        self.evictions = 0


def approx_nbytes(obj: object, _seen: "set[int] | None" = None) -> int:
    """Rough recursive byte estimate of a python object graph.

    Exact for numpy arrays (``.nbytes`` plus header), structural for
    containers and slotted/dataclass objects, flat for everything else.
    Used to account trained models; precision only has to be good enough
    for *relative* LRU pressure, not allocator truth.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 0
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96
    if isinstance(obj, (str, bytes)):
        return _OBJECT_OVERHEAD + len(obj)
    if isinstance(obj, (int, float, bool, type(None), np.generic)):
        return 32
    if isinstance(obj, dict):
        return _OBJECT_OVERHEAD + sum(
            approx_nbytes(k, _seen) + approx_nbytes(v, _seen)
            for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _OBJECT_OVERHEAD + sum(approx_nbytes(x, _seen) for x in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _OBJECT_OVERHEAD + sum(
            approx_nbytes(getattr(obj, f.name, None), _seen)
            for f in dataclasses.fields(obj))
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        return _OBJECT_OVERHEAD + sum(
            approx_nbytes(getattr(obj, name, None), _seen)
            for name in slots if isinstance(name, str))
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return _OBJECT_OVERHEAD + approx_nbytes(attrs, _seen)
    return _OBJECT_OVERHEAD


class MemoryManager:
    """LRU eviction of recomputable state under a byte budget.

    Args:
        budget_bytes: Resident-byte target ``enforce()`` drives the
            accounted total down to.  ``0`` is legal (evict everything
            evictable on every enforce — the torture configuration the
            equivalence tests run); the budget bounds *accounted* state,
            which recomputes on demand, so no value of it can make an
            answer wrong, only slower.

    Thread-unsafe by design, like the rest of the serving stack: one
    manager belongs to one :class:`~repro.system.locater.Locater` (or
    one shard).
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ConfigurationError(
                f"memory budget must be >= 0 bytes, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        # Insertion-ordered dict as the LRU list: oldest first, touch
        # re-inserts at the MRU end.  Keyed by the entry object itself
        # (categories may reuse keys across generations of an object).
        self._lru: "dict[_Entry, None]" = {}
        self._evictions = 0
        self._bytes_evicted = 0

    # ------------------------------------------------------------------
    def charge(self, category: str, key: object, *,
               size_fn: Callable[[], int],
               evictor: Callable[[], "int | None"],
               persistent: bool = False) -> _Entry:
        """Register one evictable unit; returns its LRU entry.

        ``size_fn`` re-reports the entry's resident bytes on every
        enforce (sizes drift as memos grow or columns spill).
        ``evictor`` drops the bytes; it may return the count freed (used
        for accounting when the post-eviction ``size_fn`` still includes
        them, e.g. one-shot entries about to be deregistered).
        """
        entry = _Entry(category, key, size_fn, evictor, persistent)
        self._lru[entry] = None
        return entry

    def touch(self, entry: _Entry) -> None:
        """Move an entry to the MRU end (it was just used)."""
        if entry.alive and entry in self._lru:
            del self._lru[entry]
            self._lru[entry] = None

    def release(self, entry: _Entry) -> None:
        """Deregister an entry (its object was invalidated/replaced)."""
        entry.alive = False
        self._lru.pop(entry, None)

    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Accounted resident bytes across all live entries (recomputed)."""
        return sum(entry.size_fn() for entry in self._lru)

    def enforce(self) -> int:
        """Evict in LRU order until the accounted total fits the budget.

        Returns the bytes freed.  Each entry is visited at most once per
        call (an evictor that frees nothing cannot loop the walk), and
        entries whose current size is zero are skipped — evicting them
        would churn state without freeing memory.
        """
        total = self.resident_bytes()
        if total <= self.budget_bytes:
            return 0
        freed_total = 0
        for entry in list(self._lru):
            if total <= self.budget_bytes:
                break
            if not entry.alive:
                continue
            size_before = entry.size_fn()
            if size_before <= 0:
                continue
            returned = entry.evictor()
            entry.evictions += 1
            self._evictions += 1
            if entry.persistent:
                freed = size_before - entry.size_fn()
                # Evicted-but-registered entries re-enter at the MRU end
                # so repeat enforces walk genuinely cold entries first.
                self.touch(entry)
            else:
                freed = returned if returned is not None else size_before
                self.release(entry)
            freed_total += freed
            self._bytes_evicted += freed
            total -= freed
        return freed_total

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Accounting snapshot (budget, residency, eviction counters)."""
        by_category: dict[str, int] = {}
        for entry in self._lru:
            by_category[entry.category] = \
                by_category.get(entry.category, 0) + entry.size_fn()
        return {
            "budget_bytes": self.budget_bytes,
            "entries": len(self._lru),
            "resident_bytes": sum(by_category.values()),
            "by_category": by_category,
            "evictions": self._evictions,
            "bytes_evicted": self._bytes_evicted,
        }
