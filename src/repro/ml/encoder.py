"""One-hot encoding for categorical gap features (day-of-week, regions)."""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.errors import TrainingError


class OneHotEncoder:
    """One-hot encode a single categorical column.

    Categories can be fixed up front (so every device's region feature has
    the same width regardless of which regions it visited) or learned from
    the data.  Unseen categories at transform time encode as all zeros.
    """

    def __init__(self, categories: "Sequence[Hashable] | None" = None) -> None:
        self._index: "dict[Hashable, int] | None" = None
        if categories is not None:
            self._index = {c: i for i, c in enumerate(categories)}
            if len(self._index) != len(categories):
                raise TrainingError("duplicate categories supplied")

    @property
    def is_fitted(self) -> bool:
        return self._index is not None

    @property
    def width(self) -> int:
        """Number of output columns."""
        if self._index is None:
            raise TrainingError("encoder used before fit()")
        return len(self._index)

    def fit(self, values: Sequence[Hashable]) -> "OneHotEncoder":
        """Learn categories from data (sorted for determinism)."""
        unique = sorted(set(values), key=repr)
        self._index = {c: i for i, c in enumerate(unique)}
        return self

    def transform(self, values: Sequence[Hashable]) -> np.ndarray:
        """Encode values into an ``(n, width)`` 0/1 matrix."""
        if self._index is None:
            raise TrainingError("encoder used before fit()")
        out = np.zeros((len(values), len(self._index)), dtype=float)
        for row, value in enumerate(values):
            col = self._index.get(value)
            if col is not None:
                out[row, col] = 1.0
        return out

    def transform_codes(self, codes: np.ndarray) -> np.ndarray:
        """Encode precomputed *column codes* into an ``(n, width)`` matrix.

        ``codes[i]`` is the output column of row ``i`` (the position of
        its category in this encoder's vocabulary); out-of-range codes —
        conventionally −1 — encode as all zeros, mirroring how
        :meth:`transform` treats unseen categories.  This is the
        vectorized fast path: one fancy-indexed assignment instead of a
        per-row dict lookup.
        """
        if self._index is None:
            raise TrainingError("encoder used before fit()")
        codes = np.asarray(codes)
        out = np.zeros((codes.size, len(self._index)), dtype=float)
        valid = (codes >= 0) & (codes < len(self._index))
        out[np.flatnonzero(valid), codes[valid]] = 1.0
        return out

    def fit_transform(self, values: Sequence[Hashable]) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(values).transform(values)
