"""Multinomial logistic regression trained by gradient ascent.

Binary problems are handled as the two-class case of the softmax model,
which keeps one code path.  Supports L2 regularization, early stopping on
gradient norm, and warm starts — Algorithm 1 of the paper retrains the
classifier once per promoted gap, so reusing the previous weights cuts the
self-training loop's cost substantially.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.util.validation import check_non_negative, check_positive


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Softmax classifier over arbitrary hashable labels.

    Args:
        l2: L2 regularization strength (on weights, not intercepts).
        learning_rate: Gradient-ascent step size.
        max_iter: Iteration cap per fit.
        tol: Stop when the gradient's max-norm falls below this.
        classes: Optional fixed label vocabulary; otherwise learned at fit.
            Fixing it lets :meth:`predict_proba` keep a stable column order
            across refits even when a refit's training set lacks a class.
    """

    def __init__(self, l2: float = 1e-3, learning_rate: float = 0.5,
                 max_iter: int = 200, tol: float = 1e-4,
                 classes: "Sequence[Hashable] | None" = None) -> None:
        check_non_negative("l2", l2)
        check_positive("learning_rate", learning_rate)
        check_positive("max_iter", max_iter)
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = int(max_iter)
        self.tol = tol
        self.classes_: "list[Hashable] | None" = (
            list(classes) if classes is not None else None)
        self.weights_: "np.ndarray | None" = None  # (features, classes)
        self.bias_: "np.ndarray | None" = None     # (classes,)
        self.n_iter_: int = 0

    @property
    def is_fitted(self) -> bool:
        return self.weights_ is not None

    # ------------------------------------------------------------------
    def encode(self, labels: Sequence[Hashable]) -> np.ndarray:
        """Map labels to class codes (positions in :attr:`classes_`).

        Learns the class vocabulary from ``labels`` when none was fixed.
        Self-training precomputes codes once and feeds the integer array
        to :meth:`fit_encoded` on every retrain, skipping the per-label
        dict mapping in the hot loop.
        """
        if self.classes_ is None:
            self.classes_ = sorted(set(labels), key=repr)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        try:
            return np.array([class_index[label] for label in labels],
                            dtype=int)
        except KeyError as exc:
            raise TrainingError(
                f"label {exc.args[0]!r} not in fixed class set "
                f"{self.classes_!r}") from None

    def fit(self, matrix: np.ndarray, labels: Sequence[Hashable],
            warm_start: bool = False) -> "LogisticRegression":
        """Train on ``matrix`` (n × f) and ``labels`` (n).

        With ``warm_start=True`` and compatible shapes, optimization
        resumes from the current weights.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise TrainingError(f"matrix must be 2-D, got shape {data.shape}")
        n, _ = data.shape
        if n == 0:
            raise TrainingError("cannot fit on an empty training set")
        if len(labels) != n:
            raise TrainingError(
                f"labels length {len(labels)} != rows {n}")
        return self.fit_encoded(data, self.encode(labels),
                                warm_start=warm_start)

    def fit_encoded(self, matrix: np.ndarray, codes: np.ndarray,
                    warm_start: bool = False) -> "LogisticRegression":
        """Train on precomputed class codes (see :meth:`encode`).

        The optimization is identical to :meth:`fit`; only the label →
        code mapping is skipped.  Requires a fixed class vocabulary.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise TrainingError(f"matrix must be 2-D, got shape {data.shape}")
        n, f = data.shape
        if n == 0:
            raise TrainingError("cannot fit on an empty training set")
        if self.classes_ is None:
            raise TrainingError("fit_encoded() needs a fixed class set")
        y = np.asarray(codes, dtype=int)
        if y.shape != (n,):
            raise TrainingError(
                f"codes shape {y.shape} != ({n},)")
        k = len(self.classes_)
        if y.size and (y.min() < 0 or y.max() >= k):
            raise TrainingError(
                f"class codes must lie in [0, {k}), got "
                f"[{y.min()}, {y.max()}]")

        onehot = np.zeros((n, k), dtype=float)
        onehot[np.arange(n), y] = 1.0

        reuse = (warm_start and self.weights_ is not None
                 and self.weights_.shape == (f, k))
        weights = self.weights_.copy() if reuse else np.zeros((f, k))
        bias = self.bias_.copy() if reuse else np.zeros(k)

        step = self.learning_rate
        prev_loss = np.inf
        for iteration in range(self.max_iter):
            probs = _softmax(data @ weights + bias)
            error = onehot - probs                      # (n, k)
            grad_w = data.T @ error / n - self.l2 * weights
            grad_b = error.mean(axis=0)
            weights += step * grad_w
            bias += step * grad_b
            gnorm = max(float(np.abs(grad_w).max(initial=0.0)),
                        float(np.abs(grad_b).max(initial=0.0)))
            if gnorm < self.tol:
                self.n_iter_ = iteration + 1
                break
            # Crude backtracking: if loss increased, halve the step.
            loss = self._loss(probs, y, weights)
            if loss > prev_loss + 1e-12:
                step = max(step * 0.5, 1e-4)
            prev_loss = loss
        else:
            self.n_iter_ = self.max_iter

        self.weights_ = weights
        self.bias_ = bias
        return self

    def _loss(self, probs: np.ndarray, y: np.ndarray,
              weights: np.ndarray) -> float:
        eps = 1e-12
        nll = -float(np.log(probs[np.arange(len(y)), y] + eps).mean())
        return nll + 0.5 * self.l2 * float((weights ** 2).sum())

    # ------------------------------------------------------------------
    def predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        """Class-probability matrix (n × classes) in ``classes_`` order."""
        if self.weights_ is None or self.bias_ is None:
            raise TrainingError("classifier used before fit()")
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if data.shape[1] != self.weights_.shape[0]:
            raise TrainingError(
                f"feature width {data.shape[1]} != trained width "
                f"{self.weights_.shape[0]}")
        return _softmax(data @ self.weights_ + self.bias_)

    def predict(self, matrix: np.ndarray) -> list[Hashable]:
        """Most likely label per row."""
        probs = self.predict_proba(matrix)
        assert self.classes_ is not None
        return [self.classes_[int(i)] for i in probs.argmax(axis=1)]

    def predict_one(self, features: np.ndarray) -> "tuple[np.ndarray, Hashable]":
        """The paper's ``Predict``: (probability array, best label)."""
        probs = self.predict_proba(np.asarray(features, dtype=float))[0]
        assert self.classes_ is not None
        return probs, self.classes_[int(probs.argmax())]
