"""Feature standardization (zero mean, unit variance)."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


class StandardScaler:
    """Standardize columns to zero mean / unit variance.

    Constant columns keep their mean subtracted but are left unscaled
    (divide by 1), which keeps one-hot and degenerate features stable.
    """

    def __init__(self) -> None:
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        """Learn column means and standard deviations."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise TrainingError(
                f"scaler requires a non-empty 2-D matrix, got shape {data.shape}")
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        # A constant column's std is not exactly 0.0 in floating point
        # (the mean itself rounds, leaving ulp-sized residuals), so
        # detect constants relative to the column magnitude — dividing
        # by such a std would blow the residuals up to O(1).
        constant = std <= 16.0 * np.finfo(float).eps * \
            np.maximum(1.0, np.abs(self.mean_))
        std[constant] = 1.0
        self.scale_ = std
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise TrainingError("scaler used before fit()")
        data = np.asarray(matrix, dtype=float)
        return (data - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(matrix).transform(matrix)
