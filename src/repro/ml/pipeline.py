"""Feature pipeline combining numeric scaling and categorical encoding."""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.ml.encoder import OneHotEncoder
from repro.ml.scaler import StandardScaler


class FeaturePipeline:
    """Assemble a design matrix from numeric and categorical columns.

    Numeric columns are standardized; each categorical column is one-hot
    encoded against a fixed vocabulary so the design-matrix width is stable
    across refits (needed by Algorithm 1's warm starts).

    Args:
        numeric_columns: Names of numeric features, in order.
        categorical_columns: Mapping-like sequence of (name, vocabulary)
            pairs for categorical features, in order.
    """

    def __init__(self, numeric_columns: Sequence[str],
                 categorical_columns: Sequence[tuple[str, Sequence[Hashable]]]
                 ) -> None:
        self.numeric_columns = list(numeric_columns)
        self.categorical_columns = [(name, list(vocab))
                                    for name, vocab in categorical_columns]
        self._scaler = StandardScaler()
        self._encoders = {name: OneHotEncoder(vocab)
                          for name, vocab in self.categorical_columns}
        self._fitted = False

    @property
    def width(self) -> int:
        """Total design-matrix width."""
        return (len(self.numeric_columns)
                + sum(enc.width for enc in self._encoders.values()))

    def _split(self, rows: Sequence[dict]) -> "tuple[np.ndarray, dict[str, list]]":
        if not rows:
            raise TrainingError("no feature rows supplied")
        numeric = np.array(
            [[float(row[c]) for c in self.numeric_columns] for row in rows],
            dtype=float).reshape(len(rows), len(self.numeric_columns))
        categorical = {name: [row[name] for row in rows]
                       for name, _ in self.categorical_columns}
        return numeric, categorical

    def fit(self, rows: Sequence[dict]) -> "FeaturePipeline":
        """Fit the scaler on numeric columns (encoders have fixed vocab)."""
        numeric, _ = self._split(rows)
        if numeric.shape[1]:
            self._scaler.fit(numeric)
        self._fitted = True
        return self

    def transform(self, rows: Sequence[dict]) -> np.ndarray:
        """Build the design matrix for ``rows``."""
        if not self._fitted:
            raise TrainingError("pipeline used before fit()")
        numeric, categorical = self._split(rows)
        parts: list[np.ndarray] = []
        if numeric.shape[1]:
            parts.append(self._scaler.transform(numeric))
        for name, _ in self.categorical_columns:
            parts.append(self._encoders[name].transform(categorical[name]))
        return np.hstack(parts) if parts else np.zeros((len(rows), 0))

    def fit_transform(self, rows: Sequence[dict]) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(rows).transform(rows)

    # ------------------------------------------------------------------
    # Array-native path (coarse training)
    # ------------------------------------------------------------------
    def spawn(self) -> "FeaturePipeline":
        """A fresh pipeline sharing this one's vocabularies and encoders.

        Fixed-vocabulary :class:`OneHotEncoder` instances are stateless
        after construction, so they are shared rather than rebuilt; only
        the scaler — which is fit per device — is new.  Bulk training
        (``CoarseLocalizer.train_devices``) spawns one pipeline per device
        from a single template instead of re-deriving the vocab each time.
        """
        if any(not enc.is_fitted for enc in self._encoders.values()):
            raise TrainingError("spawn() needs fixed encoder vocabularies")
        clone = FeaturePipeline.__new__(FeaturePipeline)
        clone.numeric_columns = self.numeric_columns
        clone.categorical_columns = self.categorical_columns
        clone._encoders = self._encoders
        clone._scaler = StandardScaler()
        clone._fitted = False
        return clone

    def fit_arrays(self, numeric: np.ndarray) -> "FeaturePipeline":
        """Fit the scaler straight on a numeric matrix (no dict rows)."""
        numeric = np.asarray(numeric, dtype=float)
        if numeric.shape[0] == 0:
            raise TrainingError("no feature rows supplied")
        if numeric.shape[1] != len(self.numeric_columns):
            raise TrainingError(
                f"numeric width {numeric.shape[1]} != declared "
                f"{len(self.numeric_columns)} columns")
        if numeric.shape[1]:
            self._scaler.fit(numeric)
        self._fitted = True
        return self

    def transform_arrays(self, numeric: np.ndarray,
                         categorical_codes: "Mapping[str, np.ndarray]"
                         ) -> np.ndarray:
        """Design matrix from a numeric matrix and one-hot column codes.

        Bit-identical to :meth:`transform` on the equivalent dict rows;
        the categorical inputs are already *codes* (vocabulary positions),
        so encoding is a fancy-indexed assignment per column.
        """
        if not self._fitted:
            raise TrainingError("pipeline used before fit()")
        parts: list[np.ndarray] = []
        if self.numeric_columns:
            parts.append(self._scaler.transform(
                np.asarray(numeric, dtype=float)))
        for name, _ in self.categorical_columns:
            parts.append(self._encoders[name].transform_codes(
                categorical_codes[name]))
        if not parts:
            return np.zeros((np.asarray(numeric).shape[0], 0))
        return np.hstack(parts)
