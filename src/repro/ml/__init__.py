"""Minimal ML substrate: logistic regression, scaling, encoding, metrics.

LOCATER's coarse-grained localizer trains logistic-regression classifiers
per device (paper Section 3).  The deployment environment is offline, so
the classifiers are implemented from scratch on numpy: binary and
multinomial (softmax) logistic regression with L2 regularization, trained
by full-batch gradient ascent with optional warm starts — warm starts
matter because Algorithm 1 retrains after every promoted gap.
"""

from repro.ml.encoder import OneHotEncoder
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy, confusion_matrix
from repro.ml.pipeline import FeaturePipeline
from repro.ml.scaler import StandardScaler

__all__ = [
    "FeaturePipeline",
    "LogisticRegression",
    "OneHotEncoder",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
]
