"""Classifier evaluation metrics."""

from __future__ import annotations

from collections.abc import Hashable, Sequence


def accuracy(truth: Sequence[Hashable], predicted: Sequence[Hashable]) -> float:
    """Fraction of positions where prediction matches truth."""
    if len(truth) != len(predicted):
        raise ValueError(
            f"length mismatch: {len(truth)} truths vs {len(predicted)} predictions")
    if not truth:
        return 0.0
    hits = sum(1 for t, p in zip(truth, predicted) if t == p)
    return hits / len(truth)


def confusion_matrix(truth: Sequence[Hashable], predicted: Sequence[Hashable]
                     ) -> dict[Hashable, dict[Hashable, int]]:
    """Nested mapping ``truth_label -> predicted_label -> count``."""
    if len(truth) != len(predicted):
        raise ValueError(
            f"length mismatch: {len(truth)} truths vs {len(predicted)} predictions")
    matrix: dict[Hashable, dict[Hashable, int]] = {}
    for t, p in zip(truth, predicted):
        row = matrix.setdefault(t, {})
        row[p] = row.get(p, 0) + 1
    return matrix
