"""Rooms: the finest localization granularity (paper Section 2).

Rooms are classified as *public* (shared facilities such as meeting rooms,
lounges, kitchens) or *private* (typically restricted to certain users,
such as a personal office).  The fine-grained localizer assigns different
room-affinity weights to each class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RoomType(enum.Enum):
    """Whether a room is a shared facility or restricted to its owners."""

    PUBLIC = "public"
    PRIVATE = "private"


@dataclass(frozen=True, slots=True)
class Room:
    """A room within a building.

    Attributes:
        room_id: Unique identifier within the building (e.g. ``"2061"``).
        room_type: Public (shared) or private (owned).
        name: Optional human-readable label (e.g. ``"conference room"``).
        capacity: Soft capacity used by the simulator when scheduling
            semantic events into the room.
        position: Room-centre ``(x, y)`` metres; used by the simulator to
            weight which covering AP a device associates with.
    """

    room_id: str
    room_type: RoomType
    name: str = ""
    capacity: int = field(default=8)
    position: tuple[float, float] = field(default=(0.0, 0.0))

    def __post_init__(self) -> None:
        if not self.room_id:
            raise ValueError("room_id must be a non-empty string")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    @property
    def is_public(self) -> bool:
        """True for shared facilities (meeting rooms, lounges, kitchens)."""
        return self.room_type is RoomType.PUBLIC

    @property
    def is_private(self) -> bool:
        """True for rooms restricted to certain users (personal offices)."""
        return self.room_type is RoomType.PRIVATE

    def __str__(self) -> str:
        label = f" ({self.name})" if self.name else ""
        return f"Room {self.room_id}{label} [{self.room_type.value}]"
