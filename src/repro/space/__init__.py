"""Space model: buildings, regions (AP coverage), rooms, and metadata.

Implements the three-granularity space model of LOCATER Section 2:
building (inside/outside), region (the set of rooms covered by one WiFi
access point; regions may overlap), and room (public or private), plus the
metadata the cleaning algorithms rely on (AP coverage lists, room types,
room owners / preferred rooms).
"""

from repro.space.access_point import AccessPoint
from repro.space.building import Building
from repro.space.builder import BuildingBuilder
from repro.space.metadata import SpaceMetadata
from repro.space.region import Region
from repro.space.room import Room, RoomType
from repro.space.blueprints import (
    airport_blueprint,
    dbh_blueprint,
    grid_building,
    mall_blueprint,
    office_blueprint,
    university_blueprint,
)

__all__ = [
    "AccessPoint",
    "Building",
    "BuildingBuilder",
    "Region",
    "Room",
    "RoomType",
    "SpaceMetadata",
    "airport_blueprint",
    "dbh_blueprint",
    "grid_building",
    "mall_blueprint",
    "office_blueprint",
    "university_blueprint",
]
