"""Space model: buildings, regions (AP coverage), rooms, and metadata.

Implements the three-granularity space model of LOCATER Section 2:
building (inside/outside), region (the set of rooms covered by one WiFi
access point; regions may overlap), and room (public or private), plus the
metadata the cleaning algorithms rely on (AP coverage lists, room types,
room owners / preferred rooms).

Every building also owns a :class:`RoomIndex` — an immutable vocabulary
interning room ids into dense integer codes (mirroring the event table's
AP vocabulary).  The fine-grained numeric core operates on these codes:
candidate sets become int32 arrays, affinities become float64 vectors
aligned to them, and the string room ids only reappear at the public API
boundary.
"""

from repro.space.access_point import AccessPoint
from repro.space.building import Building
from repro.space.builder import BuildingBuilder
from repro.space.metadata import SpaceMetadata
from repro.space.region import Region
from repro.space.room import Room, RoomType
from repro.space.room_index import RoomIndex
from repro.space.blueprints import (
    airport_blueprint,
    campus_ap_buildings,
    campus_blueprint,
    dbh_blueprint,
    grid_building,
    mall_blueprint,
    office_blueprint,
    university_blueprint,
)

__all__ = [
    "AccessPoint",
    "Building",
    "BuildingBuilder",
    "Region",
    "Room",
    "RoomIndex",
    "RoomType",
    "SpaceMetadata",
    "airport_blueprint",
    "campus_ap_buildings",
    "campus_blueprint",
    "dbh_blueprint",
    "grid_building",
    "mall_blueprint",
    "office_blueprint",
    "university_blueprint",
]
