"""Parametric building blueprints for the evaluation scenarios.

The paper evaluates on the Donald Bren Hall building (64 APs, 300+ rooms,
~11 rooms covered per AP, overlapping coverage) and on four simulated
environments built from real blueprints (airport, mall, university,
office).  We generate structurally equivalent buildings on a corridor grid:
rooms are laid out along corridors, APs are placed at regular intervals,
and each AP covers the rooms within its radio radius — which makes
neighbouring AP regions overlap exactly as in the paper's Fig. 1.

All generators are deterministic given their arguments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SpaceModelError
from repro.space.builder import BuildingBuilder
from repro.space.building import Building


@dataclass(frozen=True, slots=True)
class GridSpec:
    """Parameters of a corridor-grid building.

    Attributes:
        name: Building name.
        rooms: Total number of rooms to generate.
        access_points: Number of APs to place along the corridor.
        public_fraction: Fraction of rooms that are public facilities.
        room_width: Room frontage along the corridor, in metres.
        coverage_radius: AP radio radius in metres; a room is covered when
            its centre is within this radius of the AP.
        room_prefix: Prefix for generated room ids (DBH uses floor numbers).
    """

    name: str
    rooms: int
    access_points: int
    public_fraction: float = 0.2
    room_width: float = 4.0
    coverage_radius: float = 12.0
    room_prefix: str = "2"

    def __post_init__(self) -> None:
        if self.rooms < 2:
            raise SpaceModelError("grid building needs at least 2 rooms")
        if self.access_points < 1:
            raise SpaceModelError("grid building needs at least 1 AP")
        if not 0.0 <= self.public_fraction <= 1.0:
            raise SpaceModelError("public_fraction must be in [0, 1]")


def _emit_grid(builder: BuildingBuilder, spec: GridSpec, *,
               id_prefix: str = "",
               origin: tuple[float, float] = (0.0, 0.0)) -> None:
    """Emit one corridor grid into ``builder``.

    ``id_prefix`` namespaces room and AP ids and ``origin`` offsets every
    position, so several grids can coexist in one building (a campus).
    AP coverage is computed against this grid's rooms only — each
    sub-building keeps its own AP vocabulary by construction.
    """
    ox, oy = origin
    positions: dict[str, tuple[float, float]] = {}

    for i in range(spec.rooms):
        room_id = f"{id_prefix}{spec.room_prefix}{i:03d}"
        side = 1.0 if i % 2 == 0 else -1.0
        x = (i // 2) * spec.room_width + spec.room_width / 2.0
        y = side * 5.0
        positions[room_id] = (x, y)
        # Bresenham-style spread: exactly round(n·f) public rooms, evenly
        # interleaved, for any fraction f.
        f = spec.public_fraction
        is_public = int((i + 1) * f) > int(i * f)
        if is_public:
            builder.add_public_room(room_id, name=f"shared-{i}", capacity=30,
                                    position=(x + ox, y + oy))
        else:
            builder.add_private_room(room_id, name=f"office-{i}", capacity=4,
                                     position=(x + ox, y + oy))

    corridor_length = (spec.rooms // 2 + 1) * spec.room_width
    for j in range(spec.access_points):
        # Spread APs evenly along the corridor spine (y = 0).
        frac = (j + 0.5) / spec.access_points
        ap_x = frac * corridor_length
        covered = [
            room_id for room_id, (x, y) in positions.items()
            if math.hypot(x - ap_x, y) <= spec.coverage_radius
        ]
        if not covered:
            # Radius too small for the room spacing: snap to nearest room so
            # every AP defines a non-empty region.
            nearest = min(positions, key=lambda r: abs(positions[r][0] - ap_x))
            covered = [nearest]
        builder.add_access_point(f"{id_prefix}wap{j + 1}", covered,
                                 position=(ap_x + ox, oy))


def grid_building(spec: GridSpec) -> Building:
    """Generate a two-sided corridor building per ``spec``.

    Rooms alternate sides of a straight corridor; every k-th room is public
    (k chosen from ``public_fraction``).  APs sit on the corridor spine at
    even spacing; coverage = rooms whose centre falls within
    ``coverage_radius``, so adjacent regions overlap.
    """
    builder = BuildingBuilder(spec.name)
    _emit_grid(builder, spec)
    return builder.build()


def dbh_blueprint(scale: float = 0.25) -> Building:
    """A Donald Bren Hall-like building (paper §6.1), scaled by ``scale``.

    At ``scale=1.0`` this produces 64 APs and ~300 rooms with an average
    coverage of ~11 rooms per AP, matching the paper's deployment.  The
    default quarter scale (16 APs, 76 rooms) keeps tests and benchmarks
    fast while preserving coverage overlap and rooms-per-AP statistics.
    """
    if not 0.01 <= scale <= 2.0:
        raise SpaceModelError(f"scale must be in [0.01, 2], got {scale}")
    rooms = max(8, round(304 * scale))
    aps = max(2, round(64 * scale))
    return grid_building(GridSpec(
        name=f"DBH-like(x{scale:g})",
        rooms=rooms,
        access_points=aps,
        public_fraction=0.18,
        room_width=4.0,
        coverage_radius=12.0,
        room_prefix="2",
    ))


def office_blueprint() -> Building:
    """An office building: mostly private offices, few shared rooms."""
    return grid_building(GridSpec(
        name="office", rooms=48, access_points=10, public_fraction=0.15,
        coverage_radius=12.0, room_prefix="O",
    ))


def university_blueprint() -> Building:
    """A university building: classrooms (public) mixed with offices."""
    return grid_building(GridSpec(
        name="university", rooms=64, access_points=12, public_fraction=0.3,
        coverage_radius=12.0, room_prefix="U",
    ))


def mall_blueprint() -> Building:
    """A mall: predominantly public storefronts and food courts."""
    return grid_building(GridSpec(
        name="mall", rooms=56, access_points=10, public_fraction=0.7,
        coverage_radius=13.0, room_prefix="M",
    ))


def airport_blueprint() -> Building:
    """An airport terminal: gates/shops/restaurants, almost all public.

    Modeled on the paper's Santa Ana airport scenario: large open public
    areas (gates, security, dining) plus a few staff-only rooms.
    """
    return grid_building(GridSpec(
        name="airport", rooms=40, access_points=8, public_fraction=0.8,
        room_width=6.0, coverage_radius=18.0, room_prefix="A",
    ))


def campus_blueprint(buildings: int = 3, rooms_per_building: int = 16,
                     aps_per_building: int = 4,
                     public_fraction: float = 0.25) -> Building:
    """A multi-building campus as one space model.

    Each sub-building is an independent corridor grid whose room and AP
    ids carry a ``b<k>-`` prefix; the grids sit far apart, so every AP
    covers rooms of its own building only — per-building AP
    vocabularies, the partition boundary the cluster layer's
    :class:`~repro.cluster.router.BuildingAffinityRouter` exploits.
    Movement between buildings is entirely possible (one space graph),
    it just never shares an AP region, exactly like a real campus WLAN.
    """
    if buildings < 1:
        raise SpaceModelError(
            f"campus needs at least 1 building, got {buildings}")
    builder = BuildingBuilder(f"campus({buildings})")
    for k in range(buildings):
        _emit_grid(
            builder,
            GridSpec(name=f"campus-b{k}", rooms=rooms_per_building,
                     access_points=aps_per_building,
                     public_fraction=public_fraction, room_prefix="r"),
            id_prefix=f"b{k}-",
            # Far enough apart that no coverage radius could ever bridge
            # two buildings, whatever the grid parameters.
            origin=(0.0, k * 500.0))
    return builder.build()


def campus_ap_buildings(building: Building) -> dict[str, str]:
    """AP id → building key for a :func:`campus_blueprint` campus.

    Reads the ``b<k>-`` prefix convention; APs without a prefix (a
    non-campus building) are absent from the map, which makes the
    building-affinity router fall back to hash routing for them.
    """
    out: dict[str, str] = {}
    for ap_id in building.access_points:
        prefix, _, rest = ap_id.partition("-")
        if rest and prefix.startswith("b") and prefix[1:].isdigit():
            out[ap_id] = prefix
    return out
