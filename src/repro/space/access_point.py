"""WiFi access points.

Each AP defines one *region*: the set of rooms its network coverage
reaches.  The paper's deployment averaged 11 rooms per AP, with coverage
areas that overlap between neighbouring APs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class AccessPoint:
    """A WiFi access point and the rooms its coverage reaches.

    Attributes:
        ap_id: Unique identifier, e.g. ``"wap3"``.
        covered_rooms: Room ids inside this AP's network coverage; order is
            irrelevant, duplicates are rejected.
        position: Optional ``(x, y)`` metres, used by blueprint generators.
    """

    ap_id: str
    covered_rooms: frozenset[str]
    position: tuple[float, float] = field(default=(0.0, 0.0))

    def __post_init__(self) -> None:
        if not self.ap_id:
            raise ValueError("ap_id must be a non-empty string")
        if not self.covered_rooms:
            raise ValueError(f"AP {self.ap_id} must cover at least one room")

    @staticmethod
    def create(ap_id: str, covered_rooms: "list[str] | set[str] | frozenset[str]",
               position: tuple[float, float] = (0.0, 0.0)) -> "AccessPoint":
        """Build an AP from any room-id collection, checking duplicates."""
        rooms = list(covered_rooms)
        unique = frozenset(rooms)
        if len(unique) != len(rooms):
            raise ValueError(f"AP {ap_id} has duplicate rooms in coverage")
        return AccessPoint(ap_id=ap_id, covered_rooms=unique, position=position)

    def covers(self, room_id: str) -> bool:
        """Whether ``room_id`` is inside this AP's coverage."""
        return room_id in self.covered_rooms

    def __str__(self) -> str:
        return f"AP {self.ap_id} covering {len(self.covered_rooms)} rooms"
