"""Fluent construction of :class:`~repro.space.building.Building` objects."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SpaceModelError
from repro.space.access_point import AccessPoint
from repro.space.building import Building
from repro.space.room import Room, RoomType


class BuildingBuilder:
    """Incrementally assemble a building, then :meth:`build` it.

    Example:
        >>> building = (BuildingBuilder("demo")
        ...             .add_room("101", RoomType.PRIVATE)
        ...             .add_room("lounge", RoomType.PUBLIC)
        ...             .add_access_point("wap1", ["101", "lounge"])
        ...             .build())
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SpaceModelError("building name must be non-empty")
        self._name = name
        self._rooms: list[Room] = []
        self._room_ids: set[str] = set()
        self._aps: list[AccessPoint] = []
        self._ap_ids: set[str] = set()

    def add_room(self, room_id: str, room_type: RoomType, name: str = "",
                 capacity: int = 8,
                 position: tuple[float, float] = (0.0, 0.0)
                 ) -> "BuildingBuilder":
        """Add one room; ids must be unique."""
        if room_id in self._room_ids:
            raise SpaceModelError(f"room {room_id!r} added twice")
        self._rooms.append(Room(room_id=room_id, room_type=room_type,
                                name=name, capacity=capacity,
                                position=position))
        self._room_ids.add(room_id)
        return self

    def add_private_room(self, room_id: str, name: str = "",
                         capacity: int = 4,
                         position: tuple[float, float] = (0.0, 0.0)
                         ) -> "BuildingBuilder":
        """Shorthand for a private (owned) room such as an office."""
        return self.add_room(room_id, RoomType.PRIVATE, name, capacity,
                             position)

    def add_public_room(self, room_id: str, name: str = "",
                        capacity: int = 20,
                        position: tuple[float, float] = (0.0, 0.0)
                        ) -> "BuildingBuilder":
        """Shorthand for a public (shared) room such as a lounge."""
        return self.add_room(room_id, RoomType.PUBLIC, name, capacity,
                             position)

    def add_access_point(self, ap_id: str, covered_rooms: Iterable[str],
                         position: tuple[float, float] = (0.0, 0.0)
                         ) -> "BuildingBuilder":
        """Add one AP covering ``covered_rooms`` (rooms must exist already)."""
        if ap_id in self._ap_ids:
            raise SpaceModelError(f"AP {ap_id!r} added twice")
        rooms = list(covered_rooms)
        unknown = [r for r in rooms if r not in self._room_ids]
        if unknown:
            raise SpaceModelError(
                f"AP {ap_id!r} covers rooms not yet added: {sorted(unknown)}")
        self._aps.append(AccessPoint.create(ap_id, rooms, position))
        self._ap_ids.add(ap_id)
        return self

    def build(self) -> Building:
        """Validate and produce the immutable building."""
        uncovered = self._room_ids - {
            room for ap in self._aps for room in ap.covered_rooms}
        if uncovered:
            # The paper notes APs may not cover all rooms, which limits
            # localization there; we allow it but it is usually a blueprint
            # bug, so surface it prominently in the error-free path too.
            pass
        return Building(self._name, self._rooms, self._aps)

    def uncovered_rooms(self) -> set[str]:
        """Rooms not covered by any AP added so far (localization blind spots)."""
        covered = {room for ap in self._aps for room in ap.covered_rooms}
        return self._room_ids - covered
