"""Regions: the middle localization granularity (paper Section 2).

A region is the area covered by the network connectivity of exactly one
WiFi access point; there is a one-to-one mapping between APs and regions
(``|G| = |WAP|``).  Regions can and usually do overlap, so a room may
belong to several regions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Region:
    """The set of rooms covered by one access point.

    Attributes:
        region_id: Dense integer index of the region (0-based); stable for
            the lifetime of a :class:`~repro.space.building.Building` and
            used as the class label by the coarse-grained region classifier.
        ap_id: The access point defining this region.
        rooms: Frozen set of room ids inside the region.
    """

    region_id: int
    ap_id: str
    rooms: frozenset[str]

    def __post_init__(self) -> None:
        if self.region_id < 0:
            raise ValueError(f"region_id must be >= 0, got {self.region_id}")
        if not self.rooms:
            raise ValueError(f"region {self.region_id} has no rooms")

    def contains(self, room_id: str) -> bool:
        """Whether ``room_id`` belongs to this region."""
        return room_id in self.rooms

    def shared_rooms(self, other: "Region") -> frozenset[str]:
        """Rooms belonging to both regions (the R(gx) ∩ R(gy) of §4)."""
        return self.rooms & other.rooms

    def __len__(self) -> int:
        return len(self.rooms)

    def __str__(self) -> str:
        return f"Region g{self.region_id} ({self.ap_id}, {len(self.rooms)} rooms)"
