"""The building: rooms + access points + derived regions, with fast lookups."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import SpaceModelError, UnknownRegionError, UnknownRoomError
from repro.space.access_point import AccessPoint
from repro.space.region import Region
from repro.space.room import Room
from repro.space.room_index import RoomIndex


class Building:
    """An immutable building model at the three LOCATER granularities.

    A building owns a set of :class:`Room` objects and a set of
    :class:`AccessPoint` objects; each AP induces exactly one
    :class:`Region` (paper Section 2: ``|G| = |WAP|``).  All lookups used in
    the inner loops of the localizers (room -> regions, AP -> region,
    region -> candidate rooms) are precomputed here.

    Instances are cheap to share between threads: all state is built in the
    constructor and never mutated afterwards.
    """

    def __init__(self, name: str, rooms: Iterable[Room],
                 access_points: Iterable[AccessPoint]) -> None:
        self.name = name
        self._rooms: dict[str, Room] = {}
        for room in rooms:
            if room.room_id in self._rooms:
                raise SpaceModelError(
                    f"duplicate room id {room.room_id!r} in building {name!r}")
            self._rooms[room.room_id] = room
        if not self._rooms:
            raise SpaceModelError(f"building {name!r} has no rooms")

        self._aps: dict[str, AccessPoint] = {}
        self._regions: list[Region] = []
        self._region_by_ap: dict[str, Region] = {}
        for ap in access_points:
            if ap.ap_id in self._aps:
                raise SpaceModelError(
                    f"duplicate AP id {ap.ap_id!r} in building {name!r}")
            missing = [r for r in ap.covered_rooms if r not in self._rooms]
            if missing:
                raise SpaceModelError(
                    f"AP {ap.ap_id!r} covers unknown rooms: {sorted(missing)}")
            region = Region(region_id=len(self._regions), ap_id=ap.ap_id,
                            rooms=ap.covered_rooms)
            self._aps[ap.ap_id] = ap
            self._regions.append(region)
            self._region_by_ap[ap.ap_id] = region
        if not self._regions:
            raise SpaceModelError(f"building {name!r} has no access points")

        self._regions_of_room: dict[str, tuple[Region, ...]] = {
            room_id: tuple(reg for reg in self._regions if reg.contains(room_id))
            for room_id in self._rooms
        }
        self._room_index = RoomIndex(self._rooms)

    # ------------------------------------------------------------------
    # Rooms
    # ------------------------------------------------------------------
    @property
    def rooms(self) -> Mapping[str, Room]:
        """All rooms keyed by room id."""
        return self._rooms

    def room(self, room_id: str) -> Room:
        """Look up a room; raise :class:`UnknownRoomError` if absent."""
        try:
            return self._rooms[room_id]
        except KeyError:
            raise UnknownRoomError(
                f"room {room_id!r} not in building {self.name!r}") from None

    def public_rooms(self) -> list[Room]:
        """All shared-facility rooms (paper's R^pb)."""
        return [r for r in self._rooms.values() if r.is_public]

    def private_rooms(self) -> list[Room]:
        """All restricted rooms (paper's R^pr)."""
        return [r for r in self._rooms.values() if r.is_private]

    # ------------------------------------------------------------------
    # Access points and regions
    # ------------------------------------------------------------------
    @property
    def access_points(self) -> Mapping[str, AccessPoint]:
        """All APs keyed by AP id."""
        return self._aps

    @property
    def regions(self) -> tuple[Region, ...]:
        """All regions, indexed by their dense ``region_id``."""
        return tuple(self._regions)

    def region(self, region_id: int) -> Region:
        """Look up a region by dense index."""
        if 0 <= region_id < len(self._regions):
            return self._regions[region_id]
        raise UnknownRegionError(
            f"region {region_id} not in building {self.name!r} "
            f"(has {len(self._regions)} regions)")

    def region_of_ap(self, ap_id: str) -> Region:
        """Return the unique region covered by AP ``ap_id``."""
        try:
            return self._region_by_ap[ap_id]
        except KeyError:
            raise UnknownRegionError(
                f"AP {ap_id!r} not in building {self.name!r}") from None

    def regions_of_room(self, room_id: str) -> tuple[Region, ...]:
        """All regions whose AP coverage includes ``room_id``.

        Regions overlap, so a room commonly belongs to several regions
        (paper example: room 2059 belongs to both g2 and g3).
        """
        if room_id not in self._rooms:
            raise UnknownRoomError(
                f"room {room_id!r} not in building {self.name!r}")
        return self._regions_of_room[room_id]

    def candidate_rooms(self, region_id: int) -> list[Room]:
        """The fine-localization candidate set R(gx) for a region."""
        return [self._rooms[rid] for rid in sorted(self.region(region_id).rooms)]

    @property
    def room_index(self) -> RoomIndex:
        """The building's room vocabulary (room id ↔ dense int code).

        The fine numeric core encodes candidate-room sets through this
        index; encodings are memoized per candidate tuple.
        """
        return self._room_index

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Summary statistics (room/AP counts, mean coverage, overlap)."""
        coverage = [len(reg) for reg in self._regions]
        overlapping = sum(
            1 for room_id in self._rooms
            if len(self._regions_of_room[room_id]) > 1)
        return {
            "rooms": len(self._rooms),
            "public_rooms": len(self.public_rooms()),
            "access_points": len(self._aps),
            "mean_rooms_per_ap": sum(coverage) / len(coverage),
            "max_rooms_per_ap": max(coverage),
            "rooms_in_multiple_regions": overlapping,
        }

    def __str__(self) -> str:
        return (f"Building {self.name!r}: {len(self._rooms)} rooms, "
                f"{len(self._aps)} APs")
