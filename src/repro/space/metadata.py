"""Space metadata consumed by the cleaning engine (paper §2, §9.1).

Besides the building topology, LOCATER's fine-grained localizer needs:

* room types (public/private) — carried on :class:`~repro.space.room.Room`;
* *preferred rooms* per device: the owner's office from space metadata, or
  the most frequent rooms the owner enters, from background knowledge.

This module holds the per-device metadata and offers the candidate-room
classification used when assigning room-affinity weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.errors import UnknownRoomError
from repro.space.building import Building


@dataclass(frozen=True, slots=True)
class RoomClassification:
    """Partition of a candidate room set from one device's perspective.

    Attributes:
        preferred: Candidate rooms in the device's preferred set R^pf.
        public: Remaining public candidates (R(gx) ∩ R^pb) \\ R^pf.
        private: Remaining private candidates (R(gx) ∩ R^pr) \\ R^pf.
    """

    preferred: tuple[str, ...]
    public: tuple[str, ...]
    private: tuple[str, ...]


class SpaceMetadata:
    """Per-device metadata: preferred rooms and ownership.

    Args:
        building: The building the metadata describes.
        preferred_rooms: Mapping from device id to that device's preferred
            room ids (the paper's R^pf(d)); may be empty for devices whose
            owners have no preferred room.
    """

    def __init__(self, building: Building,
                 preferred_rooms: "Mapping[str, Iterable[str]] | None" = None) -> None:
        self._building = building
        self._preferred: dict[str, frozenset[str]] = {}
        if preferred_rooms:
            for device_id, rooms in preferred_rooms.items():
                self.set_preferred_rooms(device_id, rooms)

    @property
    def building(self) -> Building:
        """The building this metadata belongs to."""
        return self._building

    def set_preferred_rooms(self, device_id: str,
                            rooms: Iterable[str]) -> None:
        """Register the preferred rooms of ``device_id`` (may be empty).

        The paper notes room-owner metadata "is not a must for LOCATER and
        can be included at run time", hence this mutator.
        """
        room_set = frozenset(rooms)
        for room_id in room_set:
            if room_id not in self._building.rooms:
                raise UnknownRoomError(
                    f"preferred room {room_id!r} for device {device_id!r} "
                    f"not in building {self._building.name!r}")
        self._preferred[device_id] = room_set

    def preferred_rooms(self, device_id: str) -> frozenset[str]:
        """R^pf(d): the preferred rooms of a device (empty set if none)."""
        return self._preferred.get(device_id, frozenset())

    def has_metadata(self, device_id: str) -> bool:
        """Whether any preferred-room metadata exists for the device."""
        return bool(self._preferred.get(device_id))

    def known_devices(self) -> list[str]:
        """Devices that have at least one preferred room registered."""
        return sorted(d for d, rooms in self._preferred.items() if rooms)

    def classify_candidates(self, device_id: str,
                            candidate_rooms: Iterable[str]) -> RoomClassification:
        """Partition candidates into preferred / public / private (paper §4.1).

        Preferred rooms win over their public/private type; the remaining
        candidates split by room type.  Sorting keeps output deterministic.
        """
        preferred = self.preferred_rooms(device_id)
        pf: list[str] = []
        pb: list[str] = []
        pr: list[str] = []
        for room_id in sorted(candidate_rooms):
            room = self._building.room(room_id)
            if room_id in preferred:
                pf.append(room_id)
            elif room.is_public:
                pb.append(room_id)
            else:
                pr.append(room_id)
        return RoomClassification(preferred=tuple(pf), public=tuple(pb),
                                  private=tuple(pr))
