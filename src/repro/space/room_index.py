"""Room vocabulary: interned integer codes for the numeric core.

The fine-grained localizer's inner loops (group affinities, posterior
updates, possible-world bounds) operate on *candidate room sets*.  With
string room ids every set operation — intersection tests, affinity
lookups, renormalization — walks hash tables of Python objects.  The
:class:`RoomIndex` interns every room of a building into a dense integer
id space, mirroring the AP vocabulary of
:class:`~repro.events.table.EventTable`, so those operations become
numpy gather/scatter on small int arrays instead.

The index is immutable: a building's room set is fixed at construction,
so codes are stable for the lifetime of the space model and arrays can
be cached keyed by candidate-room tuples.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import SpaceModelError, UnknownRoomError


class RoomIndex:
    """Immutable room-id vocabulary with dense integer codes.

    Codes follow the iteration order of ``room_ids`` (for a
    :class:`~repro.space.building.Building`, room construction order).

    Encoded arrays are memoized per candidate-room tuple and returned
    read-only — candidate sets repeat heavily across queries (one per
    region), so encoding is effectively free after the first query.
    """

    def __init__(self, room_ids: Iterable[str]) -> None:
        self._rooms: tuple[str, ...] = tuple(room_ids)
        self._codes: dict[str, int] = {
            room: code for code, room in enumerate(self._rooms)}
        if len(self._codes) != len(self._rooms):
            raise SpaceModelError("duplicate room ids in room index")
        if not self._rooms:
            raise SpaceModelError("room index needs at least one room")
        self._encode_cache: dict[tuple[str, ...], np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._rooms)

    def __contains__(self, room_id: str) -> bool:
        return room_id in self._codes

    @property
    def rooms(self) -> tuple[str, ...]:
        """All room ids, positioned by their code."""
        return self._rooms

    def code(self, room_id: str) -> int:
        """The dense integer code of one room."""
        try:
            return self._codes[room_id]
        except KeyError:
            raise UnknownRoomError(
                f"room {room_id!r} not in room index") from None

    def room(self, code: int) -> str:
        """The room id of one code."""
        if not 0 <= code < len(self._rooms):
            raise UnknownRoomError(
                f"room code {code} not in index of size {len(self._rooms)}")
        return self._rooms[code]

    def encode(self, room_ids: Sequence[str]) -> np.ndarray:
        """Room ids → int32 code array (memoized, read-only)."""
        key = tuple(room_ids)
        codes = self._encode_cache.get(key)
        if codes is None:
            codes = np.fromiter((self.code(room) for room in key),
                                dtype=np.int32, count=len(key))
            codes.setflags(write=False)
            self._encode_cache[key] = codes
        return codes

    def decode(self, codes: "Sequence[int] | np.ndarray") -> list[str]:
        """Code array → room ids."""
        return [self.room(int(code)) for code in codes]
