"""Event validity intervals and per-device δ estimation (paper §2 + appendix).

An event at time ``t`` of device ``d`` is valid in ``(t − δ(d), t + δ(d))``,
truncated so it never overlaps the validity of the neighbouring events of
the same device (paper Fig. 2).  δ depends on the device: different OSes
probe the network at different periodicities.  The appendix notes δ "can be
extracted directly from the WiFi connectivity data": while a device sits in
one room, the log shows how frequently it reconnects.  We implement that as
a clamped high percentile of the device's *within-session* inter-event
times, where a session is a run of consecutive events whose spacing stays
below a session break threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from repro.events.device import DEFAULT_DELTA_SECONDS
from repro.events.table import DeviceLog, EventTable
from repro.util.timeutil import TimeInterval, minutes
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True, slots=True)
class ValidityInterval:
    """The validity window of one event (paper Fig. 2).

    Attributes:
        event_position: Index of the event inside its device log.
        interval: The clipped ``(t − δ, t + δ)`` window.
        ap_id: AP the device was associated with during the window.
    """

    event_position: int
    interval: TimeInterval
    ap_id: str


def validity_intervals(log: DeviceLog, delta: "float | None" = None
                       ) -> list[ValidityInterval]:
    """Compute clipped validity intervals for every event of a device.

    The raw window of event ``e_n`` is ``(t_n − δ, t_n + δ)``.  Following
    the paper exactly (Fig. 2): when the window overlaps the *next*
    event's window, its end is updated to the next event's timestamp —
    e1 becomes valid in ``(t1 − δ, t2)``.  Starts always stay at
    ``t_n − δ`` (clamped at 0), so consecutive windows may overlap in
    ``(t_{n+1} − δ, t_{n+1})``; that residual ambiguity is inherent to
    the model and harmless, since a query landing there is answered by
    whichever event's window is found first.
    """
    if delta is None:
        delta = log.device.delta
    check_positive("delta", delta)
    out: list[ValidityInterval] = []
    n = len(log)
    for i in range(n):
        t = log.time_at(i)
        start = max(t - delta, 0.0)
        end = t + delta
        if i + 1 < n:
            next_t = log.time_at(i + 1)
            if next_t - delta < end:
                end = next_t
        if end < start:  # duplicate timestamps can invert the window
            end = start
        out.append(ValidityInterval(event_position=i,
                                    interval=TimeInterval(start, end),
                                    ap_id=log.ap_at(i)))
    return out


def valid_event_at(log: DeviceLog, timestamp: float,
                   delta: "float | None" = None) -> "ValidityInterval | None":
    """Return the validity interval covering ``timestamp``, if any.

    This is the query-time test of Section 2: if the query time falls
    inside some event's validity window, the device's region is simply the
    region of that event's AP and no cleaning is needed.
    """
    if delta is None:
        delta = log.device.delta
    if log.is_empty:
        return None
    pos = log.nearest_before(timestamp)
    candidates = []
    if pos is not None:
        candidates.append(pos)
    after = log.nearest_after(timestamp)
    if after is not None:
        candidates.append(after)
    for i in candidates:
        t = log.time_at(i)
        start, end = max(t - delta, 0.0), t + delta
        if i + 1 < len(log) and log.time_at(i + 1) - delta < end:
            end = log.time_at(i + 1)
        if start <= timestamp <= end:
            return ValidityInterval(event_position=i,
                                    interval=TimeInterval(start, max(start, end)),
                                    ap_id=log.ap_at(i))
    return None


class DeltaEstimator:
    """Estimates each device's validity period δ(d) from its own log.

    Args:
        session_break: Spacing above which two consecutive events are
            considered different sessions (default 30 minutes).
        percentile: Percentile of within-session inter-event times used as
            δ (default 0.75 — bridges normal probe jitter while leaving
            genuinely long silences as gaps).
        minimum / maximum: Clamps on the estimate, so pathological logs
            (e.g. a device that connected twice) stay reasonable.
        min_samples: Below this many within-session spacings, fall back to
            :data:`DEFAULT_DELTA_SECONDS`.
    """

    def __init__(self, session_break: float = minutes(45),
                 percentile: float = 0.75,
                 minimum: float = minutes(2),
                 maximum: float = minutes(20),
                 min_samples: int = 5) -> None:
        check_positive("session_break", session_break)
        check_fraction("percentile", percentile)
        check_positive("minimum", minimum)
        check_positive("maximum", maximum)
        if maximum < minimum:
            raise ValueError("maximum delta must be >= minimum delta")
        self.session_break = session_break
        self.percentile = percentile
        self.minimum = minimum
        self.maximum = maximum
        self.min_samples = min_samples

    def estimate(self, log: DeviceLog) -> float:
        """δ estimate for one device log."""
        if len(log) < 2:
            return DEFAULT_DELTA_SECONDS
        spacings = np.diff(log.times)
        in_session = spacings[spacings < self.session_break]
        if in_session.size < self.min_samples:
            return DEFAULT_DELTA_SECONDS
        value = float(np.quantile(in_session, self.percentile))
        return float(np.clip(value, self.minimum, self.maximum))

    def fit_table(self, table: EventTable) -> dict[str, float]:
        """Estimate and install δ for every device in ``table``.

        Returns the mapping mac → δ for inspection.
        """
        return self.fit_devices(table, table.macs())

    def fit_devices(self, table: EventTable,
                    macs: Iterable[str]) -> dict[str, float]:
        """Estimate and install δ for the given devices only.

        The estimate is a pure function of the device's own log, so
        fitting just the devices whose logs changed (the ingestion
        engine's change feed) yields exactly the same table state as
        refitting everything — at O(changed) cost.  Returns mac → δ.
        """
        estimates: dict[str, float] = {}
        for mac in macs:
            log = table.log(mac)
            delta = self.estimate(log)
            table.registry.get(mac).delta = delta
            estimates[mac] = delta
        return estimates
