"""Devices and the device registry.

A device is identified by its MAC address.  The registry interns devices,
assigns dense integer indices (useful for numpy-backed structures), and
records each device's validity period δ(d) once estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.errors import UnknownDeviceError
from repro.util.timeutil import minutes


#: Fallback validity period when a device has too little history for the
#: estimator (paper appendix): 10 minutes, a typical OS probe interval.
DEFAULT_DELTA_SECONDS = minutes(10)


@dataclass(slots=True)
class Device:
    """A WiFi device: a MAC address plus derived per-device parameters.

    Attributes:
        mac: The MAC address string (unique).
        index: Dense index assigned by the registry (stable insert order).
        delta: Temporal validity δ(d) of this device's events in seconds;
            events are valid within ±δ of their timestamp (paper §2).
    """

    mac: str
    index: int
    delta: float = field(default=DEFAULT_DELTA_SECONDS)

    def __post_init__(self) -> None:
        if not self.mac:
            raise ValueError("mac must be non-empty")
        if self.delta <= 0:
            raise ValueError(f"delta must be > 0, got {self.delta}")

    def __str__(self) -> str:
        return f"Device {self.mac} (δ={self.delta:.0f}s)"


class DeviceRegistry:
    """Interns :class:`Device` objects keyed by MAC address."""

    def __init__(self) -> None:
        self._by_mac: dict[str, Device] = {}

    def intern(self, mac: str) -> Device:
        """Return the device for ``mac``, creating it on first sight."""
        device = self._by_mac.get(mac)
        if device is None:
            device = Device(mac=mac, index=len(self._by_mac))
            self._by_mac[mac] = device
        return device

    def get(self, mac: str) -> Device:
        """Return the device for ``mac``; raise if never seen."""
        try:
            return self._by_mac[mac]
        except KeyError:
            raise UnknownDeviceError(f"device {mac!r} never observed") from None

    def __contains__(self, mac: str) -> bool:
        return mac in self._by_mac

    def __len__(self) -> int:
        return len(self._by_mac)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._by_mac.values())

    def macs(self) -> list[str]:
        """All known MAC addresses in first-seen order."""
        return list(self._by_mac.keys())
