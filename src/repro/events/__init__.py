"""WiFi connectivity data model: events, devices, validity, gaps.

Implements the paper's Section 2 data model: connectivity events
``⟨mac, timestamp, wap⟩`` with per-device temporal validity ``δ(d)``,
from which *gaps* — maximal periods with no valid event — are derived.

Column stores
-------------

Each device's hot numeric columns — event timestamps (float64) and AP
vocabulary codes (int32) — live behind a :class:`~repro.events.columns.
ColumnStore`, not in plain attributes.  The store contract
(:mod:`repro.events.columns`):

* ``put(key, times, aps)`` accepts the arrays once and returns a
  :class:`~repro.events.columns.ColumnHandle`; ``handle.arrays()``
  yields them back *bitwise identical*, every time, no matter what the
  store did with the bytes in between.  Handles are the only owners of
  column memory — ``DeviceLog`` holds a handle, never a bare array.
* :class:`~repro.events.columns.HeapColumnStore` (the default) keeps
  ordinary heap arrays and supports *spilling*: ``handle.spill()``
  writes the columns to a compressed temp file and drops the resident
  arrays; the next ``arrays()`` reloads them transparently (and fires
  the handle's ``on_reload`` hook so accounting can re-charge them).
  This is the eviction tier's backing mechanism.
* :class:`~repro.events.columns.SharedMemoryColumnStore` places columns
  in named ``multiprocessing.shared_memory`` segments so other
  processes *attach* by name instead of copying.  Lifecycle rule: the
  **owner** store (the one that ``put`` the data) unlinks segments on
  ``release``/``close``; **attached** stores (built via ``attached()``
  + ``adopt()`` from a :class:`~repro.events.table.TableDescriptor`)
  only close their maps and never unlink — views they handed out stay
  readable until the last reference dies, and attached arrays are
  mapped read-only (``writeable=False``) so a shard can never mutate
  the table behind the owner's back.  Shared handles do not spill (the
  segment *is* the single copy).

``EventTable.describe()`` / ``EventTable.attach()`` ride on this:
workers reconstruct a read-only table from segment names (O(1) bytes
shipped), and ingest publishes new generations via ``sync_payload`` /
``apply_sync`` so attached tables catch up without re-copying history.

Eviction invariant: everything a store may spill (and everything the
:class:`~repro.system.memory.MemoryManager` may evict above it —
coarse models, affinity memos) is a *pure function of the table*, so
any eviction schedule reloads/recomputes to bitwise-identical answers
(``tests/integration/test_memory_equivalence.py``,
``tests/property/test_prop_memory.py``).
"""

from repro.events.columns import (
    ColumnHandle,
    ColumnStore,
    HeapColumnStore,
    SharedMemoryColumnStore,
    purge_orphan_segments,
)
from repro.events.device import Device, DeviceRegistry
from repro.events.event import ConnectivityEvent
from repro.events.gaps import Gap, extract_gaps, find_gap_at
from repro.events.table import (
    DeviceLog,
    EventTable,
    TableDescriptor,
    TableSync,
)
from repro.events.validity import (
    DeltaEstimator,
    ValidityInterval,
    validity_intervals,
)

__all__ = [
    "ColumnHandle",
    "ColumnStore",
    "ConnectivityEvent",
    "DeltaEstimator",
    "Device",
    "DeviceLog",
    "DeviceRegistry",
    "EventTable",
    "Gap",
    "HeapColumnStore",
    "SharedMemoryColumnStore",
    "TableDescriptor",
    "TableSync",
    "ValidityInterval",
    "extract_gaps",
    "find_gap_at",
    "purge_orphan_segments",
    "validity_intervals",
]
