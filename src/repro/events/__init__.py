"""WiFi connectivity data model: events, devices, validity, gaps.

Implements the paper's Section 2 data model: connectivity events
``⟨mac, timestamp, wap⟩`` with per-device temporal validity ``δ(d)``,
from which *gaps* — maximal periods with no valid event — are derived.
"""

from repro.events.device import Device, DeviceRegistry
from repro.events.event import ConnectivityEvent
from repro.events.gaps import Gap, extract_gaps, find_gap_at
from repro.events.table import DeviceLog, EventTable
from repro.events.validity import (
    DeltaEstimator,
    ValidityInterval,
    validity_intervals,
)

__all__ = [
    "ConnectivityEvent",
    "DeltaEstimator",
    "Device",
    "DeviceLog",
    "DeviceRegistry",
    "EventTable",
    "Gap",
    "ValidityInterval",
    "extract_gaps",
    "find_gap_at",
    "validity_intervals",
]
