"""Column storage backends for the event table.

The hot data of an :class:`~repro.events.table.EventTable` is two numeric
columns per device — ``times`` (float64) and ``ap_indices`` (int32).
This module owns *where those bytes live*, behind one small contract:

* :class:`HeapColumnStore` (the default) keeps each device's columns as
  ordinary process-heap numpy arrays, exactly as before the abstraction
  existed — plus an optional *spill* tier: a cold log's bytes can be
  written to disk and dropped from memory, to be reloaded bitwise-equal
  on the next access (the hook the memory-budget eviction tier uses).
* :class:`SharedMemoryColumnStore` packs both columns of a device into
  one ``multiprocessing.shared_memory`` segment.  The owning process
  creates and unlinks segments; any other process *attaches by segment
  name* and reads the same physical pages — one copy of the log no
  matter how many shard workers serve from it, and no dependence on
  ``fork`` copy-on-write semantics (a spawned worker can attach too).

Contract (what :class:`~repro.events.table.EventTable` relies on):

* ``put(key, times, aps)`` returns a :class:`ColumnHandle` whose
  ``arrays()`` resolves to arrays bitwise-equal to the ones put in.
  Column data behind a handle is **immutable** — a merge produces new
  arrays and a new handle; the old handle is passed to ``release``.
* Handles resolve lazily.  A spilled (heap) or not-yet-attached
  (shared) handle materializes its arrays on first ``arrays()`` call;
  resolution never changes values, only where they are read from.
* Lifecycle: ``release(handle)`` frees one handle's storage (the owner
  unlinks its segment; an attached store merely unmaps).  ``close()``
  tears the whole store down — after it, resolving any handle of the
  store is undefined.  Owners must close their stores; leaked shared
  segments are reclaimed only by the interpreter's resource tracker at
  exit, with a warning.
* Numpy views handed out earlier (log slices cached in memos) keep the
  underlying buffer alive via ordinary refcounting, so releasing a
  handle never invalidates data a computation already holds — at worst
  the unmap is deferred until the last view dies.
"""

from __future__ import annotations

import os
import pathlib
import re
import shutil
import tempfile
import uuid
from multiprocessing import resource_tracker, shared_memory
from collections.abc import Callable

import numpy as np

from repro.errors import EventTableError

#: dtype/layout of the column pair inside one buffer: ``times`` first
#: (8 bytes per event), then ``ap_indices`` (4 bytes per event).  The
#: aps offset ``8 * length`` is always 4-aligned, so both views are
#: aligned no matter the log length.
TIMES_DTYPE = np.float64
APS_DTYPE = np.int32
BYTES_PER_EVENT = 12


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    On Python < 3.13 attaching registers the segment with the resource
    tracker exactly as creating does (bpo-39959): a reader exiting would
    log "leaked shared_memory" warnings and the tracker would *unlink*
    segments the owner still serves.  Unregistering after the fact is
    the commonly cited workaround, but under ``fork`` the tracker
    process is shared with the owner, so a reader's unregister silently
    deletes the owner's registration too (the owner's own unlink then
    trips a KeyError inside the tracker).  Suppressing registration
    during the attach call leaves the owner's bookkeeping untouched in
    both start methods; 3.13+ exposes ``track=False`` for exactly this.
    Safe unsynchronized: shard workers are single-threaded actors.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _close_quietly(segment: shared_memory.SharedMemory) -> None:
    """Unmap a segment, tolerating live numpy views into it.

    ``mmap.close`` raises ``BufferError`` while exported views exist
    (slices of a log cached in batch memos, say).  Refcounting keeps the
    mapping alive for those views anyway, so deferring the unmap to
    their garbage collection is safe — the unlink (owner side) is what
    actually retires the segment name.  The buffers are detached from
    the segment object so its ``__del__`` does not retry the close and
    log the same BufferError as an unraisable exception; the file
    descriptor can close immediately (munmap never needs it).
    """
    try:
        segment.close()
    except BufferError:
        segment._buf = None  # type: ignore[attr-defined]
        segment._mmap = None  # type: ignore[attr-defined]
        if segment._fd >= 0:  # type: ignore[attr-defined]
            os.close(segment._fd)  # type: ignore[attr-defined]
            segment._fd = -1  # type: ignore[attr-defined]


class ColumnHandle:
    """One device log's column pair, resolved lazily from its backend.

    Subclass contract: ``_load()`` materializes ``(_times, _aps)`` and
    returns them; data is immutable for the handle's lifetime.
    """

    __slots__ = ("key", "length", "_times", "_aps", "on_reload")

    def __init__(self, key: str, length: int) -> None:
        self.key = key
        self.length = length
        self._times: "np.ndarray | None" = None
        self._aps: "np.ndarray | None" = None
        #: Optional hook invoked after a cold resolve (spilled heap data
        #: reloaded, shared segment attached) — the eviction tier uses
        #: it to re-touch the log's LRU entry.
        self.on_reload: "Callable[[ColumnHandle], None] | None" = None

    @property
    def nbytes(self) -> int:
        """Logical size of the column data (resident or not)."""
        return self.length * BYTES_PER_EVENT

    @property
    def resident(self) -> bool:
        """Whether the arrays are currently materialized in this process."""
        return self._times is not None

    @property
    def resident_nbytes(self) -> int:
        """Bytes currently held in this process's memory (0 if spilled)."""
        return self.nbytes if self.resident else 0

    def arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """The ``(times, ap_indices)`` pair, materializing if needed."""
        times = self._times
        if times is not None:
            return times, self._aps  # type: ignore[return-value]
        return self._load()

    def _load(self) -> "tuple[np.ndarray, np.ndarray]":
        raise NotImplementedError

    def _notify_reload(self) -> None:
        if self.on_reload is not None:
            self.on_reload(self)


class _ResidentColumns(ColumnHandle):
    """Plain in-memory columns with no store behind them.

    What a :class:`DeviceLog` built directly from arrays (table slices,
    empty logs, tests) wraps; never spillable, nothing to release.
    """

    __slots__ = ()

    def __init__(self, key: str, times: np.ndarray,
                 aps: np.ndarray) -> None:
        super().__init__(key, int(times.size))
        self._times = times
        self._aps = aps

    def _load(self) -> "tuple[np.ndarray, np.ndarray]":
        raise EventTableError(
            f"resident columns of {self.key!r} lost their arrays")


class HeapColumnHandle(ColumnHandle):
    """Heap-backed columns with an optional on-disk spill copy."""

    __slots__ = ("_store", "_spill_path")

    def __init__(self, key: str, times: np.ndarray, aps: np.ndarray,
                 store: "HeapColumnStore") -> None:
        super().__init__(key, int(times.size))
        self._times = times
        self._aps = aps
        self._store = store
        self._spill_path: "pathlib.Path | None" = None

    def spill(self) -> int:
        """Write the columns to disk and drop the in-memory arrays.

        Returns the bytes freed (0 when already spilled).  The spill
        file is written once per handle — the data is immutable, so a
        later re-spill only drops the resident arrays again.
        """
        if not self.resident:
            return 0
        if self._spill_path is None:
            self._spill_path = self._store._spill_file(self)
            np.savez(self._spill_path, times=self._times, aps=self._aps)
        freed = self.nbytes
        self._times = None
        self._aps = None
        self._store._spilled += 1
        return freed

    def _load(self) -> "tuple[np.ndarray, np.ndarray]":
        if self._spill_path is None:
            raise EventTableError(
                f"columns of {self.key!r} were never spilled yet are "
                "not resident (store closed?)")
        with np.load(self._spill_path) as archive:
            self._times = archive["times"]
            self._aps = archive["aps"]
        self._store._reloaded += 1
        self._notify_reload()
        return self._times, self._aps

    def _discard(self) -> None:
        self._times = None
        self._aps = None
        if self._spill_path is not None:
            try:
                self._spill_path.unlink()
            except OSError:
                pass
            self._spill_path = None


class SharedColumnHandle(ColumnHandle):
    """Columns inside one shared-memory segment, resolved by name."""

    __slots__ = ("segment_name", "_segment", "_store")

    def __init__(self, key: str, segment_name: str, length: int,
                 store: "SharedMemoryColumnStore",
                 segment: "shared_memory.SharedMemory | None" = None
                 ) -> None:
        super().__init__(key, length)
        self.segment_name = segment_name
        self._segment = segment
        self._store = store
        if segment is not None:
            self._map_views()

    def _map_views(self) -> None:
        n = self.length
        buf = self._segment.buf
        times = np.frombuffer(buf, dtype=TIMES_DTYPE, count=n)
        aps = np.frombuffer(buf, dtype=APS_DTYPE, count=n, offset=8 * n)
        # Readers must never mutate the one physical copy in place.
        times.flags.writeable = False
        aps.flags.writeable = False
        self._times = times
        self._aps = aps

    def _load(self) -> "tuple[np.ndarray, np.ndarray]":
        if self._segment is None:
            self._segment = _attach_segment(self.segment_name)
            self._store._attached += 1
        self._map_views()
        self._notify_reload()
        return self._times, self._aps  # type: ignore[return-value]

    def _discard(self, unlink: bool) -> None:
        self._times = None
        self._aps = None
        if self._segment is not None:
            _close_quietly(self._segment)
            if unlink:
                try:
                    self._segment.unlink()
                except FileNotFoundError:
                    pass
            self._segment = None
        elif unlink:
            # Owner releasing a handle it created in another life-cycle
            # stage cannot happen (owners always hold the segment), but
            # be safe for adopted names.
            try:
                shared_memory.SharedMemory(name=self.segment_name).unlink()
            except FileNotFoundError:
                pass


class ColumnStore:
    """Base class: owns the column storage of one event table."""

    #: Human-readable backend tag (surfaced by accounting/stats).
    kind: str = "abstract"
    #: Whether other processes can resolve this store's handles by name.
    is_shared: bool = False
    #: Whether this store resolves handles created elsewhere (a reader
    #: view); attached stores never unlink on release/close.
    is_attached: bool = False
    #: Whether handles support ``spill()`` (the eviction tier's hook).
    supports_spill: bool = False

    def __init__(self) -> None:
        self._handles: "set[ColumnHandle]" = set()
        self._closed = False
        self._spilled = 0
        self._reloaded = 0
        self._attached = 0

    def put(self, key: str, times: np.ndarray,
            ap_indices: np.ndarray) -> ColumnHandle:
        """Store one log's columns; returns the resolving handle."""
        raise NotImplementedError

    def release(self, handle: ColumnHandle) -> None:
        """Free one handle's storage (a merge replaced it).

        Foreign handles — :class:`_ResidentColumns` wrapping plain
        arrays, or handles of another store — are ignored, so callers
        can release whatever a log happens to carry.
        """
        if handle in self._handles:
            self._handles.discard(handle)
            self._release(handle)

    def _release(self, handle: ColumnHandle) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Free every handle and the store's backing resources."""
        if self._closed:
            return
        self._closed = True
        for handle in sorted(self._handles, key=lambda h: h.key):
            self._release(handle)
        self._handles.clear()
        self._close()

    def _close(self) -> None:
        pass

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Accounting snapshot (bytes are exact, from handle lengths)."""
        resident = sum(h.resident_nbytes for h in self._handles)  # repro-lint: disable=RL002  integer sum, order-independent
        total = sum(h.nbytes for h in self._handles)  # repro-lint: disable=RL002  integer sum, order-independent
        return {
            "kind": self.kind,
            "segments": len(self._handles),
            "column_bytes": total,
            "resident_bytes": resident,
            "spilled_bytes": total - resident,
            "spill_count": self._spilled,
            "reload_count": self._reloaded,
        }

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HeapColumnStore(ColumnStore):
    """Process-heap columns (the default), with disk spill support."""

    kind = "heap"
    supports_spill = True

    def __init__(self, spill_dir: "str | os.PathLike | None" = None) -> None:
        super().__init__()
        self._spill_dir: "pathlib.Path | None" = \
            pathlib.Path(spill_dir) if spill_dir is not None else None
        self._owns_spill_dir = False
        self._sequence = 0

    def put(self, key: str, times: np.ndarray,
            ap_indices: np.ndarray) -> HeapColumnHandle:
        if times.shape != ap_indices.shape:
            raise EventTableError("times and ap_indices must align")
        handle = HeapColumnHandle(key, times, ap_indices, self)
        self._handles.add(handle)
        return handle

    def _spill_file(self, handle: HeapColumnHandle) -> pathlib.Path:
        if self._spill_dir is None:
            self._spill_dir = pathlib.Path(
                tempfile.mkdtemp(prefix="locater-spill-"))
            self._owns_spill_dir = True
        self._sequence += 1
        return self._spill_dir / f"col-{self._sequence:06d}.npz"

    def _release(self, handle: HeapColumnHandle) -> None:
        handle._discard()

    def _close(self) -> None:
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)


class SharedMemoryColumnStore(ColumnStore):
    """Columns in named shared-memory segments, one per device log.

    Two roles share the class:

    * **owner** (``SharedMemoryColumnStore()``): creates segments on
      ``put``, unlinks them on ``release``/``close``.  Exactly one
      process — the one maintaining the authoritative table — owns the
      segments.
    * **attached** (``SharedMemoryColumnStore.attached()``): resolves
      handles adopted by name (``adopt``) against segments some owner
      created; ``release``/``close`` merely unmap, never unlink.

    Spill is unsupported: an owner evicting a segment would tear the
    bytes out from under attached readers.  Cold-data eviction applies
    to heap-backed tables (see :class:`HeapColumnStore`).
    """

    kind = "shared"
    is_shared = True

    def __init__(self, prefix: "str | None" = None) -> None:
        super().__init__()
        # Segment names must be unique machine-wide and short (NAME_MAX
        # applies); the prefix keys all segments of one store.  The full
        # owner pid is embedded so :func:`purge_orphan_segments` can
        # tell a crashed owner's leftovers from a live one's segments.
        self._prefix = prefix if prefix is not None else \
            f"loc-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self._sequence = 0

    @classmethod
    def attached(cls) -> "SharedMemoryColumnStore":
        """A reader-side store resolving adopted handles by name."""
        store = cls(prefix="attached")
        store.is_attached = True
        return store

    def put(self, key: str, times: np.ndarray,
            ap_indices: np.ndarray) -> SharedColumnHandle:
        if self.is_attached:
            raise EventTableError(
                "attached column stores are read-only views; only the "
                "owner creates segments")
        if times.shape != ap_indices.shape:
            raise EventTableError("times and ap_indices must align")
        n = int(times.size)
        self._sequence += 1
        name = f"{self._prefix}-{self._sequence:06d}"
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, n * BYTES_PER_EVENT), name=name)
        buf = segment.buf
        np.frombuffer(buf, dtype=TIMES_DTYPE, count=n)[:] = \
            np.ascontiguousarray(times, dtype=TIMES_DTYPE)
        np.frombuffer(buf, dtype=APS_DTYPE, count=n, offset=8 * n)[:] = \
            np.ascontiguousarray(ap_indices, dtype=APS_DTYPE)
        handle = SharedColumnHandle(key, name, n, self, segment=segment)
        self._handles.add(handle)
        return handle

    def adopt(self, key: str, segment_name: str,
              length: int) -> SharedColumnHandle:
        """Register a handle for a segment some owner published.

        Resolution is lazy: the segment is attached on the first
        ``arrays()`` call, so adopting a descriptor's worth of names is
        free and a reader maps only the logs it actually touches.
        """
        handle = SharedColumnHandle(key, segment_name, length, self)
        self._handles.add(handle)
        return handle

    def _release(self, handle: SharedColumnHandle) -> None:
        handle._discard(unlink=not self.is_attached)

    def stats(self) -> dict:
        out = super().stats()
        if self.is_attached:
            out["kind"] = "shared-attached"
        return out


#: Segment names minted by owner-mode stores: ``loc-<pid>-<token>-<seq>``.
_SEGMENT_NAME_RE = re.compile(r"^loc-(\d+)-[0-9a-f]+-\d{6}$")


def _owner_alive(pid: int) -> bool:
    """Whether the process that minted a segment name still runs.

    Signal 0 probes existence without delivering anything; EPERM means
    the pid exists but belongs to another user — still alive.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def purge_orphan_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink shared-memory segments whose owning process died hard.

    The crash-safety gap in the segment lifecycle: an owner that exits
    cleanly unlinks its segments, and an owner that merely crashes
    *inside Python* is covered by the resource tracker — but an owner
    SIGKILLed under ``fork`` shares the tracker process with its parent,
    and the tracker only reclaims at *parent* exit.  Until then the
    orphan pins ``/dev/shm`` (and tmpfs is RAM).  This sweep closes the
    window: every segment name embeds its owner's pid, so a segment
    whose owner no longer exists is provably garbage — no live store can
    resolve it (attach is by exact name, and readers never outlive the
    tables that adopted the names).

    Scans ``shm_dir`` for owner-minted names, probes each embedded pid,
    and unlinks segments of dead owners.  Returns the reclaimed names
    (sorted, deterministic).  Safe to call from any process at any time:
    live owners are never touched, races with a concurrent purge or the
    resource tracker are tolerated (already-gone is success).
    """
    try:
        names = sorted(os.listdir(shm_dir))
    except OSError:
        return []
    reclaimed: list[str] = []
    for name in names:
        match = _SEGMENT_NAME_RE.match(name)
        if match is None:
            continue
        owner_dead = not _owner_alive(int(match.group(1)))
        if owner_dead:
            try:
                os.unlink(os.path.join(shm_dir, name))
            except OSError:
                continue
            # In the common case the purger is the parent of the dead
            # (forked) owner and shares its resource tracker — drop the
            # stale registration so tracker shutdown stays silent.  The
            # register/unregister pair nets to "not registered" without
            # tripping the tracker's KeyError when the dead owner used
            # its own tracker (its registrations died with it).
            try:
                resource_tracker.register(f"/{name}", "shared_memory")
                resource_tracker.unregister(f"/{name}", "shared_memory")
            except Exception:
                pass
            reclaimed.append(name)
    return reclaimed
