"""Connectivity event records (the raw tuples of paper Fig. 1(b))."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timeutil import format_timestamp


@dataclass(frozen=True, slots=True, order=True)
class ConnectivityEvent:
    """One WiFi association event ``⟨mac, timestamp, wap⟩``.

    Ordering is by timestamp first so sorted containers of events are
    chronological; ties break on mac then AP for determinism.

    Attributes:
        timestamp: Seconds since the dataset epoch.
        mac: MAC address (or anonymized id) of the connecting device.
        ap_id: Identifier of the access point that logged the association.
        event_id: Optional monotonically increasing id assigned at ingest.
    """

    timestamp: float
    mac: str
    ap_id: str
    event_id: int = -1

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")
        if not self.mac:
            raise ValueError("mac must be non-empty")
        if not self.ap_id:
            raise ValueError("ap_id must be non-empty")

    def __str__(self) -> str:
        return (f"e{self.event_id if self.event_id >= 0 else '?'}: "
                f"{self.mac} @ {self.ap_id} [{format_timestamp(self.timestamp)}]")
