"""Gap detection: the missing values of the coarse localization problem.

A *gap* is a maximal period in a device's log during which no connectivity
event is valid (paper §2): between consecutive events ``e0`` at ``t0`` and
``e1`` at ``t1``, if ``t1 − t0 > 2δ`` there is a gap
``[t0 + δ, t1 − δ]``.  The coarse-grained localizer classifies each gap as
outside the building or inside a specific region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.table import DeviceLog
from repro.util.timeutil import TimeInterval


@dataclass(frozen=True, slots=True)
class Gap:
    """One gap in a device's connectivity log.

    Attributes:
        mac: Device the gap belongs to.
        interval: ``[t_str, t_end]`` = ``[t0 + δ, t1 − δ]``.
        before_position: Log position of the event e0 preceding the gap.
        after_position: Log position of the event e1 following the gap.
        ap_before: AP of e0 (determines the gap's start region g_str).
        ap_after: AP of e1 (determines the gap's end region g_end).
    """

    mac: str
    interval: TimeInterval
    before_position: int
    after_position: int
    ap_before: str
    ap_after: str

    @property
    def duration(self) -> float:
        """δ(gap): the length of the gap in seconds."""
        return self.interval.duration

    def __str__(self) -> str:
        return (f"gap({self.mac}) {self.interval} "
                f"[{self.ap_before} → {self.ap_after}]")


def extract_gaps(log: DeviceLog, delta: "float | None" = None,
                 window: "TimeInterval | None" = None) -> list[Gap]:
    """All gaps of a device log (GAP(d)), optionally restricted to a window.

    A pair of consecutive events produces a gap only when the spacing
    exceeds ``2δ``; otherwise their validity windows tile the whole span.
    With ``window``, only gaps whose *start* event lies in the window are
    returned (how the training history E_T is assembled in Section 3).
    """
    if delta is None:
        delta = log.device.delta
    gaps: list[Gap] = []
    n = len(log)
    for i in range(n - 1):
        t0 = log.time_at(i)
        t1 = log.time_at(i + 1)
        if t1 - t0 <= 2 * delta:
            continue
        if window is not None and not window.contains(t0):
            continue
        gaps.append(Gap(
            mac=log.device.mac,
            interval=TimeInterval(t0 + delta, t1 - delta),
            before_position=i,
            after_position=i + 1,
            ap_before=log.ap_at(i),
            ap_after=log.ap_at(i + 1),
        ))
    return gaps


def find_gap_at(log: DeviceLog, timestamp: float,
                delta: "float | None" = None) -> "Gap | None":
    """The gap containing ``timestamp``, or None if an event is valid there.

    Boundary gaps (before the first or after the last event) return None:
    they are handled by the caller, since without a surrounding event pair
    the gap features of Section 3 are undefined (the coarse localizer
    treats a query there as outside the building).
    """
    if delta is None:
        delta = log.device.delta
    if log.is_empty:
        return None
    before = log.nearest_before(timestamp)
    if before is None or before + 1 >= len(log):
        return None
    t0 = log.time_at(before)
    t1 = log.time_at(before + 1)
    if t1 - t0 <= 2 * delta:
        return None
    start, end = t0 + delta, t1 - delta
    if not start <= timestamp <= end:
        return None
    return Gap(
        mac=log.device.mac,
        interval=TimeInterval(start, end),
        before_position=before,
        after_position=before + 1,
        ap_before=log.ap_at(before),
        ap_after=log.ap_at(before + 1),
    )
