"""Gap detection: the missing values of the coarse localization problem.

A *gap* is a maximal period in a device's log during which no connectivity
event is valid (paper §2): between consecutive events ``e0`` at ``t0`` and
``e1`` at ``t1``, if ``t1 − t0 > 2δ`` there is a gap
``[t0 + δ, t1 − δ]``.  The coarse-grained localizer classifies each gap as
outside the building or inside a specific region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.events.table import DeviceLog
from repro.util.timeutil import TimeInterval


@dataclass(frozen=True, slots=True)
class Gap:
    """One gap in a device's connectivity log.

    Attributes:
        mac: Device the gap belongs to.
        interval: ``[t_str, t_end]`` = ``[t0 + δ, t1 − δ]``.
        before_position: Log position of the event e0 preceding the gap.
        after_position: Log position of the event e1 following the gap.
        ap_before: AP of e0 (determines the gap's start region g_str).
        ap_after: AP of e1 (determines the gap's end region g_end).
    """

    mac: str
    interval: TimeInterval
    before_position: int
    after_position: int
    ap_before: str
    ap_after: str

    @property
    def duration(self) -> float:
        """δ(gap): the length of the gap in seconds."""
        return self.interval.duration

    def __str__(self) -> str:
        return (f"gap({self.mac}) {self.interval} "
                f"[{self.ap_before} → {self.ap_after}]")


@dataclass(frozen=True, slots=True)
class GapArrays:
    """Column-oriented view of a device's gaps (the array-native core).

    Parallel arrays, one entry per gap in chronological order.  ``starts``
    and ``ends`` are the gap bounds ``[t0 + δ, t1 − δ]``;
    ``before_positions`` indexes the event e0 preceding each gap, and
    ``ap_before_codes`` / ``ap_after_codes`` are AP *vocabulary indices*
    (resolve via :meth:`DeviceLog.resolve_ap`).  The coarse training
    pipeline consumes these columns directly; :meth:`to_gaps` materializes
    the classic :class:`Gap` records for the object-based boundary APIs.
    """

    mac: str
    starts: np.ndarray
    ends: np.ndarray
    before_positions: np.ndarray
    ap_before_codes: np.ndarray
    ap_after_codes: np.ndarray

    def __len__(self) -> int:
        return int(self.starts.size)

    def to_gaps(self, log: DeviceLog) -> list[Gap]:
        """Materialize :class:`Gap` records (bit-identical to the loop)."""
        return [Gap(
            mac=self.mac,
            interval=TimeInterval(float(self.starts[i]),
                                  float(self.ends[i])),
            before_position=int(self.before_positions[i]),
            after_position=int(self.before_positions[i]) + 1,
            ap_before=log.resolve_ap(int(self.ap_before_codes[i])),
            ap_after=log.resolve_ap(int(self.ap_after_codes[i])),
        ) for i in range(len(self))]


def extract_gap_arrays(log: DeviceLog, delta: "float | None" = None,
                       window: "TimeInterval | None" = None) -> GapArrays:
    """All gaps of a device log as :class:`GapArrays`, fully vectorized.

    One pass of array arithmetic over the sorted timestamp array replaces
    the per-event-pair Python loop: consecutive spacings are diffed, the
    ``> 2δ`` mask (and the optional window mask on the start event) selects
    the gap positions, and the bound/AP columns are gathered in bulk.
    """
    if delta is None:
        delta = log.device.delta
    times = log.times
    if times.size < 2:
        empty = np.empty(0, dtype=np.int64)
        return GapArrays(mac=log.device.mac,
                         starts=np.empty(0, dtype=np.float64),
                         ends=np.empty(0, dtype=np.float64),
                         before_positions=empty,
                         ap_before_codes=empty, ap_after_codes=empty)
    mask = (times[1:] - times[:-1]) > 2 * delta
    if window is not None:
        mask &= (times[:-1] >= window.start) & (times[:-1] < window.end)
    positions = np.flatnonzero(mask)
    return GapArrays(
        mac=log.device.mac,
        starts=times[positions] + delta,
        ends=times[positions + 1] - delta,
        before_positions=positions,
        ap_before_codes=log.ap_indices[positions],
        ap_after_codes=log.ap_indices[positions + 1],
    )


def extract_gaps(log: DeviceLog, delta: "float | None" = None,
                 window: "TimeInterval | None" = None) -> list[Gap]:
    """All gaps of a device log (GAP(d)), optionally restricted to a window.

    A pair of consecutive events produces a gap only when the spacing
    exceeds ``2δ``; otherwise their validity windows tile the whole span.
    With ``window``, only gaps whose *start* event lies in the window are
    returned (how the training history E_T is assembled in Section 3).

    Built on :func:`extract_gap_arrays`; answers are identical to the
    historical per-pair loop (retained as the oracle in
    :mod:`repro.coarse.reference`).
    """
    return extract_gap_arrays(log, delta=delta, window=window).to_gaps(log)


def find_gap_at(log: DeviceLog, timestamp: float,
                delta: "float | None" = None) -> "Gap | None":
    """The gap containing ``timestamp``, or None if an event is valid there.

    Boundary gaps (before the first or after the last event) return None:
    they are handled by the caller, since without a surrounding event pair
    the gap features of Section 3 are undefined (the coarse localizer
    treats a query there as outside the building).
    """
    if delta is None:
        delta = log.device.delta
    if log.is_empty:
        return None
    before = log.nearest_before(timestamp)
    if before is None or before + 1 >= len(log):
        return None
    t0 = log.time_at(before)
    t1 = log.time_at(before + 1)
    if t1 - t0 <= 2 * delta:
        return None
    start, end = t0 + delta, t1 - delta
    if not start <= timestamp <= end:
        return None
    return Gap(
        mac=log.device.mac,
        interval=TimeInterval(start, end),
        before_position=before,
        after_position=before + 1,
        ap_before=log.ap_at(before),
        ap_after=log.ap_at(before + 1),
    )
