"""The connectivity events table E with per-device numpy-backed logs.

The table stores events per device as parallel sorted arrays (timestamps
and AP indices), which makes the hot operations of the localizers —
"which event is valid at t?", "events in [a, b)", "co-occurrence scans" —
binary searches instead of linear passes.  This mirrors how a production
system would index the association log by device and time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import EmptyHistoryError, EventTableError, UnknownDeviceError
from repro.events.device import Device, DeviceRegistry
from repro.events.event import ConnectivityEvent
from repro.util.timeutil import TimeInterval


class DeviceLog:
    """Chronologically sorted events of one device.

    Internally two parallel numpy arrays: ``times`` (float64 seconds) and
    ``ap_indices`` (int32 indices into the table's AP vocabulary).
    """

    def __init__(self, device: Device, times: np.ndarray,
                 ap_indices: np.ndarray, ap_vocab: Sequence[str]) -> None:
        if times.shape != ap_indices.shape:
            raise EventTableError("times and ap_indices must align")
        self.device = device
        self.times = times
        self.ap_indices = ap_indices
        self._ap_vocab = ap_vocab

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def is_empty(self) -> bool:
        return self.times.size == 0

    def ap_at(self, position: int) -> str:
        """AP id of the event at array position ``position``."""
        return self._ap_vocab[int(self.ap_indices[position])]

    def resolve_ap(self, ap_index: int) -> str:
        """AP id for a raw vocabulary index (as returned by slices)."""
        return self._ap_vocab[int(ap_index)]

    def time_at(self, position: int) -> float:
        """Timestamp of the event at array position ``position``."""
        return float(self.times[position])

    def slice_interval(self, interval: TimeInterval) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, ap_indices)`` of events with t in [start, end)."""
        lo = int(np.searchsorted(self.times, interval.start, side="left"))
        hi = int(np.searchsorted(self.times, interval.end, side="left"))
        return self.times[lo:hi], self.ap_indices[lo:hi]

    def count_in(self, interval: TimeInterval) -> int:
        """Number of events with timestamp in [start, end)."""
        lo = int(np.searchsorted(self.times, interval.start, side="left"))
        hi = int(np.searchsorted(self.times, interval.end, side="left"))
        return hi - lo

    def nearest_before(self, timestamp: float) -> "int | None":
        """Position of the latest event with t <= timestamp, or None."""
        pos = int(np.searchsorted(self.times, timestamp, side="right")) - 1
        return pos if pos >= 0 else None

    def nearest_after(self, timestamp: float) -> "int | None":
        """Position of the earliest event with t >= timestamp, or None."""
        pos = int(np.searchsorted(self.times, timestamp, side="left"))
        return pos if pos < self.times.size else None

    def events(self) -> Iterator[ConnectivityEvent]:
        """Materialize the log as :class:`ConnectivityEvent` records."""
        for i in range(len(self)):
            yield ConnectivityEvent(timestamp=self.time_at(i),
                                    mac=self.device.mac, ap_id=self.ap_at(i))


class EventTable:
    """The events table E, indexed by device and time.

    Build either incrementally with :meth:`append` + :meth:`freeze`, or in
    one shot with :meth:`from_events`.  Appends after freezing re-open the
    table; reads on a dirty (unfrozen) table freeze it lazily.
    """

    def __init__(self) -> None:
        self.registry = DeviceRegistry()
        self._ap_vocab: list[str] = []
        self._ap_index: dict[str, int] = {}
        self._pending: dict[str, list[tuple[float, int]]] = {}
        self._logs: dict[str, DeviceLog] = {}
        self._dirty = False
        self._event_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[ConnectivityEvent]) -> "EventTable":
        """Build a frozen table from an iterable of events."""
        table = cls()
        for event in events:
            table.append(event)
        table.freeze()
        return table

    def append(self, event: ConnectivityEvent) -> None:
        """Ingest one event (any order; sorting happens at freeze)."""
        self.registry.intern(event.mac)
        ap_idx = self._ap_index.get(event.ap_id)
        if ap_idx is None:
            ap_idx = len(self._ap_vocab)
            self._ap_vocab.append(event.ap_id)
            self._ap_index[event.ap_id] = ap_idx
        self._pending.setdefault(event.mac, []).append((event.timestamp, ap_idx))
        self._event_count += 1
        self._dirty = True

    def extend(self, events: Iterable[ConnectivityEvent]) -> None:
        """Ingest many events."""
        for event in events:
            self.append(event)

    def freeze(self) -> None:
        """Sort pending events into the per-device numpy logs."""
        if not self._dirty:
            return
        for mac, rows in self._pending.items():
            old = self._logs.get(mac)
            times = np.array([t for t, _ in rows], dtype=np.float64)
            aps = np.array([a for _, a in rows], dtype=np.int32)
            if old is not None and len(old):
                times = np.concatenate([old.times, times])
                aps = np.concatenate([old.ap_indices, aps])
            order = np.argsort(times, kind="stable")
            device = self.registry.get(mac)
            self._logs[mac] = DeviceLog(device, times[order], aps[order],
                                        self._ap_vocab)
        self._pending.clear()
        self._dirty = False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _ensure_frozen(self) -> None:
        if self._dirty:
            self.freeze()

    def __len__(self) -> int:
        return self._event_count

    @property
    def device_count(self) -> int:
        return len(self.registry)

    @property
    def ap_ids(self) -> tuple[str, ...]:
        """All AP ids observed, in first-seen order."""
        return tuple(self._ap_vocab)

    def macs(self) -> list[str]:
        """All device MACs observed."""
        return self.registry.macs()

    def log(self, mac: str) -> DeviceLog:
        """The chronologically sorted log of one device (E(d))."""
        self._ensure_frozen()
        if mac not in self.registry:
            raise UnknownDeviceError(f"device {mac!r} never observed")
        device_log = self._logs.get(mac)
        if device_log is None:
            device = self.registry.get(mac)
            empty = np.empty(0)
            device_log = DeviceLog(device, empty.astype(np.float64),
                                   empty.astype(np.int32), self._ap_vocab)
            self._logs[mac] = device_log
        return device_log

    def events_of(self, mac: str,
                  interval: "TimeInterval | None" = None
                  ) -> list[ConnectivityEvent]:
        """Materialized events of a device, optionally clipped to a window."""
        device_log = self.log(mac)
        if interval is None:
            return list(device_log.events())
        times, aps = device_log.slice_interval(interval)
        return [ConnectivityEvent(timestamp=float(t), mac=mac,
                                  ap_id=self._ap_vocab[int(a)])
                for t, a in zip(times, aps)]

    def span(self) -> TimeInterval:
        """Smallest interval containing every event in the table."""
        self._ensure_frozen()
        lo, hi = np.inf, -np.inf
        for device_log in self._logs.values():
            if len(device_log):
                lo = min(lo, float(device_log.times[0]))
                hi = max(hi, float(device_log.times[-1]))
        if lo > hi:
            raise EmptyHistoryError("event table contains no events")
        return TimeInterval(lo, hi + 1e-9)

    def devices_active_in(self, interval: TimeInterval) -> list[str]:
        """MACs with at least one event inside ``interval``."""
        self._ensure_frozen()
        return [mac for mac, device_log in self._logs.items()
                if device_log.count_in(interval) > 0]

    def restrict(self, interval: TimeInterval) -> "EventTable":
        """A new table containing only events inside ``interval`` (E_T).

        Built by slicing each :class:`DeviceLog`'s numpy arrays directly
        — no :class:`ConnectivityEvent` objects are materialized and no
        re-sort happens (each slice of a sorted log is sorted).  Every
        registered device is carried over with its delta estimate, even
        devices with no surviving events (their validity periods were
        estimated from the full history and remain meaningful).  The AP
        vocabulary is rebuilt in first-surviving-event order, matching
        what appending the sliced events one by one would produce.
        """
        self._ensure_frozen()
        clipped = EventTable()
        ap_remap = np.full(len(self._ap_vocab), -1, dtype=np.int64)
        for mac in self.macs():
            device = clipped.registry.intern(mac)
            device.delta = self.registry.get(mac).delta
            log = self._logs.get(mac)
            if log is None or log.is_empty:
                continue
            times, aps = log.slice_interval(interval)
            if times.size == 0:
                continue
            # Intern this device's surviving APs in first-seen order.
            first_seen = aps[np.sort(np.unique(aps, return_index=True)[1])]
            for old_index in first_seen:
                if ap_remap[old_index] < 0:
                    ap_id = self._ap_vocab[int(old_index)]
                    ap_remap[old_index] = len(clipped._ap_vocab)
                    clipped._ap_index[ap_id] = len(clipped._ap_vocab)
                    clipped._ap_vocab.append(ap_id)
            clipped._logs[mac] = DeviceLog(
                device, times.copy(), ap_remap[aps].astype(np.int32),
                clipped._ap_vocab)
            clipped._event_count += int(times.size)
        return clipped
