"""The connectivity events table E with per-device numpy-backed logs.

The table stores events per device as parallel sorted arrays (timestamps
and AP indices), which makes the hot operations of the localizers —
"which event is valid at t?", "events in [a, b)", "co-occurrence scans" —
binary searches instead of linear passes.  This mirrors how a production
system would index the association log by device and time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import EmptyHistoryError, EventTableError, UnknownDeviceError
from repro.events.device import Device, DeviceRegistry
from repro.events.event import ConnectivityEvent
from repro.util.timeutil import TimeInterval


class DeviceLog:
    """Chronologically sorted events of one device.

    Internally two parallel numpy arrays: ``times`` (float64 seconds) and
    ``ap_indices`` (int32 indices into the table's AP vocabulary).
    """

    def __init__(self, device: Device, times: np.ndarray,
                 ap_indices: np.ndarray, ap_vocab: Sequence[str]) -> None:
        if times.shape != ap_indices.shape:
            raise EventTableError("times and ap_indices must align")
        self.device = device
        self.times = times
        self.ap_indices = ap_indices
        self._ap_vocab = ap_vocab

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def is_empty(self) -> bool:
        return self.times.size == 0

    @property
    def ap_vocab(self) -> Sequence[str]:
        """The table-wide AP vocabulary this log's indices point into."""
        return self._ap_vocab

    def ap_at(self, position: int) -> str:
        """AP id of the event at array position ``position``."""
        return self._ap_vocab[int(self.ap_indices[position])]

    def resolve_ap(self, ap_index: int) -> str:
        """AP id for a raw vocabulary index (as returned by slices)."""
        return self._ap_vocab[int(ap_index)]

    def time_at(self, position: int) -> float:
        """Timestamp of the event at array position ``position``."""
        return float(self.times[position])

    def slice_interval(self, interval: TimeInterval) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, ap_indices)`` of events with t in [start, end)."""
        lo = int(np.searchsorted(self.times, interval.start, side="left"))
        hi = int(np.searchsorted(self.times, interval.end, side="left"))
        return self.times[lo:hi], self.ap_indices[lo:hi]

    def count_in(self, interval: TimeInterval) -> int:
        """Number of events with timestamp in [start, end)."""
        lo = int(np.searchsorted(self.times, interval.start, side="left"))
        hi = int(np.searchsorted(self.times, interval.end, side="left"))
        return hi - lo

    def count_in_windows(self, starts: np.ndarray,
                         ends: np.ndarray) -> np.ndarray:
        """Event counts for many half-open windows ``[starts, ends)`` at once.

        ``starts`` and ``ends`` may be any (matching) shape; the result has
        the same shape.  Each entry equals ``count_in`` on that window, but
        the whole batch costs two vectorized binary searches — the hot path
        of the coarse density feature, which counts every gap's time-of-day
        window on every history day in one call.
        """
        lo, hi = self.window_bounds(starts, ends)
        return hi - lo

    def window_bounds(self, starts: np.ndarray,
                      ends: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """(lo, hi) array positions of events inside many windows at once.

        Positions satisfy ``times[lo:hi]`` in ``[start, end)`` per window,
        exactly as :meth:`slice_interval` would return them one by one.
        """
        lo = np.searchsorted(self.times, starts, side="left")
        hi = np.searchsorted(self.times, ends, side="left")
        return lo, hi

    def nearest_before(self, timestamp: float) -> "int | None":
        """Position of the latest event with t <= timestamp, or None."""
        pos = int(np.searchsorted(self.times, timestamp, side="right")) - 1
        return pos if pos >= 0 else None

    def nearest_after(self, timestamp: float) -> "int | None":
        """Position of the earliest event with t >= timestamp, or None."""
        pos = int(np.searchsorted(self.times, timestamp, side="left"))
        return pos if pos < self.times.size else None

    def events(self) -> Iterator[ConnectivityEvent]:
        """Materialize the log as :class:`ConnectivityEvent` records."""
        for i in range(len(self)):
            yield ConnectivityEvent(timestamp=self.time_at(i),
                                    mac=self.device.mac, ap_id=self.ap_at(i))


class EventTable:
    """The events table E, indexed by device and time.

    Build either incrementally with :meth:`append` + :meth:`freeze`, or in
    one shot with :meth:`from_events`.  Appends after freezing re-open the
    table; reads on a dirty (unfrozen) table freeze it lazily.

    The table is built for *online* growth: each :meth:`freeze` merges the
    pending rows of a device into its already-sorted log with binary
    searches (O(new·log new + old) per changed device, no re-sort of the
    full log) and advances a generation counter.  Consumers that cache
    work derived from the table — trained models, aggregates, snapshots —
    poll :meth:`changed_since` with the last generation they observed to
    learn exactly which devices changed and over which time interval.
    """

    def __init__(self) -> None:
        self.registry = DeviceRegistry()
        self._ap_vocab: list[str] = []
        self._ap_index: dict[str, int] = {}
        self._pending: dict[str, list[tuple[float, int]]] = {}
        self._logs: dict[str, DeviceLog] = {}
        self._dirty = False
        self._event_count = 0
        self._max_event_id = -1
        self._generation = 0
        self._device_generation: dict[str, int] = {}
        # Per-device change journal: (generation, min time, max time) of
        # every merged pending batch, consumed by changed_since().
        # Bounded: once a device's journal exceeds _CHANGE_JOURNAL_CAP
        # entries, the oldest half is coalesced into one entry (union
        # interval, newest merged generation) — changed_since may then
        # over-approximate for very old generations, never under.
        self._changes: dict[str, list[tuple[int, float, float]]] = {}

    #: Entries kept per device before the journal's oldest half is
    #: coalesced; bounds memory and changed_since cost on long-running
    #: streaming sessions.
    _CHANGE_JOURNAL_CAP = 64

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[ConnectivityEvent]) -> "EventTable":
        """Build a frozen table from an iterable of events."""
        table = cls()
        for event in events:
            table.append(event)
        table.freeze()
        return table

    def append(self, event: ConnectivityEvent) -> None:
        """Ingest one event (any order; sorting happens at freeze)."""
        self.registry.intern(event.mac)
        ap_idx = self._ap_index.get(event.ap_id)
        if ap_idx is None:
            ap_idx = len(self._ap_vocab)
            self._ap_vocab.append(event.ap_id)
            self._ap_index[event.ap_id] = ap_idx
        self._pending.setdefault(event.mac, []).append((event.timestamp, ap_idx))
        self._event_count += 1
        if event.event_id > self._max_event_id:
            self._max_event_id = event.event_id
        self._dirty = True

    def extend(self, events: Iterable[ConnectivityEvent]) -> None:
        """Ingest many events."""
        for event in events:
            self.append(event)

    def freeze(self) -> None:
        """Merge pending events into the per-device numpy logs.

        Incremental by construction: only devices with pending rows are
        touched, the pending rows are stable-sorted among themselves and
        merged into the (already sorted) existing log via
        ``np.searchsorted`` + ``np.insert`` — no concatenate-and-resort
        of the full log.  The result is bitwise identical to a stable
        argsort over ``old + new``: ``side="right"`` places timestamp
        ties after the existing rows, and equal insertion positions keep
        the pending rows' relative order.

        Every freeze that merges rows advances :attr:`generation` and
        records, per device, the time interval the new rows cover (the
        change feed read by :meth:`changed_since`).
        """
        if not self._dirty:
            return
        self._generation += 1
        for mac, rows in self._pending.items():
            old = self._logs.get(mac)
            times = np.array([t for t, _ in rows], dtype=np.float64)
            aps = np.array([a for _, a in rows], dtype=np.int32)
            if times.size > 1:
                order = np.argsort(times, kind="stable")
                times, aps = times[order], aps[order]
            if old is not None and len(old):
                positions = np.searchsorted(old.times, times, side="right")
                merged_times = np.insert(old.times, positions, times)
                merged_aps = np.insert(old.ap_indices, positions, aps)
            else:
                merged_times, merged_aps = times, aps
            device = self.registry.get(mac)
            self._logs[mac] = DeviceLog(device, merged_times, merged_aps,
                                        self._ap_vocab)
            self._device_generation[mac] = self._generation
            journal = self._changes.setdefault(mac, [])
            journal.append(
                (self._generation, float(times[0]), float(times[-1])))
            if len(journal) > self._CHANGE_JOURNAL_CAP:
                half = len(journal) // 2
                merged = (journal[half - 1][0],
                          min(entry[1] for entry in journal[:half]),
                          max(entry[2] for entry in journal[:half]))
                self._changes[mac] = [merged, *journal[half:]]
        self._pending.clear()
        self._dirty = False

    # ------------------------------------------------------------------
    # Change feed
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone counter advanced by every freeze that merged rows."""
        return self._generation

    @property
    def max_event_id(self) -> int:
        """Largest event id ever appended (−1 when none was stamped)."""
        return self._max_event_id

    def device_generation(self, mac: str) -> int:
        """Generation at which ``mac``'s log last changed (0 = never)."""
        return self._device_generation.get(mac, 0)

    def changed_since(self, generation: int) -> dict[str, TimeInterval]:
        """Devices whose logs changed after ``generation``.

        Returns, per changed MAC, a :class:`TimeInterval` whose start/end
        are the earliest/latest timestamps merged since that generation —
        the key consumers use for interval-scoped cache invalidation
        (note ``end`` equals the latest merged timestamp itself; callers
        widen by their validity slack).  Pending rows are frozen first so
        the feed always reflects the current table.

        The journal behind the feed is bounded (old entries coalesce),
        so a query against a generation older than the oldest surviving
        entry may return a *wider* interval than strictly changed —
        over-invalidation, never staleness.
        """
        self._ensure_frozen()
        out: dict[str, TimeInterval] = {}
        for mac, entries in self._changes.items():
            lo, hi = np.inf, -np.inf
            for gen, start, end in entries:
                if gen > generation:
                    lo, hi = min(lo, start), max(hi, end)
            if lo <= hi:
                out[mac] = TimeInterval(lo, hi)
        return out

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _ensure_frozen(self) -> None:
        if self._dirty:
            self.freeze()

    def __len__(self) -> int:
        return self._event_count

    @property
    def device_count(self) -> int:
        return len(self.registry)

    @property
    def ap_ids(self) -> tuple[str, ...]:
        """All AP ids observed, in first-seen order."""
        return tuple(self._ap_vocab)

    def macs(self) -> list[str]:
        """All device MACs observed."""
        return self.registry.macs()

    def log(self, mac: str) -> DeviceLog:
        """The chronologically sorted log of one device (E(d))."""
        self._ensure_frozen()
        if mac not in self.registry:
            raise UnknownDeviceError(f"device {mac!r} never observed")
        device_log = self._logs.get(mac)
        if device_log is None:
            device = self.registry.get(mac)
            empty = np.empty(0)
            device_log = DeviceLog(device, empty.astype(np.float64),
                                   empty.astype(np.int32), self._ap_vocab)
            self._logs[mac] = device_log
        return device_log

    def events_of(self, mac: str,
                  interval: "TimeInterval | None" = None
                  ) -> list[ConnectivityEvent]:
        """Materialized events of a device, optionally clipped to a window."""
        device_log = self.log(mac)
        if interval is None:
            return list(device_log.events())
        times, aps = device_log.slice_interval(interval)
        return [ConnectivityEvent(timestamp=float(t), mac=mac,
                                  ap_id=self._ap_vocab[int(a)])
                for t, a in zip(times, aps)]

    def span(self) -> TimeInterval:
        """Smallest interval containing every event in the table."""
        self._ensure_frozen()
        lo, hi = np.inf, -np.inf
        for device_log in self._logs.values():
            if len(device_log):
                lo = min(lo, float(device_log.times[0]))
                hi = max(hi, float(device_log.times[-1]))
        if lo > hi:
            raise EmptyHistoryError("event table contains no events")
        return TimeInterval(lo, hi + 1e-9)

    def devices_active_in(self, interval: TimeInterval) -> list[str]:
        """MACs with at least one event inside ``interval``."""
        self._ensure_frozen()
        return [mac for mac, device_log in self._logs.items()
                if device_log.count_in(interval) > 0]

    def restrict(self, interval: TimeInterval) -> "EventTable":
        """A new table containing only events inside ``interval`` (E_T).

        Built by slicing each :class:`DeviceLog`'s numpy arrays directly
        — no :class:`ConnectivityEvent` objects are materialized and no
        re-sort happens (each slice of a sorted log is sorted).  Every
        registered device is carried over with its delta estimate, even
        devices with no surviving events (their validity periods were
        estimated from the full history and remain meaningful).  The AP
        vocabulary is rebuilt in first-surviving-event order, matching
        what appending the sliced events one by one would produce.
        """
        self._ensure_frozen()
        clipped = EventTable()
        ap_remap = np.full(len(self._ap_vocab), -1, dtype=np.int64)
        for mac in self.macs():
            device = clipped.registry.intern(mac)
            device.delta = self.registry.get(mac).delta
            log = self._logs.get(mac)
            if log is None or log.is_empty:
                continue
            times, aps = log.slice_interval(interval)
            if times.size == 0:
                continue
            # Intern this device's surviving APs in first-seen order.
            first_seen = aps[np.sort(np.unique(aps, return_index=True)[1])]
            for old_index in first_seen:
                if ap_remap[old_index] < 0:
                    ap_id = self._ap_vocab[int(old_index)]
                    ap_remap[old_index] = len(clipped._ap_vocab)
                    clipped._ap_index[ap_id] = len(clipped._ap_vocab)
                    clipped._ap_vocab.append(ap_id)
            clipped._logs[mac] = DeviceLog(
                device, times.copy(), ap_remap[aps].astype(np.int32),
                clipped._ap_vocab)
            clipped._event_count += int(times.size)
        return clipped
