"""The connectivity events table E with per-device numpy-backed logs.

The table stores events per device as parallel sorted arrays (timestamps
and AP indices), which makes the hot operations of the localizers —
"which event is valid at t?", "events in [a, b)", "co-occurrence scans" —
binary searches instead of linear passes.  This mirrors how a production
system would index the association log by device and time.

Where the column bytes live is delegated to a
:class:`~repro.events.columns.ColumnStore`: heap arrays by default, or
named shared-memory segments (:class:`SharedMemoryColumnStore`) so that
shard worker processes attach to one physical copy of the log instead
of each holding a replica.  Two picklable payloads cross process
boundaries:

* :meth:`EventTable.describe` → :class:`TableDescriptor`: the full
  table state by segment *name* — :meth:`EventTable.attach` rebuilds a
  read-only view in any process that can map the segments.
* :meth:`EventTable.sync_payload` → :class:`TableSync`: the delta since
  a generation — :meth:`EventTable.apply_sync` advances an attached
  view to the owner's exact state (logs, registry deltas, generation
  counters and the change journal all replicated verbatim, so the
  generation-keyed change feed behaves identically on every view).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # layering: events must not import system at runtime
    from repro.system.memory import MemoryManager, _Entry

from repro.errors import EmptyHistoryError, EventTableError, UnknownDeviceError
from repro.events.columns import (
    ColumnHandle,
    ColumnStore,
    HeapColumnStore,
    SharedMemoryColumnStore,
    _ResidentColumns,
)
from repro.events.device import Device, DeviceRegistry
from repro.events.event import ConnectivityEvent
from repro.util.timeutil import TimeInterval


class DeviceLog:
    """Chronologically sorted events of one device.

    Internally two parallel numpy arrays: ``times`` (float64 seconds) and
    ``ap_indices`` (int32 indices into the table's AP vocabulary),
    resolved through a :class:`~repro.events.columns.ColumnHandle` — so
    the same log object serves heap arrays, attached shared-memory
    segments, and spilled-to-disk cold data transparently.
    """

    def __init__(self, device: Device, times: "np.ndarray | None" = None,
                 ap_indices: "np.ndarray | None" = None,
                 ap_vocab: Sequence[str] = (),
                 columns: "ColumnHandle | None" = None) -> None:
        if columns is None:
            if times is None or ap_indices is None:
                raise EventTableError(
                    "DeviceLog needs either arrays or a column handle")
            if times.shape != ap_indices.shape:
                raise EventTableError("times and ap_indices must align")
            columns = _ResidentColumns(device.mac, times, ap_indices)
        self.device = device
        self._columns = columns
        self._ap_vocab = ap_vocab

    @property
    def columns(self) -> ColumnHandle:
        """The storage handle behind this log's arrays."""
        return self._columns

    @property
    def times(self) -> np.ndarray:
        """Sorted event timestamps (float64 seconds)."""
        return self._columns.arrays()[0]

    @property
    def ap_indices(self) -> np.ndarray:
        """AP vocabulary indices aligned with :attr:`times` (int32)."""
        return self._columns.arrays()[1]

    def __len__(self) -> int:
        return self._columns.length

    @property
    def is_empty(self) -> bool:
        return self._columns.length == 0

    @property
    def ap_vocab(self) -> Sequence[str]:
        """The table-wide AP vocabulary this log's indices point into."""
        return self._ap_vocab

    def ap_at(self, position: int) -> str:
        """AP id of the event at array position ``position``."""
        return self._ap_vocab[int(self.ap_indices[position])]

    def resolve_ap(self, ap_index: int) -> str:
        """AP id for a raw vocabulary index (as returned by slices)."""
        return self._ap_vocab[int(ap_index)]

    def time_at(self, position: int) -> float:
        """Timestamp of the event at array position ``position``."""
        return float(self.times[position])

    def slice_interval(self, interval: TimeInterval) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, ap_indices)`` of events with t in [start, end)."""
        times, aps = self._columns.arrays()
        lo = int(np.searchsorted(times, interval.start, side="left"))
        hi = int(np.searchsorted(times, interval.end, side="left"))
        return times[lo:hi], aps[lo:hi]

    def count_in(self, interval: TimeInterval) -> int:
        """Number of events with timestamp in [start, end)."""
        times = self.times
        lo = int(np.searchsorted(times, interval.start, side="left"))
        hi = int(np.searchsorted(times, interval.end, side="left"))
        return hi - lo

    def count_in_windows(self, starts: np.ndarray,
                         ends: np.ndarray) -> np.ndarray:
        """Event counts for many half-open windows ``[starts, ends)`` at once.

        ``starts`` and ``ends`` may be any (matching) shape; the result has
        the same shape.  Each entry equals ``count_in`` on that window, but
        the whole batch costs two vectorized binary searches — the hot path
        of the coarse density feature, which counts every gap's time-of-day
        window on every history day in one call.
        """
        lo, hi = self.window_bounds(starts, ends)
        return hi - lo

    def window_bounds(self, starts: np.ndarray,
                      ends: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """(lo, hi) array positions of events inside many windows at once.

        Positions satisfy ``times[lo:hi]`` in ``[start, end)`` per window,
        exactly as :meth:`slice_interval` would return them one by one.
        """
        times = self.times
        lo = np.searchsorted(times, starts, side="left")
        hi = np.searchsorted(times, ends, side="left")
        return lo, hi

    def nearest_before(self, timestamp: float) -> "int | None":
        """Position of the latest event with t <= timestamp, or None."""
        pos = int(np.searchsorted(self.times, timestamp, side="right")) - 1
        return pos if pos >= 0 else None

    def nearest_after(self, timestamp: float) -> "int | None":
        """Position of the earliest event with t >= timestamp, or None."""
        pos = int(np.searchsorted(self.times, timestamp, side="left"))
        return pos if pos < self._columns.length else None

    def events(self) -> Iterator[ConnectivityEvent]:
        """Materialize the log as :class:`ConnectivityEvent` records."""
        for i in range(len(self)):
            yield ConnectivityEvent(timestamp=self.time_at(i),
                                    mac=self.device.mac, ap_id=self.ap_at(i))


@dataclass(frozen=True, slots=True)
class DeviceState:
    """Picklable snapshot of one device's log for cross-process sync.

    ``segment``/``length`` name the shared-memory segment holding the
    log's columns (``None`` for a registered device with no merged
    events); ``journal`` replicates the change-journal entries verbatim
    so ``changed_since`` answers identically on every view.
    """

    mac: str
    index: int
    delta: float
    segment: "str | None"
    length: int
    generation: int
    journal: "tuple[tuple[int, float, float], ...]"


@dataclass(frozen=True, slots=True)
class TableDescriptor:
    """Everything needed to attach a read-only table view by name."""

    ap_vocab: tuple[str, ...]
    devices: tuple[DeviceState, ...]
    generation: int
    event_count: int
    max_event_id: int


@dataclass(frozen=True, slots=True)
class TableSync:
    """The owner-side delta between two table generations.

    Applied by :meth:`EventTable.apply_sync` on an attached view;
    ``generation_before`` guards against divergence (a view may only
    apply the sync whose base generation it is exactly at).
    """

    generation_before: int
    generation: int
    event_count: int
    max_event_id: int
    ap_vocab: tuple[str, ...]
    devices: tuple[DeviceState, ...]


class EventTable:
    """The events table E, indexed by device and time.

    Build either incrementally with :meth:`append` + :meth:`freeze`, or in
    one shot with :meth:`from_events`.  Appends after freezing re-open the
    table; reads on a dirty (unfrozen) table freeze it lazily.

    The table is built for *online* growth: each :meth:`freeze` merges the
    pending rows of a device into its already-sorted log with binary
    searches (O(new·log new + old) per changed device, no re-sort of the
    full log) and advances a generation counter.  Consumers that cache
    work derived from the table — trained models, aggregates, snapshots —
    poll :meth:`changed_since` with the last generation they observed to
    learn exactly which devices changed and over which time interval.

    Args:
        store: Column storage backend; defaults to a private
            :class:`~repro.events.columns.HeapColumnStore`.  Pass a
            :class:`~repro.events.columns.SharedMemoryColumnStore` (or
            call :meth:`migrate_store` later) to publish the hot columns
            as named segments other processes attach to.  The table owns
            the store from here: :meth:`close` tears it down.
    """

    def __init__(self, store: "ColumnStore | None" = None) -> None:
        self.registry = DeviceRegistry()
        self._store = store if store is not None else HeapColumnStore()
        self._ap_vocab: list[str] = []
        self._ap_index: dict[str, int] = {}
        self._pending: dict[str, list[tuple[float, int]]] = {}
        self._logs: dict[str, DeviceLog] = {}
        self._dirty = False
        self._event_count = 0
        self._max_event_id = -1
        self._generation = 0
        self._device_generation: dict[str, int] = {}
        # Per-device change journal: (generation, min time, max time) of
        # every merged pending batch, consumed by changed_since().
        # Bounded: once a device's journal exceeds _CHANGE_JOURNAL_CAP
        # entries, the oldest half is coalesced into one entry (union
        # interval, newest merged generation) — changed_since may then
        # over-approximate for very old generations, never under.
        self._changes: dict[str, list[tuple[int, float, float]]] = {}
        # Cold-data eviction plumbing (see enable_eviction): the memory
        # manager charged per log, and its LRU entries keyed by mac.
        self._memory: "MemoryManager | None" = None
        self._memory_entries: "dict[str, _Entry]" = {}

    #: Entries kept per device before the journal's oldest half is
    #: coalesced; bounds memory and changed_since cost on long-running
    #: streaming sessions.
    _CHANGE_JOURNAL_CAP = 64

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[ConnectivityEvent],
                    store: "ColumnStore | None" = None) -> "EventTable":
        """Build a frozen table from an iterable of events."""
        table = cls(store=store)
        for event in events:
            table.append(event)
        table.freeze()
        return table

    def append(self, event: ConnectivityEvent) -> None:
        """Ingest one event (any order; sorting happens at freeze)."""
        if self._store.is_attached:
            raise EventTableError(
                "attached table views are read-only; the owner merges "
                "and publishes deltas via sync_payload/apply_sync")
        self.registry.intern(event.mac)
        ap_idx = self._ap_index.get(event.ap_id)
        if ap_idx is None:
            ap_idx = len(self._ap_vocab)
            self._ap_vocab.append(event.ap_id)
            self._ap_index[event.ap_id] = ap_idx
        self._pending.setdefault(event.mac, []).append((event.timestamp, ap_idx))
        self._event_count += 1
        if event.event_id > self._max_event_id:
            self._max_event_id = event.event_id
        self._dirty = True

    def extend(self, events: Iterable[ConnectivityEvent]) -> None:
        """Ingest many events."""
        for event in events:
            self.append(event)

    def freeze(self) -> None:
        """Merge pending events into the per-device numpy logs.

        Incremental by construction: only devices with pending rows are
        touched, the pending rows are stable-sorted among themselves and
        merged into the (already sorted) existing log via
        ``np.searchsorted`` + ``np.insert`` — no concatenate-and-resort
        of the full log.  The result is bitwise identical to a stable
        argsort over ``old + new``: ``side="right"`` places timestamp
        ties after the existing rows, and equal insertion positions keep
        the pending rows' relative order.

        Every freeze that merges rows advances :attr:`generation` and
        records, per device, the time interval the new rows cover (the
        change feed read by :meth:`changed_since`).
        """
        if not self._dirty:
            return
        self._generation += 1
        for mac, rows in self._pending.items():
            old = self._logs.get(mac)
            times = np.array([t for t, _ in rows], dtype=np.float64)
            aps = np.array([a for _, a in rows], dtype=np.int32)
            if times.size > 1:
                order = np.argsort(times, kind="stable")
                times, aps = times[order], aps[order]
            if old is not None and len(old):
                positions = np.searchsorted(old.times, times, side="right")
                merged_times = np.insert(old.times, positions, times)
                merged_aps = np.insert(old.ap_indices, positions, aps)
            else:
                merged_times, merged_aps = times, aps
            device = self.registry.get(mac)
            self._set_log(mac, device, merged_times, merged_aps,
                          replaced=old)
            self._device_generation[mac] = self._generation
            journal = self._changes.setdefault(mac, [])
            journal.append(
                (self._generation, float(times[0]), float(times[-1])))
            if len(journal) > self._CHANGE_JOURNAL_CAP:
                half = len(journal) // 2
                merged = (journal[half - 1][0],
                          min(entry[1] for entry in journal[:half]),
                          max(entry[2] for entry in journal[:half]))
                self._changes[mac] = [merged, *journal[half:]]
        self._pending.clear()
        self._dirty = False

    def _set_log(self, mac: str, device: Device, times: np.ndarray,
                 aps: np.ndarray, replaced: "DeviceLog | None") -> None:
        """Install one device's merged columns through the store."""
        handle = self._store.put(mac, times, aps)
        self._logs[mac] = DeviceLog(device, ap_vocab=self._ap_vocab,
                                    columns=handle)
        if replaced is not None:
            self._store.release(replaced.columns)
        if self._memory is not None:
            self._register_log(mac, handle)

    # ------------------------------------------------------------------
    # Column storage / memory
    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        """The column storage backend behind the per-device logs."""
        return self._store

    def migrate_store(self, store: ColumnStore) -> None:
        """Move every log's columns into ``store`` (in place).

        One copy per log at migration time; afterwards the old store is
        closed and new freezes publish into the new backend.  Used to
        lift a heap-built table into shared memory before a cluster
        forks/spawns process shards.  Disallowed once cold-data eviction
        is enabled (the eviction entries are keyed to the old handles).
        """
        if self._memory is not None:
            raise EventTableError(
                "cannot migrate the column store after eviction was "
                "enabled; migrate first, then enable_eviction")
        self._ensure_frozen()
        for mac, log in list(self._logs.items()):
            if log.is_empty:
                continue
            times, aps = log.columns.arrays()
            handle = store.put(mac, times, aps)
            self._logs[mac] = DeviceLog(log.device,
                                        ap_vocab=self._ap_vocab,
                                        columns=handle)
        old = self._store
        self._store = store
        old.close()

    def close(self) -> None:
        """Release the column store (segments, spill files).  Terminal:
        log reads after close are undefined.  Idempotent."""
        self._store.close()

    def column_bytes(self) -> int:
        """Total logical bytes of the hot columns across all logs."""
        self._ensure_frozen()
        return sum(log.columns.nbytes for log in self._logs.values())

    def memory_stats(self) -> dict:
        """Store accounting plus table-level sizes (for benchmarks)."""
        self._ensure_frozen()
        out = self._store.stats()
        out["devices"] = len(self.registry)
        out["events"] = self._event_count
        return out

    def enable_eviction(self, manager) -> bool:
        """Let ``manager`` spill cold logs to disk under memory pressure.

        Registers every current (and future) non-empty log with the
        :class:`~repro.system.memory.MemoryManager`: access through
        :meth:`log` touches the LRU entry, eviction spills the columns
        (bitwise-restored on the next read).  Returns False — and does
        nothing — when the store cannot spill (shared-memory segments
        serve attached readers and are never torn down under them) or
        when a different manager already owns the table.  Idempotent
        for the same manager.
        """
        if not self._store.supports_spill:
            return False
        if self._memory is manager:
            return True
        if self._memory is not None:
            return False
        self._ensure_frozen()
        self._memory = manager
        for mac, log in self._logs.items():
            if not log.is_empty:
                self._register_log(mac, log.columns)
        return True

    def _register_log(self, mac: str, handle: ColumnHandle) -> None:
        manager = self._memory
        spill = getattr(handle, "spill", None)  # heap handles only
        if manager is None or spill is None:
            return
        old = self._memory_entries.pop(mac, None)
        if old is not None:
            manager.release(old)
        entry = manager.charge(
            "log", ("log", mac),
            size_fn=lambda h=handle: h.resident_nbytes,
            evictor=spill, persistent=True)
        handle.on_reload = \
            lambda h, e=entry, m=manager: m.touch(e)
        self._memory_entries[mac] = entry

    # ------------------------------------------------------------------
    # Cross-process views (shared-memory stores)
    # ------------------------------------------------------------------
    def describe(self) -> TableDescriptor:
        """Picklable snapshot naming every log's shared segment.

        Requires a shared-memory store (heap arrays have no name to
        attach to).  Devices appear in registry order so an attaching
        process reproduces identical dense device indices.
        """
        self._ensure_frozen()
        if not self._store.is_shared:
            raise EventTableError(
                "describe() needs a shared-memory column store; call "
                "migrate_store(SharedMemoryColumnStore()) first")
        return TableDescriptor(
            ap_vocab=tuple(self._ap_vocab),
            devices=tuple(self._device_state(device)
                          for device in self.registry),
            generation=self._generation,
            event_count=self._event_count,
            max_event_id=self._max_event_id)

    def _device_state(self, device: Device) -> DeviceState:
        log = self._logs.get(device.mac)
        segment = None
        length = 0
        if log is not None and not log.is_empty:
            segment = log.columns.segment_name
            length = len(log)
        return DeviceState(
            mac=device.mac, index=device.index, delta=device.delta,
            segment=segment, length=length,
            generation=self._device_generation.get(device.mac, 0),
            journal=tuple(self._changes.get(device.mac, ())))

    @classmethod
    def attach(cls, descriptor: TableDescriptor) -> "EventTable":
        """Rebuild a read-only table view from a descriptor.

        Logs resolve lazily: each device's segment is mapped on first
        access, so attaching costs nothing until data is read.  The view
        replicates registry order, δ estimates, generation counters and
        the change journal verbatim — every read API (including
        ``changed_since``) answers exactly as the owner's table does.
        """
        store = SharedMemoryColumnStore.attached()
        table = cls(store=store)
        table._ap_vocab = list(descriptor.ap_vocab)
        table._ap_index = {ap: i for i, ap in enumerate(table._ap_vocab)}
        for state in descriptor.devices:
            table._adopt_device(state)
        table._generation = descriptor.generation
        table._event_count = descriptor.event_count
        table._max_event_id = descriptor.max_event_id
        return table

    def _adopt_device(self, state: DeviceState) -> None:
        device = self.registry.intern(state.mac)
        if device.index != state.index:
            raise EventTableError(
                f"device order diverged: {state.mac!r} has index "
                f"{device.index}, owner says {state.index}")
        device.delta = state.delta
        if state.segment is not None:
            old = self._logs.get(state.mac)
            handle = self._store.adopt(state.mac, state.segment,
                                       state.length)
            self._logs[state.mac] = DeviceLog(
                device, ap_vocab=self._ap_vocab, columns=handle)
            if old is not None:
                self._store.release(old.columns)
        if state.generation:
            self._device_generation[state.mac] = state.generation
        if state.journal:
            self._changes[state.mac] = [tuple(entry)
                                        for entry in state.journal]

    def sync_payload(self, since_generation: int) -> TableSync:
        """The delta an attached view needs to advance from a generation.

        Carries, for every device whose log changed after
        ``since_generation``, the *current* segment name, δ estimate and
        full change journal — :meth:`apply_sync` swaps them in wholesale
        so the view lands bitwise on the owner's state regardless of how
        many merges the delta spans.
        """
        self._ensure_frozen()
        if not self._store.is_shared:
            raise EventTableError(
                "sync_payload() needs a shared-memory column store")
        changed = [self.registry.get(mac)
                   for mac, gen in self._device_generation.items()
                   if gen > since_generation]
        changed.sort(key=lambda device: device.index)
        return TableSync(
            generation_before=since_generation,
            generation=self._generation,
            event_count=self._event_count,
            max_event_id=self._max_event_id,
            ap_vocab=tuple(self._ap_vocab),
            devices=tuple(self._device_state(device)
                          for device in changed))

    def apply_sync(self, payload: TableSync) -> None:
        """Advance an attached view to the owner's published state.

        The view must be exactly at ``payload.generation_before``
        (anything else means a missed or replayed sync — fail loudly
        rather than serve silently diverged data).
        """
        if not self._store.is_attached:
            raise EventTableError(
                "apply_sync targets attached table views; the owner "
                "advances through freeze()")
        if self._generation != payload.generation_before:
            raise EventTableError(
                f"sync base mismatch: view at generation "
                f"{self._generation}, payload expects "
                f"{payload.generation_before}")
        if tuple(self._ap_vocab) != \
                payload.ap_vocab[:len(self._ap_vocab)]:
            raise EventTableError("AP vocabulary diverged from owner")
        for ap in payload.ap_vocab[len(self._ap_vocab):]:
            self._ap_index[ap] = len(self._ap_vocab)
            self._ap_vocab.append(ap)
        for state in payload.devices:
            self._adopt_device(state)
        self._generation = payload.generation
        self._event_count = payload.event_count
        self._max_event_id = payload.max_event_id

    # ------------------------------------------------------------------
    # Change feed
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone counter advanced by every freeze that merged rows."""
        return self._generation

    @property
    def max_event_id(self) -> int:
        """Largest event id ever appended (−1 when none was stamped)."""
        return self._max_event_id

    def device_generation(self, mac: str) -> int:
        """Generation at which ``mac``'s log last changed (0 = never)."""
        return self._device_generation.get(mac, 0)

    def changed_since(self, generation: int) -> dict[str, TimeInterval]:
        """Devices whose logs changed after ``generation``.

        Returns, per changed MAC, a :class:`TimeInterval` whose start/end
        are the earliest/latest timestamps merged since that generation —
        the key consumers use for interval-scoped cache invalidation
        (note ``end`` equals the latest merged timestamp itself; callers
        widen by their validity slack).  Pending rows are frozen first so
        the feed always reflects the current table.

        The journal behind the feed is bounded (old entries coalesce),
        so a query against a generation older than the oldest surviving
        entry may return a *wider* interval than strictly changed —
        over-invalidation, never staleness.
        """
        self._ensure_frozen()
        out: dict[str, TimeInterval] = {}
        for mac, entries in self._changes.items():
            lo, hi = np.inf, -np.inf
            for gen, start, end in entries:
                if gen > generation:
                    lo, hi = min(lo, start), max(hi, end)
            if lo <= hi:
                out[mac] = TimeInterval(lo, hi)
        return out

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _ensure_frozen(self) -> None:
        if self._dirty:
            self.freeze()

    def __len__(self) -> int:
        return self._event_count

    @property
    def device_count(self) -> int:
        return len(self.registry)

    @property
    def ap_ids(self) -> tuple[str, ...]:
        """All AP ids observed, in first-seen order."""
        return tuple(self._ap_vocab)

    def macs(self) -> list[str]:
        """All device MACs observed."""
        return self.registry.macs()

    def log(self, mac: str) -> DeviceLog:
        """The chronologically sorted log of one device (E(d))."""
        self._ensure_frozen()
        if mac not in self.registry:
            raise UnknownDeviceError(f"device {mac!r} never observed")
        device_log = self._logs.get(mac)
        if device_log is None:
            device = self.registry.get(mac)
            device_log = DeviceLog(device,
                                   np.empty(0, dtype=np.float64),
                                   np.empty(0, dtype=np.int32),
                                   self._ap_vocab)
            self._logs[mac] = device_log
        elif self._memory is not None:
            entry = self._memory_entries.get(mac)
            if entry is not None:
                self._memory.touch(entry)
        return device_log

    def events_of(self, mac: str,
                  interval: "TimeInterval | None" = None
                  ) -> list[ConnectivityEvent]:
        """Materialized events of a device, optionally clipped to a window."""
        device_log = self.log(mac)
        if interval is None:
            return list(device_log.events())
        times, aps = device_log.slice_interval(interval)
        return [ConnectivityEvent(timestamp=float(t), mac=mac,
                                  ap_id=self._ap_vocab[int(a)])
                for t, a in zip(times, aps)]

    def span(self) -> TimeInterval:
        """Smallest interval containing every event in the table."""
        self._ensure_frozen()
        lo, hi = np.inf, -np.inf
        for device_log in self._logs.values():
            if len(device_log):
                lo = min(lo, float(device_log.times[0]))
                hi = max(hi, float(device_log.times[-1]))
        if lo > hi:
            raise EmptyHistoryError("event table contains no events")
        return TimeInterval(lo, hi + 1e-9)

    def devices_active_in(self, interval: TimeInterval) -> list[str]:
        """MACs with at least one event inside ``interval``."""
        self._ensure_frozen()
        return [mac for mac, device_log in self._logs.items()
                if device_log.count_in(interval) > 0]

    def restrict(self, interval: TimeInterval) -> "EventTable":
        """A new table containing only events inside ``interval`` (E_T).

        Built by slicing each :class:`DeviceLog`'s numpy arrays directly
        — no :class:`ConnectivityEvent` objects are materialized and no
        re-sort happens (each slice of a sorted log is sorted).  Every
        registered device is carried over with its delta estimate, even
        devices with no surviving events (their validity periods were
        estimated from the full history and remain meaningful).  The AP
        vocabulary is rebuilt in first-surviving-event order, matching
        what appending the sliced events one by one would produce.  The
        clipped table always uses a private heap store.
        """
        self._ensure_frozen()
        clipped = EventTable()
        ap_remap = np.full(len(self._ap_vocab), -1, dtype=np.int64)
        for mac in self.macs():
            device = clipped.registry.intern(mac)
            device.delta = self.registry.get(mac).delta
            log = self._logs.get(mac)
            if log is None or log.is_empty:
                continue
            times, aps = log.slice_interval(interval)
            if times.size == 0:
                continue
            # Intern this device's surviving APs in first-seen order.
            first_seen = aps[np.sort(np.unique(aps, return_index=True)[1])]
            for old_index in first_seen:
                if ap_remap[old_index] < 0:
                    ap_id = self._ap_vocab[int(old_index)]
                    ap_remap[old_index] = len(clipped._ap_vocab)
                    clipped._ap_index[ap_id] = len(clipped._ap_vocab)
                    clipped._ap_vocab.append(ap_id)
            handle = clipped._store.put(mac, times.copy(),
                                        ap_remap[aps].astype(np.int32))
            clipped._logs[mac] = DeviceLog(
                device, ap_vocab=clipped._ap_vocab, columns=handle)
            clipped._event_count += int(times.size)
        return clipped
