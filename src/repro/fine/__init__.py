"""Fine-grained localization: room disambiguation (paper §4).

Given the coarse answer — a region gx — pick the room r ∈ R(gx) with the
highest posterior probability, combining:

* **room affinity** α(d, r, t): a metadata prior over preferred / public /
  private candidate rooms;
* **device affinity** α(D): the fraction of co-occurring connectivity
  events among a device set, mined from the historical log;
* **group affinity** α(D, r, t) (Eq. 1): device affinity × each member's
  conditional probability of being in r given the intersecting rooms.

Two inference variants are provided: I-FINE (conditional independence
across neighbors, Eq. 3, with possible-world min/max/expected bounds per
Theorems 1–3 and the loosened early-stop conditions) and D-FINE (neighbor
clusters treated as units, Eq. 6).

Array core and the dict boundary
--------------------------------

The numeric pipeline runs end to end on dense numpy arrays over the
building's interned room codes (:class:`repro.space.RoomIndex`):

* ``RoomAffinityModel.affinity_vector(_at)`` returns α(d, ·) as a
  float64 vector aligned to the candidate-room tuple;
* ``GroupAffinityModel.group_affinities(members, rooms)`` computes R_is
  membership, the device affinity, and every member's renormalized
  alpha in **one pass**, yielding α(D, r, t) for all candidate rooms at
  once;
* :class:`~repro.fine.worlds.RoomPosterior` holds log-scores as one
  float64 array with vectorized ``observe_array`` /
  ``posterior_array`` / ``bounds`` / ``bounds_pair`` / ``top_two``;
* neighbor affinity caps flow through as NaN-filled vectors aligned
  with the (re)ordered neighbor list (see
  ``CachingEngine.prepare_neighbors``).

The **dict boundary contract**: everything callers consume keeps its
string-keyed mapping form — ``FineResult.posterior``, ``edge_weights``,
``RoomAffinityModel.affinities(_at)``, ``RoomPosterior.observe`` /
``posterior``, and ``GroupAffinityModel.group_affinity`` are thin
adapters over the array core, so the CLI, eval harness, and storage
layers are untouched by the representation.  Batch and sequential paths
share the same core, keeping their answers bitwise identical.  The
pre-vectorization scalar implementation is retained in
:mod:`repro.fine.reference` as the property-suite oracle and the
tracked benchmark baseline (``benchmarks/test_bench_fine_core.py``).
"""

from repro.fine.affinity import (
    DeviceAffinityIndex,
    GroupAffinityModel,
    RoomAffinityModel,
    RoomAffinityWeights,
)
from repro.fine.neighbors import NeighborDevice, NeighborIndex, find_neighbors
from repro.fine.time_dependent import (
    TimeDependentRoomAffinityModel,
    TimeWindowPreference,
)
from repro.fine.worlds import PosteriorBounds, RoomPosterior
from repro.fine.localizer import (
    FineLocalizer,
    FineMode,
    FineResult,
    FineSharedState,
)

__all__ = [
    "DeviceAffinityIndex",
    "FineLocalizer",
    "FineMode",
    "FineResult",
    "FineSharedState",
    "GroupAffinityModel",
    "NeighborDevice",
    "NeighborIndex",
    "PosteriorBounds",
    "RoomAffinityModel",
    "RoomAffinityWeights",
    "RoomPosterior",
    "TimeDependentRoomAffinityModel",
    "TimeWindowPreference",
    "find_neighbors",
]
