"""Fine-grained localization: room disambiguation (paper §4).

Given the coarse answer — a region gx — pick the room r ∈ R(gx) with the
highest posterior probability, combining:

* **room affinity** α(d, r, t): a metadata prior over preferred / public /
  private candidate rooms;
* **device affinity** α(D): the fraction of co-occurring connectivity
  events among a device set, mined from the historical log;
* **group affinity** α(D, r, t) (Eq. 1): device affinity × each member's
  conditional probability of being in r given the intersecting rooms.

Two inference variants are provided: I-FINE (conditional independence
across neighbors, Eq. 3, with possible-world min/max/expected bounds per
Theorems 1–3 and the loosened early-stop conditions) and D-FINE (neighbor
clusters treated as units, Eq. 6).
"""

from repro.fine.affinity import (
    DeviceAffinityIndex,
    GroupAffinityModel,
    RoomAffinityModel,
    RoomAffinityWeights,
)
from repro.fine.neighbors import NeighborDevice, NeighborIndex, find_neighbors
from repro.fine.time_dependent import (
    TimeDependentRoomAffinityModel,
    TimeWindowPreference,
)
from repro.fine.worlds import PosteriorBounds, RoomPosterior
from repro.fine.localizer import (
    FineLocalizer,
    FineMode,
    FineResult,
    FineSharedState,
)

__all__ = [
    "DeviceAffinityIndex",
    "FineLocalizer",
    "FineMode",
    "FineResult",
    "FineSharedState",
    "GroupAffinityModel",
    "NeighborDevice",
    "NeighborIndex",
    "PosteriorBounds",
    "RoomAffinityModel",
    "RoomAffinityWeights",
    "RoomPosterior",
    "TimeDependentRoomAffinityModel",
    "TimeWindowPreference",
    "find_neighbors",
]
