"""Algorithm 2: the iterative fine-grained localization loop (paper §4.2).

Processes neighbor devices one at a time, folding each one's group
affinities into the posterior over candidate rooms, and stops early when
the loosened conditions hold for the top-2 rooms:

1. ``minP(ra | D̄n) >= expP(rb | D̄n)``, or
2. ``expP(ra | D̄n) >= maxP(rb | D̄n)``.

I-FINE treats neighbors as conditionally independent (Eq. 3).  D-FINE
groups the processed neighbors into clusters of mutually affine devices
and treats each cluster as one unit (Eq. 6); its loop additionally stops
once every remaining cluster has zero group affinity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import LocalizationError
from repro.fine.affinity import (
    DeviceAffinityIndex,
    GroupAffinityModel,
    RoomAffinityModel,
)
from repro.fine.neighbors import NeighborDevice, find_neighbors
from repro.fine.worlds import RoomPosterior
from repro.events.table import EventTable
from repro.space.building import Building


class FineMode(enum.Enum):
    """Inference variant: independent (I-FINE) or dependent (D-FINE)."""

    INDEPENDENT = "I-FINE"
    DEPENDENT = "D-FINE"


@dataclass(frozen=True, slots=True)
class FineResult:
    """Answer of the fine-grained localizer.

    Attributes:
        mac: Queried device.
        timestamp: Query time.
        room_id: The selected room (argmax posterior).
        posterior: Full posterior over candidate rooms.
        neighbors_total: Neighbors available.
        neighbors_processed: Neighbors actually folded in before stopping.
        stopped_early: Whether a stop condition fired before exhausting
            the neighbor set.
        edge_weights: Local-affinity-graph edge weight per processed
            neighbor — w(e_ab, t_q) = mean group affinity over the
            candidate rooms (consumed by the caching engine of §5).
    """

    mac: str
    timestamp: float
    room_id: str
    posterior: dict[str, float]
    neighbors_total: int
    neighbors_processed: int
    stopped_early: bool
    edge_weights: dict[str, float]

    def __str__(self) -> str:
        return (f"{self.mac} @ {self.timestamp:.0f}s → room {self.room_id} "
                f"(p={self.posterior.get(self.room_id, 0.0):.3f}, "
                f"{self.neighbors_processed}/{self.neighbors_total} neighbors)")


@dataclass(slots=True)
class _Cluster:
    """A D-FINE cluster: processed neighbors with mutual device affinity."""

    members: list[NeighborDevice] = field(default_factory=list)

    def macs(self) -> list[str]:
        return [n.mac for n in self.members]


class FineLocalizer:
    """Room disambiguation for one building (Algorithm 2).

    Args:
        building: Space model.
        table: Event table (history for affinity mining).
        room_model: Room-affinity prior model.
        device_index: Device-affinity co-occurrence index.
        mode: I-FINE or D-FINE.
        use_stop_conditions: Disable to process every neighbor (the paper's
            Fig. 11 ablation).
        max_neighbors: Cap on neighbors considered per query.
        affinity_cap: Default co-location-mass bound for unprocessed
            neighbors in the possible-world bounds (see
            :mod:`repro.fine.worlds`).
    """

    def __init__(self, building: Building, table: EventTable,
                 room_model: RoomAffinityModel,
                 device_index: DeviceAffinityIndex,
                 mode: FineMode = FineMode.DEPENDENT,
                 use_stop_conditions: bool = True,
                 max_neighbors: int = 24,
                 affinity_cap: float = 0.1,
                 affinity_noise_floor: float = 0.1) -> None:
        self._building = building
        self._table = table
        self._room_model = room_model
        self._device_index = device_index
        self._group_model = GroupAffinityModel(
            room_model, device_index, building,
            noise_floor=affinity_noise_floor)
        self.mode = mode
        self.use_stop_conditions = use_stop_conditions
        self.max_neighbors = max_neighbors
        self.affinity_cap = affinity_cap

    # ------------------------------------------------------------------
    def locate(self, mac: str, timestamp: float, region_id: int,
               neighbor_order: "Sequence[NeighborDevice] | None" = None,
               neighbor_caps: "dict[str, float] | None" = None) -> FineResult:
        """Pick the room of ``mac`` at ``timestamp`` within region ``gx``.

        Args:
            neighbor_order: Pre-ordered neighbor list (the caching engine
                supplies descending-affinity order); default is discovery
                order.
            neighbor_caps: Optional per-neighbor upper bounds on group
                affinity from the global affinity graph, used to tighten
                the possible-world bounds of unprocessed neighbors.
        """
        candidates = [room.room_id
                      for room in self._building.candidate_rooms(region_id)]
        if not candidates:
            raise LocalizationError(
                f"region g{region_id} has no candidate rooms")

        prior = self._room_model.affinities_at(mac, candidates, timestamp)
        posterior = RoomPosterior(prior, affinity_cap=self.affinity_cap)

        neighbors = list(neighbor_order) if neighbor_order is not None else \
            find_neighbors(self._building, self._table, mac, timestamp,
                           region_id, max_neighbors=self.max_neighbors)
        neighbors = neighbors[: self.max_neighbors]

        edge_weights: dict[str, float] = {}
        if self.mode is FineMode.INDEPENDENT:
            posterior, processed, stopped = self._run_independent(
                mac, posterior, neighbors, neighbor_caps, edge_weights)
        else:
            posterior, processed, stopped = self._run_dependent(
                mac, timestamp, posterior, neighbors, neighbor_caps,
                edge_weights)

        final = posterior.posterior()
        best_room = self._argmax_room(final, mac, timestamp)
        return FineResult(
            mac=mac, timestamp=timestamp, room_id=best_room,
            posterior=final, neighbors_total=len(neighbors),
            neighbors_processed=processed, stopped_early=stopped,
            edge_weights=edge_weights)

    @staticmethod
    def _argmax_room(posterior: dict[str, float], mac: str,
                     timestamp: float) -> str:
        """Argmax with deterministic, query-keyed tie-breaking.

        Devices with no metadata and no co-location evidence end with a
        flat posterior over same-class rooms; breaking ties always toward
        the lexicographically first room would be systematically wrong,
        so ties are broken by a hash of the query instead (uniform across
        queries, reproducible per query).
        """
        best = max(posterior.values())
        tied = sorted(room for room, p in posterior.items()
                      if p >= best - 1e-9)
        if len(tied) == 1:
            return tied[0]
        from repro.util.rng import _fnv1a
        return tied[_fnv1a(f"{mac}|{timestamp:.3f}") % len(tied)]

    # ------------------------------------------------------------------
    def _pair_affinities(self, mac: str, neighbor: NeighborDevice,
                         candidates: Sequence[str]) -> dict[str, float]:
        """α({d_i, d_k}, r, t_q) for every candidate room r."""
        members = [(mac, list(candidates)),
                   (neighbor.mac, list(neighbor.candidate_rooms))]
        return {room: self._group_model.group_affinity(members, room)
                for room in candidates}

    def _caps_for(self, remaining: Sequence[NeighborDevice],
                  neighbor_caps: "dict[str, float] | None") -> list[float]:
        if neighbor_caps is None:
            return [self.affinity_cap] * len(remaining)
        return [min(neighbor_caps.get(n.mac, self.affinity_cap), 1.0 - 1e-6)
                for n in remaining]

    def _stop_satisfied(self, posterior: RoomPosterior,
                        remaining: Sequence[NeighborDevice],
                        neighbor_caps: "dict[str, float] | None") -> bool:
        """The loosened stop conditions over the top-2 rooms."""
        (room_a, _), (room_b, _) = posterior.top_two()
        if not room_b:
            return True  # single candidate: nothing to disambiguate
        caps = self._caps_for(remaining, neighbor_caps)
        bounds_a = posterior.bounds(room_a, len(remaining), caps)
        bounds_b = posterior.bounds(room_b, len(remaining), caps)
        return (bounds_a.minimum >= bounds_b.expected
                or bounds_a.expected >= bounds_b.maximum)

    # ------------------------------------------------------------------
    def _run_independent(self, mac: str, posterior: RoomPosterior,
                         neighbors: Sequence[NeighborDevice],
                         neighbor_caps: "dict[str, float] | None",
                         edge_weights: dict[str, float]
                         ) -> "tuple[RoomPosterior, int, bool]":
        """I-FINE: fold neighbors independently (Eq. 3)."""
        candidates = posterior.rooms
        for index, neighbor in enumerate(neighbors):
            affinities = self._pair_affinities(mac, neighbor, candidates)
            edge_weights[neighbor.mac] = (
                sum(affinities.values()) / len(candidates))
            posterior.observe(affinities)
            remaining = neighbors[index + 1:]
            if (self.use_stop_conditions and remaining
                    and self._stop_satisfied(posterior, remaining,
                                             neighbor_caps)):
                return posterior, index + 1, True
        return posterior, len(neighbors), False

    def _run_dependent(self, mac: str, timestamp: float,
                       posterior: RoomPosterior,
                       neighbors: Sequence[NeighborDevice],
                       neighbor_caps: "dict[str, float] | None",
                       edge_weights: dict[str, float]
                       ) -> "tuple[RoomPosterior, int, bool]":
        """D-FINE: cluster processed neighbors, fold clusters (Eq. 6).

        Clusters are connected components under non-zero pairwise device
        affinity.  Each time a neighbor is processed it joins (or starts)
        a cluster; the posterior is rebuilt from the prior with one factor
        per cluster, whose affinity is α({cluster ∪ d_i}, r, t_q).
        """
        candidates = posterior.rooms
        clusters: list[_Cluster] = []
        processed = 0
        stopped = False
        current = posterior
        for index, neighbor in enumerate(neighbors):
            pair = self._pair_affinities(mac, neighbor, candidates)
            edge_weights[neighbor.mac] = (
                sum(pair.values()) / len(candidates))
            self._assign_to_cluster(clusters, neighbor)
            processed = index + 1
            current = self._posterior_from_clusters(mac, timestamp,
                                                    candidates, clusters)
            remaining = neighbors[index + 1:]
            if not remaining:
                break
            if self.use_stop_conditions:
                if self._all_clusters_zero(mac, clusters, candidates):
                    stopped = True
                    break
                if self._stop_satisfied(current, remaining, neighbor_caps):
                    stopped = True
                    break
        return current, processed, stopped

    def _assign_to_cluster(self, clusters: list[_Cluster],
                           neighbor: NeighborDevice) -> None:
        """Place a neighbor into the cluster graph, merging as needed."""
        touching: list[_Cluster] = []
        for cluster in clusters:
            if any(self._device_index.pairwise(neighbor.mac, member.mac) > 0
                   for member in cluster.members):
                touching.append(cluster)
        if not touching:
            clusters.append(_Cluster(members=[neighbor]))
            return
        primary = touching[0]
        primary.members.append(neighbor)
        for extra in touching[1:]:
            primary.members.extend(extra.members)
            clusters.remove(extra)

    def _cluster_affinities(self, mac: str, cluster: _Cluster,
                            candidates: Sequence[str]) -> dict[str, float]:
        """α({D̄nl ∪ d_i}, r, t_q) for every candidate room."""
        members = [(mac, list(candidates))]
        members.extend((n.mac, list(n.candidate_rooms))
                       for n in cluster.members)
        return {room: self._group_model.group_affinity(members, room)
                for room in candidates}

    def _posterior_from_clusters(self, mac: str, timestamp: float,
                                 candidates: Sequence[str],
                                 clusters: Sequence[_Cluster]
                                 ) -> RoomPosterior:
        """Posterior rebuilt from the prior with one factor per cluster.

        Clusters mutate as neighbors join, so the posterior is rebuilt
        each round rather than folded incrementally.
        """
        prior = self._room_model.affinities_at(mac, list(candidates),
                                               timestamp)
        fresh = RoomPosterior(prior, affinity_cap=self.affinity_cap)
        for cluster in clusters:
            fresh.observe(self._cluster_affinities(mac, cluster,
                                                   fresh.rooms))
        return fresh

    def _all_clusters_zero(self, mac: str, clusters: Sequence[_Cluster],
                           candidates: Sequence[str]) -> bool:
        """D-FINE termination: every cluster's group affinity is zero."""
        for cluster in clusters:
            affs = self._cluster_affinities(mac, cluster, candidates)
            if any(v > 0 for v in affs.values()):
                return False
        return True
