"""Algorithm 2: the iterative fine-grained localization loop (paper §4.2).

Processes neighbor devices one at a time, folding each one's group
affinities into the posterior over candidate rooms, and stops early when
the loosened conditions hold for the top-2 rooms:

1. ``minP(ra | D̄n) >= expP(rb | D̄n)``, or
2. ``expP(ra | D̄n) >= maxP(rb | D̄n)``.

I-FINE treats neighbors as conditionally independent (Eq. 3).  D-FINE
groups the processed neighbors into clusters of mutually affine devices
and treats each cluster as one unit (Eq. 6); its loop additionally stops
once every remaining cluster has zero group affinity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import ClassVar

import numpy as np

from repro.errors import LocalizationError
from repro.fine.affinity import (
    DeviceAffinityIndex,
    GroupAffinityModel,
    RoomAffinityModel,
)
from repro.fine.neighbors import NeighborDevice, find_neighbors
from repro.fine.worlds import RoomPosterior
from repro.events.table import EventTable
from repro.space.building import Building


class FineMode(enum.Enum):
    """Inference variant: independent (I-FINE) or dependent (D-FINE)."""

    INDEPENDENT = "I-FINE"
    DEPENDENT = "D-FINE"


@dataclass(frozen=True, slots=True)
class FineResult:
    """Answer of the fine-grained localizer.

    Attributes:
        mac: Queried device.
        timestamp: Query time.
        room_id: The selected room (argmax posterior).
        posterior: Full posterior over candidate rooms.
        neighbors_total: Neighbors available.
        neighbors_processed: Neighbors actually folded in before stopping.
        stopped_early: Whether a stop condition fired before exhausting
            the neighbor set.
        edge_weights: Local-affinity-graph edge weight per processed
            neighbor — w(e_ab, t_q) = mean group affinity over the
            candidate rooms (consumed by the caching engine of §5).
    """

    mac: str
    timestamp: float
    room_id: str
    posterior: dict[str, float]
    neighbors_total: int
    neighbors_processed: int
    stopped_early: bool
    edge_weights: dict[str, float]

    def __str__(self) -> str:
        return (f"{self.mac} @ {self.timestamp:.0f}s → room {self.room_id} "
                f"(p={self.posterior.get(self.room_id, 0.0):.3f}, "
                f"{self.neighbors_processed}/{self.neighbors_total} neighbors)")


@dataclass(slots=True)
class FineSharedState:
    """Cross-query memo of affinity computations (batch engine, §5+).

    Group affinities are pure functions of the member (mac, candidate
    rooms) tuples — they never depend on the query time — and the room
    prior is a pure function of (mac, candidates, timestamp).  A batch of
    queries revisiting the same device/region combinations (occupancy
    grids, trajectory sampling) therefore reuses these values verbatim.

    All memo values are float64 vectors aligned to the key's
    candidate-room tuple (the array core's native representation); keys
    preserve member *order* so memoized vectors are bitwise identical
    to what the sequential path multiplies out.
    """

    #: The memo-dict attributes of this state — the single list the
    #: trim/reset/fanout plumbing iterates (add new memos here too).
    MEMO_ATTRS: ClassVar[tuple[str, ...]] = (
        "priors", "pair_affinities", "cluster_affinities",
        "room_affinities")

    priors: dict = field(default_factory=dict)
    pair_affinities: dict = field(default_factory=dict)
    cluster_affinities: dict = field(default_factory=dict)
    room_affinities: dict = field(default_factory=dict)

    def stats(self) -> dict[str, int]:
        """Memo sizes (for tests and logging)."""
        return {
            "priors": len(self.priors),
            "pairs": len(self.pair_affinities),
            "clusters": len(self.cluster_affinities),
            "rooms": len(self.room_affinities),
        }

    def drop_device(self, mac: str) -> None:
        """Forget every memo that mentions one device (see drop_devices)."""
        self.drop_devices({mac})

    def drop_devices(self, macs: "set[str]") -> None:
        """Forget every memo mentioning any of the given devices.

        After an ingest changes some logs, any memoized affinity a
        changed device participates in — as the queried device or as a
        neighbor/cluster member — may be stale; memos among unchanged
        devices survive.  One pass per memo dict regardless of how many
        devices changed.  (Priors and room affinities are
        metadata-pure, but they are dropped too: the cost is a cheap
        recompute, and "no memo mentioning a changed device survives"
        is the easier invariant to audit.)

        Each memo is partitioned in one pass — survivors rebuilt into a
        fresh dict — rather than collecting doomed keys and deleting one
        by one.
        """
        if not macs:
            return
        self.priors = {key: value for key, value in self.priors.items()
                       if key[0] not in macs}
        self.room_affinities = {key: value for key, value
                                in self.room_affinities.items()
                                if key[0] not in macs}
        self.pair_affinities = {key: value for key, value
                                in self.pair_affinities.items()
                                if key[0] not in macs and key[2] not in macs}
        self.cluster_affinities = {
            key: value for key, value in self.cluster_affinities.items()
            if key[0] not in macs
            and not any(mac in macs for mac, _ in key[2])}


@dataclass(slots=True)
class _Cluster:
    """A D-FINE cluster: processed neighbors with mutual device affinity."""

    members: list[NeighborDevice] = field(default_factory=list)

    def macs(self) -> list[str]:
        return [n.mac for n in self.members]


class FineLocalizer:
    """Room disambiguation for one building (Algorithm 2).

    Args:
        building: Space model.
        table: Event table (history for affinity mining).
        room_model: Room-affinity prior model.
        device_index: Device-affinity co-occurrence index.
        mode: I-FINE or D-FINE.
        use_stop_conditions: Disable to process every neighbor (the paper's
            Fig. 11 ablation).
        max_neighbors: Cap on neighbors considered per query.
        affinity_cap: Default co-location-mass bound for unprocessed
            neighbors in the possible-world bounds (see
            :mod:`repro.fine.worlds`).
    """

    def __init__(self, building: Building, table: EventTable,
                 room_model: RoomAffinityModel,
                 device_index: DeviceAffinityIndex,
                 mode: FineMode = FineMode.DEPENDENT,
                 use_stop_conditions: bool = True,
                 max_neighbors: int = 24,
                 affinity_cap: float = 0.1,
                 affinity_noise_floor: float = 0.1) -> None:
        self._building = building
        self._table = table
        self._room_model = room_model
        self._device_index = device_index
        self._group_model = GroupAffinityModel(
            room_model, device_index, building,
            noise_floor=affinity_noise_floor)
        self.mode = mode
        self.use_stop_conditions = use_stop_conditions
        self.max_neighbors = max_neighbors
        self.affinity_cap = affinity_cap

    # ------------------------------------------------------------------
    def locate(self, mac: str, timestamp: float, region_id: int,
               neighbor_order: "Sequence[NeighborDevice] | None" = None,
               neighbor_caps:
               "dict[str, float] | np.ndarray | None" = None,
               shared: "FineSharedState | None" = None) -> FineResult:
        """Pick the room of ``mac`` at ``timestamp`` within region ``gx``.

        Args:
            neighbor_order: Pre-ordered neighbor list (the caching engine
                supplies descending-affinity order); default is discovery
                order.
            neighbor_caps: Optional per-neighbor upper bounds on group
                affinity from the global affinity graph, used to tighten
                the possible-world bounds of unprocessed neighbors.
                Either a mapping keyed by neighbor MAC, or a float vector
                aligned with ``neighbor_order`` (NaN = no cached bound),
                as produced by
                :meth:`repro.cache.engine.CachingEngine.prepare_neighbors`.
            shared: Optional batch memo of prior/affinity computations
                (see :class:`FineSharedState`).  Sharing never changes
                the answer — only how often affinities are recomputed.
        """
        candidates = tuple(
            room.room_id
            for room in self._building.candidate_rooms(region_id))
        if not candidates:
            raise LocalizationError(
                f"region g{region_id} has no candidate rooms")

        prior = self._prior_at(mac, candidates, timestamp, shared)
        posterior = RoomPosterior.from_vector(
            candidates, prior, affinity_cap=self.affinity_cap)

        neighbors = list(neighbor_order) if neighbor_order is not None else \
            find_neighbors(self._building, self._table, mac, timestamp,
                           region_id, max_neighbors=self.max_neighbors)
        neighbors = neighbors[: self.max_neighbors]
        caps = self._caps_vector(neighbors, neighbor_caps)

        edge_weights: dict[str, float] = {}
        if self.mode is FineMode.INDEPENDENT:
            posterior, processed, stopped = self._run_independent(
                mac, posterior, neighbors, caps, edge_weights, shared)
        else:
            posterior, processed, stopped = self._run_dependent(
                mac, timestamp, posterior, neighbors, caps, edge_weights,
                shared)

        final = posterior.posterior()
        best_room = self._argmax_room(final, mac, timestamp)
        return FineResult(
            mac=mac, timestamp=timestamp, room_id=best_room,
            posterior=final, neighbors_total=len(neighbors),
            neighbors_processed=processed, stopped_early=stopped,
            edge_weights=edge_weights)

    @staticmethod
    def _argmax_room(posterior: dict[str, float], mac: str,
                     timestamp: float) -> str:
        """Argmax with deterministic, query-keyed tie-breaking.

        Devices with no metadata and no co-location evidence end with a
        flat posterior over same-class rooms; breaking ties always toward
        the lexicographically first room would be systematically wrong,
        so ties are broken by a hash of the query instead (uniform across
        queries, reproducible per query).
        """
        best = max(posterior.values())
        tied = sorted(room for room, p in posterior.items()
                      if p >= best - 1e-9)
        if len(tied) == 1:
            return tied[0]
        from repro.util.rng import _fnv1a
        return tied[_fnv1a(f"{mac}|{timestamp:.3f}") % len(tied)]

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------
    def make_shared_state(self) -> FineSharedState:
        """A fresh affinity memo for one batch of queries."""
        return FineSharedState()

    def locate_many(self, queries: "Sequence[tuple[str, float, int]]",
                    shared: "FineSharedState | None" = None
                    ) -> list[FineResult]:
        """Answer many (mac, timestamp, region_id) queries, sharing
        affinity computations.

        Results are identical to calling :meth:`locate` per query in the
        same order (neighbors are discovered per query, as in the
        sequential path).
        """
        if shared is None:
            shared = self.make_shared_state()
        return [self.locate(mac, timestamp, region_id, shared=shared)
                for mac, timestamp, region_id in queries]

    # ------------------------------------------------------------------
    def _prior_at(self, mac: str, candidates: tuple[str, ...],
                  timestamp: float,
                  shared: "FineSharedState | None") -> np.ndarray:
        """Room-affinity prior vector, memoized per (mac, candidates, t_q)."""
        if shared is None:
            return self._room_model.affinity_vector_at(mac, candidates,
                                                       timestamp)
        key = (mac, candidates, timestamp)
        prior = shared.priors.get(key)
        if prior is None:
            prior = self._room_model.affinity_vector_at(mac, candidates,
                                                        timestamp)
            shared.priors[key] = prior
        return prior

    def _pair_alpha(self, mac: str, neighbor: NeighborDevice,
                    candidates: tuple[str, ...],
                    shared: "FineSharedState | None" = None) -> np.ndarray:
        """α({d_i, d_k}, ·, t_q) aligned to the candidate rooms.

        Group affinity never depends on t_q (device affinity is mined
        over the history window, room affinity over metadata), so the
        batch memo key is purely structural.
        """
        if shared is not None:
            key = (mac, candidates, neighbor.mac, neighbor.candidate_rooms)
            cached = shared.pair_affinities.get(key)
            if cached is not None:
                return cached
        members = [(mac, candidates),
                   (neighbor.mac, neighbor.candidate_rooms)]
        room_cache = shared.room_affinities if shared is not None else None
        alpha = self._group_model.group_affinities(members, candidates,
                                                   room_cache=room_cache)
        if shared is not None:
            shared.pair_affinities[key] = alpha
        return alpha

    def _caps_vector(self, neighbors: Sequence[NeighborDevice],
                     neighbor_caps: "dict[str, float] | np.ndarray | None"
                     ) -> "np.ndarray | None":
        """Per-neighbor cap vector aligned with ``neighbors`` (NaN = use
        the configured default), from either caller representation."""
        if neighbor_caps is None:
            return None
        if isinstance(neighbor_caps, np.ndarray):
            return neighbor_caps[: len(neighbors)]
        return np.array([neighbor_caps.get(n.mac, np.nan)
                         for n in neighbors])

    def _caps_for(self, caps_slice: "np.ndarray | None",
                  remaining: int) -> "np.ndarray | None":
        """Resolved cap vector for the unprocessed suffix."""
        if caps_slice is None:
            return None  # RoomPosterior fills in its default cap
        return np.minimum(
            np.where(np.isnan(caps_slice), self.affinity_cap, caps_slice),
            1.0 - 1e-6)

    def _stop_satisfied(self, posterior: RoomPosterior, remaining: int,
                        caps_slice: "np.ndarray | None") -> bool:
        """The loosened stop conditions over the top-2 rooms."""
        post = posterior.posterior_array()
        (room_a, _), (room_b, _) = posterior.top_two(post)
        if not room_b:
            return True  # single candidate: nothing to disambiguate
        caps = self._caps_for(caps_slice, remaining)
        bounds_a, bounds_b = posterior.bounds_pair(
            room_a, room_b, remaining, caps, posterior_map=post)
        return (bounds_a.minimum >= bounds_b.expected
                or bounds_a.expected >= bounds_b.maximum)

    # ------------------------------------------------------------------
    def _run_independent(self, mac: str, posterior: RoomPosterior,
                         neighbors: Sequence[NeighborDevice],
                         caps: "np.ndarray | None",
                         edge_weights: dict[str, float],
                         shared: "FineSharedState | None" = None
                         ) -> "tuple[RoomPosterior, int, bool]":
        """I-FINE: fold neighbors independently (Eq. 3)."""
        candidates = posterior.rooms
        for index, neighbor in enumerate(neighbors):
            alpha = self._pair_alpha(mac, neighbor, candidates, shared)
            edge_weights[neighbor.mac] = float(
                alpha.sum() / len(candidates))
            posterior.observe_array(alpha)
            remaining = len(neighbors) - index - 1
            if (self.use_stop_conditions and remaining
                    and self._stop_satisfied(
                        posterior, remaining,
                        caps[index + 1:] if caps is not None else None)):
                return posterior, index + 1, True
        return posterior, len(neighbors), False

    def _run_dependent(self, mac: str, timestamp: float,
                       posterior: RoomPosterior,
                       neighbors: Sequence[NeighborDevice],
                       caps: "np.ndarray | None",
                       edge_weights: dict[str, float],
                       shared: "FineSharedState | None" = None
                       ) -> "tuple[RoomPosterior, int, bool]":
        """D-FINE: cluster processed neighbors, fold clusters (Eq. 6).

        Clusters are connected components under non-zero pairwise device
        affinity.  Each time a neighbor is processed it joins (or starts)
        a cluster; the posterior is rebuilt from the prior with one factor
        per cluster, whose affinity is α({cluster ∪ d_i}, r, t_q).
        """
        candidates = posterior.rooms
        clusters: list[_Cluster] = []
        processed = 0
        stopped = False
        current = posterior
        for index, neighbor in enumerate(neighbors):
            alpha = self._pair_alpha(mac, neighbor, candidates, shared)
            edge_weights[neighbor.mac] = float(
                alpha.sum() / len(candidates))
            self._assign_to_cluster(clusters, neighbor)
            processed = index + 1
            current = self._posterior_from_clusters(mac, timestamp,
                                                    candidates, clusters,
                                                    shared)
            remaining = len(neighbors) - index - 1
            if not remaining:
                break
            if self.use_stop_conditions:
                if self._all_clusters_zero(mac, clusters, candidates,
                                           shared):
                    stopped = True
                    break
                if self._stop_satisfied(
                        current, remaining,
                        caps[index + 1:] if caps is not None else None):
                    stopped = True
                    break
        return current, processed, stopped

    def _assign_to_cluster(self, clusters: list[_Cluster],
                           neighbor: NeighborDevice) -> None:
        """Place a neighbor into the cluster graph, merging as needed."""
        touching: list[_Cluster] = []
        for cluster in clusters:
            if any(self._device_index.pairwise(neighbor.mac, member.mac) > 0
                   for member in cluster.members):
                touching.append(cluster)
        if not touching:
            clusters.append(_Cluster(members=[neighbor]))
            return
        primary = touching[0]
        primary.members.append(neighbor)
        for extra in touching[1:]:
            primary.members.extend(extra.members)
            clusters.remove(extra)

    def _cluster_alpha(self, mac: str, cluster: _Cluster,
                       candidates: tuple[str, ...],
                       shared: "FineSharedState | None" = None
                       ) -> np.ndarray:
        """α({D̄nl ∪ d_i}, ·, t_q) aligned to the candidate rooms.

        The memo key preserves the cluster's member *order*: the affinity
        product folds members sequentially, and floating-point products
        are order-sensitive, so two orderings of the same member set must
        not share a cache slot (bitwise equivalence with the sequential
        path would be lost).
        """
        if shared is not None:
            key = (mac, candidates,
                   tuple((n.mac, n.candidate_rooms)
                         for n in cluster.members))
            cached = shared.cluster_affinities.get(key)
            if cached is not None:
                return cached
        members = [(mac, candidates)]
        members.extend((n.mac, n.candidate_rooms)
                       for n in cluster.members)
        room_cache = shared.room_affinities if shared is not None else None
        alpha = self._group_model.group_affinities(members, candidates,
                                                   room_cache=room_cache)
        if shared is not None:
            shared.cluster_affinities[key] = alpha
        return alpha

    def _posterior_from_clusters(self, mac: str, timestamp: float,
                                 candidates: tuple[str, ...],
                                 clusters: Sequence[_Cluster],
                                 shared: "FineSharedState | None" = None
                                 ) -> RoomPosterior:
        """Posterior rebuilt from the prior with one factor per cluster.

        Clusters mutate as neighbors join, so the posterior is rebuilt
        each round rather than folded incrementally.
        """
        prior = self._prior_at(mac, candidates, timestamp, shared)
        fresh = RoomPosterior.from_vector(candidates, prior,
                                          affinity_cap=self.affinity_cap)
        for cluster in clusters:
            fresh.observe_array(self._cluster_alpha(mac, cluster,
                                                    fresh.rooms, shared))
        return fresh

    def _all_clusters_zero(self, mac: str, clusters: Sequence[_Cluster],
                           candidates: tuple[str, ...],
                           shared: "FineSharedState | None" = None) -> bool:
        """D-FINE termination: every cluster's group affinity is zero."""
        for cluster in clusters:
            alpha = self._cluster_alpha(mac, cluster, candidates, shared)
            if bool((alpha > 0).any()):
                return False
        return True
