"""Room posterior with possible-world bounds (paper §4.2, Theorems 1–3).

The iterative localizer maintains, for every candidate room, the posterior
probability given the *processed* neighbors plus min/max/expected bounds
over all *possible worlds* — assignments of rooms to the unprocessed
neighbors.  Theorem 1: the maximum is achieved when every unprocessed
device sits in the candidate room; Theorem 2: the minimum when they all
sit in the strongest other room; Theorem 3: the expectation equals the
posterior on processed devices alone.

The paper derives the posterior (Eq. 3) as a product of per-neighbor
likelihood factors built from group affinities.  Two clarifications we
adopt (documented in DESIGN.md):

* Eq. 2's prior P(r) — the room affinity — is kept, so with zero
  processed neighbors the posterior reduces to the room-affinity argmax
  (the paper's observed no-history behaviour).
* Each neighbor's factor is the **mixture likelihood**

      Λ_k(r) = α_k(r) + (1 − m_k) / |R|

  where α_k(r) is the group affinity of room r, m_k = Σ_r α_k(r) is the
  neighbor's total co-location mass, and |R| is the candidate-set size.
  With probability mass m_k the neighbor is genuinely co-located (in
  rooms proportional to α_k); with the remaining mass it carries no
  information about the queried device, so it contributes a *constant*
  — i.e. it is neutral and cancels in normalization.  A neighbor with
  zero affinities leaves the posterior untouched, while a strong
  companion (large device affinity) pulls the posterior towards the
  shared rooms.  This keeps the monotonicity that Theorems 1–2 rely on:
  Λ_k(r) is increasing in α_k(r) and decreasing in mass placed on other
  rooms.

Posterior: P(r | D̄n) ∝ q(r) · Π_k Λ_k(r), normalized over candidates,
with q the room-affinity prior.  Bounds for one room use the worst/best
factor per unprocessed neighbor under an affinity-mass cap c (cached
estimate or configuration default): max factor c + (1 − c)/|R| (all
mass in r), min factor (1 − c)/|R| (all mass elsewhere), combined
adversarially across rooms before normalization so ``min ≤ exp ≤ max``
always holds.

**Array core.**  The posterior holds its state as dense float64 arrays
aligned to the candidate-room tuple: the log-scores are one vector,
``observe_array`` folds a whole affinity vector in with one
``np.log``, and the bounds evaluate every room's adversarial
renormalization as a single vectorized pass.  The dict-facing methods
(``observe``, ``posterior``, the mapping-keyed ``bounds``) are thin
adapters kept for the public API; hot-path callers (the fine localizer)
stay on the array forms throughout.  The pre-vectorization scalar
implementation survives as
:class:`repro.fine.reference.DictRoomPosterior`, the oracle of the
property suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Numerical floor for log-space accumulation.
_TINY = 1e-12


@dataclass(frozen=True, slots=True)
class PosteriorBounds:
    """Bounds of one room's posterior given unprocessed neighbors.

    Attributes:
        expected: expP(r | D̄n) — equals the current posterior (Theorem 3).
        minimum: minP(r | D̄n) — all unprocessed placed adversarially
            (in the strongest competing room, Theorem 2).
        maximum: maxP(r | D̄n) — all unprocessed placed in r (Theorem 1).
    """

    expected: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if not (self.minimum - 1e-9 <= self.expected <= self.maximum + 1e-9):
            raise ValueError(
                f"inconsistent bounds: min={self.minimum} "
                f"exp={self.expected} max={self.maximum}")


class RoomPosterior:
    """Incremental posterior over candidate rooms (mixture factor model).

    State lives in float64 arrays aligned to ``rooms``; construct from a
    mapping (public API) or :meth:`from_vector` (array hot path).

    Args:
        prior: Room-affinity prior per candidate room (positive values;
            normalized internally).
        affinity_cap: Default upper bound on an unprocessed neighbor's
            group-affinity mass when no cached estimate is available
            (tightens the possible-world bounds).
    """

    def __init__(self, prior: Mapping[str, float],
                 affinity_cap: float = 0.1) -> None:
        if not prior:
            raise ConfigurationError("posterior needs at least one room")
        self._init_arrays(
            tuple(prior.keys()),
            np.fromiter(prior.values(), dtype=np.float64, count=len(prior)),
            affinity_cap)

    @classmethod
    def from_vector(cls, rooms: Sequence[str], prior: np.ndarray,
                    affinity_cap: float = 0.1) -> "RoomPosterior":
        """Construct from a prior vector aligned to ``rooms``."""
        self = cls.__new__(cls)
        self._init_arrays(tuple(rooms),
                          np.asarray(prior, dtype=np.float64),
                          affinity_cap)
        return self

    def _init_arrays(self, rooms: tuple[str, ...], prior: np.ndarray,
                     affinity_cap: float) -> None:
        if not rooms:
            raise ConfigurationError("posterior needs at least one room")
        if len(rooms) != prior.size:
            raise ConfigurationError(
                f"prior vector of size {prior.size} for {len(rooms)} rooms")
        if not 0.0 < affinity_cap < 1.0:
            raise ConfigurationError(
                f"affinity_cap must be in (0, 1), got {affinity_cap}")
        total = float(prior.sum())
        if total <= 0:
            raise ConfigurationError("prior must have positive mass")
        self.rooms = rooms
        self.cap = affinity_cap
        self._pos: dict[str, int] = {r: i for i, r in enumerate(rooms)}
        self._prior_vec = np.maximum(prior / total, _TINY)
        # Unnormalized log score per room; starts at the log prior.
        self._log_score = np.log(self._prior_vec)
        # Lexicographic rank per room (the top-two tie-break key),
        # computed lazily: D-FINE rebuilds a posterior per neighbor and
        # its final fold never ranks rooms.
        self._lex_rank: "np.ndarray | None" = None
        self._processed = 0

    # ------------------------------------------------------------------
    def factor(self, room_id: str,
               affinities: Mapping[str, float]) -> float:
        """Λ_k(r): the mixture likelihood of one neighbor for one room."""
        mass = sum(affinities.values())
        mass = min(mass, 1.0)
        uniform = 1.0 / len(self.rooms)
        return max(affinities.get(room_id, 0.0)
                   + (1.0 - mass) * uniform, _TINY)

    def observe(self, affinities: Mapping[str, float]) -> None:
        """Fold one processed neighbor (or D-FINE cluster) into the score.

        ``affinities[room]`` is α({d_i, d_k}, room, t_q); rooms absent
        from the mapping count as zero affinity.  Dict-facing adapter
        over :meth:`observe_array`; mass contributed by rooms outside
        the candidate set still discounts the uniform remainder, as in
        the scalar model.
        """
        alpha = np.zeros(len(self.rooms), dtype=np.float64)
        for room, value in affinities.items():
            pos = self._pos.get(room)
            if pos is not None:
                alpha[pos] = value
        self.observe_array(alpha, mass=sum(affinities.values()))

    def observe_array(self, alpha: np.ndarray,
                      mass: "float | None" = None) -> None:
        """Fold one neighbor's affinity vector (aligned to ``rooms``) in.

        Args:
            alpha: α(D, r, t_q) per candidate room, aligned to ``rooms``.
            mass: Total co-location mass m_k; defaults to ``alpha.sum()``
                (callers whose mass includes out-of-candidate rooms pass
                it explicitly).
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        if alpha.shape != self._log_score.shape:
            raise ConfigurationError(
                f"affinity vector of size {alpha.size} for "
                f"{len(self.rooms)} rooms")
        if mass is None:
            mass = float(alpha.sum())
        mass = min(mass, 1.0)
        uniform = 1.0 / len(self.rooms)
        factors = np.maximum(alpha + (1.0 - mass) * uniform, _TINY)
        self._log_score += np.log(factors)
        self._processed += 1

    # ------------------------------------------------------------------
    def posterior_array(self) -> np.ndarray:
        """P(r | D̄n) as a vector aligned to ``rooms`` (hot path)."""
        raw = np.exp(self._log_score - self._log_score.max())
        return raw / raw.sum()

    def posterior(self) -> dict[str, float]:
        """P(r | D̄n) per room, normalized over the candidate set."""
        post = self.posterior_array()
        return {room: float(p) for room, p in zip(self.rooms, post)}

    def prior_of(self, room_id: str) -> float:
        """The normalized prior of one room."""
        return float(self._prior_vec[self._pos[room_id]])

    def bounds(self, room_id: str, unprocessed: int,
               affinity_caps: "Sequence[float] | np.ndarray | None" = None
               ) -> PosteriorBounds:
        """Min/expected/max posterior of ``room_id`` (Theorems 1–3).

        Args:
            unprocessed: |Dn \\ D̄n| — neighbors not yet folded in.
            affinity_caps: Optional per-unprocessed-device upper bounds on
                co-location mass (e.g. cached global-graph weights);
                defaults to the model's ``affinity_cap`` for each.

        The normalized bound places every unprocessed neighbor's factor
        at its best (worst) value for ``room_id`` while the competing
        rooms receive their worst (best) values — a conservative envelope
        of every possible world.
        """
        pos = self._pos.get(room_id)
        if pos is None:
            raise ConfigurationError(f"unknown room {room_id!r}")
        self._check_caps(unprocessed, affinity_caps)
        expected = float(self.posterior_array()[pos])
        if unprocessed == 0:
            return PosteriorBounds(expected=expected, minimum=expected,
                                   maximum=expected)
        log_best, log_worst = self._cap_log_bonuses(unprocessed,
                                                    affinity_caps)
        return self._room_bounds(pos, expected, log_best, log_worst)

    @staticmethod
    def _check_caps(unprocessed: int,
                    affinity_caps: "Sequence[float] | np.ndarray | None"
                    ) -> None:
        if affinity_caps is not None and len(affinity_caps) != unprocessed:
            raise ConfigurationError(
                f"got {len(affinity_caps)} caps for {unprocessed} devices")

    def _cap_log_bonuses(self, unprocessed: int,
                         affinity_caps: "Sequence[float] | np.ndarray | None"
                         ) -> "tuple[float, float]":
        """Accumulated (log_best, log_worst) bonuses of the unprocessed.

        The factor bounds depend only on the cap and the candidate-set
        size — not on the room — so the accumulated log-bonuses are two
        scalars shared by every room, computed with one vectorized pass
        over the cap array (this sits on the stop-condition hot path).
        """
        if affinity_caps is None:
            caps = np.full(unprocessed, self.cap, dtype=np.float64)
        else:
            caps = np.asarray(affinity_caps, dtype=np.float64)
        c = np.clip(caps, 0.0, 1.0 - 1e-9)
        uniform = 1.0 / len(self.rooms)
        fmax = np.maximum(c + (1.0 - c) * uniform, _TINY)
        fmin = np.maximum((1.0 - c) * uniform, _TINY)
        return float(np.log(fmax).sum()), float(np.log(fmin).sum())

    def _room_bounds(self, pos: int, expected: float,
                     log_best: float, log_worst: float) -> PosteriorBounds:
        """One room's clamped bounds from the shared log-bonuses."""
        maximum = self._normalized(pos, favoured=True,
                                   log_best=log_best, log_worst=log_worst)
        minimum = self._normalized(pos, favoured=False,
                                   log_best=log_best, log_worst=log_worst)
        return PosteriorBounds(expected=expected,
                               minimum=min(minimum, expected),
                               maximum=max(maximum, expected))

    def bounds_pair(self, room_a: str, room_b: str, unprocessed: int,
                    affinity_caps: "Sequence[float] | np.ndarray | None"
                    = None,
                    posterior_map:
                    "Mapping[str, float] | np.ndarray | None" = None
                    ) -> "tuple[PosteriorBounds, PosteriorBounds]":
        """Bounds of two rooms sharing one cap accumulation (hot path).

        Equivalent to ``(bounds(room_a, ...), bounds(room_b, ...))`` but
        the cap-dependent log-bonuses (room-independent) and the current
        posterior are computed once instead of per room.  The stop
        conditions of Algorithm 2 evaluate exactly this pair each
        iteration.

        Args:
            posterior_map: Optional precomputed posterior — either the
                :meth:`posterior` mapping or the :meth:`posterior_array`
                vector — letting callers that already normalized reuse
                it.
        """
        positions = []
        for room in (room_a, room_b):
            pos = self._pos.get(room)
            if pos is None:
                raise ConfigurationError(f"unknown room {room!r}")
            positions.append(pos)
        self._check_caps(unprocessed, affinity_caps)
        post = self._as_posterior_array(posterior_map)
        pa, pb = positions
        if unprocessed == 0:
            return tuple(  # type: ignore[return-value]
                PosteriorBounds(expected=float(post[pos]),
                                minimum=float(post[pos]),
                                maximum=float(post[pos]))
                for pos in positions)
        log_best, log_worst = self._cap_log_bonuses(unprocessed,
                                                    affinity_caps)
        return (self._room_bounds(pa, float(post[pa]), log_best, log_worst),
                self._room_bounds(pb, float(post[pb]), log_best, log_worst))

    def _as_posterior_array(self, posterior_map:
                            "Mapping[str, float] | np.ndarray | None"
                            ) -> np.ndarray:
        """Normalize the optional precomputed-posterior argument."""
        if posterior_map is None:
            return self.posterior_array()
        if isinstance(posterior_map, np.ndarray):
            return posterior_map
        return np.fromiter((posterior_map[r] for r in self.rooms),
                           dtype=np.float64, count=len(self.rooms))

    def _normalized(self, pos: int, favoured: bool,
                    log_best: float, log_worst: float) -> float:
        """Normalized posterior with adversarial unprocessed factors.

        ``favoured=True`` yields the maximum for the room at ``pos``
        (its factors maximized, every other room minimized);
        ``favoured=False`` yields the minimum (room minimized, others
        maximized).  ``log_best`` and ``log_worst`` are the accumulated
        log-bonuses of the unprocessed neighbors (room-independent, see
        :meth:`bounds`).
        """
        if favoured:
            bonus = np.full(len(self.rooms), log_worst, dtype=np.float64)
            bonus[pos] = log_best
        else:
            bonus = np.full(len(self.rooms), log_best, dtype=np.float64)
            bonus[pos] = log_worst
        scores = self._log_score + bonus
        raw = np.exp(scores - scores.max())
        return float(raw[pos] / raw.sum())

    @property
    def processed_count(self) -> int:
        """Number of neighbors folded in so far."""
        return self._processed

    def top_two(self, posterior_map:
                "Mapping[str, float] | np.ndarray | None" = None
                ) -> "tuple[tuple[str, float], tuple[str, float]]":
        """The two rooms with the highest posterior (room, probability).

        Ties break lexicographically by room id.  With a single candidate
        room, the runner-up is a sentinel with probability 0 so stop
        conditions trivially hold.

        Args:
            posterior_map: Optional precomputed posterior — mapping or
                :meth:`posterior_array` vector (hot-path callers
                normalize once and reuse it).
        """
        post = self._as_posterior_array(posterior_map)
        if len(self.rooms) == 1:
            return (self.rooms[0], float(post[0])), ("", 0.0)
        if self._lex_rank is None:
            self._lex_rank = np.argsort(np.argsort(np.array(self.rooms)))
        order = np.lexsort((self._lex_rank, -post))
        best, runner = int(order[0]), int(order[1])
        return ((self.rooms[best], float(post[best])),
                (self.rooms[runner], float(post[runner])))


#: Backwards-compatible alias (earlier drafts called this PosteriorOdds).
PosteriorOdds = RoomPosterior
