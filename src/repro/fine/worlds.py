"""Room posterior with possible-world bounds (paper §4.2, Theorems 1–3).

The iterative localizer maintains, for every candidate room, the posterior
probability given the *processed* neighbors plus min/max/expected bounds
over all *possible worlds* — assignments of rooms to the unprocessed
neighbors.  Theorem 1: the maximum is achieved when every unprocessed
device sits in the candidate room; Theorem 2: the minimum when they all
sit in the strongest other room; Theorem 3: the expectation equals the
posterior on processed devices alone.

The paper derives the posterior (Eq. 3) as a product of per-neighbor
likelihood factors built from group affinities.  Two clarifications we
adopt (documented in DESIGN.md):

* Eq. 2's prior P(r) — the room affinity — is kept, so with zero
  processed neighbors the posterior reduces to the room-affinity argmax
  (the paper's observed no-history behaviour).
* Each neighbor's factor is the **mixture likelihood**

      Λ_k(r) = α_k(r) + (1 − m_k) / |R|

  where α_k(r) is the group affinity of room r, m_k = Σ_r α_k(r) is the
  neighbor's total co-location mass, and |R| is the candidate-set size.
  With probability mass m_k the neighbor is genuinely co-located (in
  rooms proportional to α_k); with the remaining mass it carries no
  information about the queried device, so it contributes a *constant*
  — i.e. it is neutral and cancels in normalization.  A neighbor with
  zero affinities leaves the posterior untouched, while a strong
  companion (large device affinity) pulls the posterior towards the
  shared rooms.  This keeps the monotonicity that Theorems 1–2 rely on:
  Λ_k(r) is increasing in α_k(r) and decreasing in mass placed on other
  rooms.

Posterior: P(r | D̄n) ∝ q(r) · Π_k Λ_k(r), normalized over candidates,
with q the room-affinity prior.  Bounds for one room use the worst/best
factor per unprocessed neighbor under an affinity-mass cap c (cached
estimate or configuration default): max factor c + (1 − c)/|R| (all
mass in r), min factor (1 − c)/|R| (all mass elsewhere), combined
adversarially across rooms before normalization so ``min ≤ exp ≤ max``
always holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

#: Numerical floor for log-space accumulation.
_TINY = 1e-12


@dataclass(frozen=True, slots=True)
class PosteriorBounds:
    """Bounds of one room's posterior given unprocessed neighbors.

    Attributes:
        expected: expP(r | D̄n) — equals the current posterior (Theorem 3).
        minimum: minP(r | D̄n) — all unprocessed placed adversarially
            (in the strongest competing room, Theorem 2).
        maximum: maxP(r | D̄n) — all unprocessed placed in r (Theorem 1).
    """

    expected: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if not (self.minimum - 1e-9 <= self.expected <= self.maximum + 1e-9):
            raise ValueError(
                f"inconsistent bounds: min={self.minimum} "
                f"exp={self.expected} max={self.maximum}")


class RoomPosterior:
    """Incremental posterior over candidate rooms (mixture factor model).

    Args:
        prior: Room-affinity prior per candidate room (positive values;
            normalized internally).
        affinity_cap: Default upper bound on an unprocessed neighbor's
            group-affinity mass when no cached estimate is available
            (tightens the possible-world bounds).
    """

    def __init__(self, prior: Mapping[str, float],
                 affinity_cap: float = 0.1) -> None:
        if not prior:
            raise ConfigurationError("posterior needs at least one room")
        if not 0.0 < affinity_cap < 1.0:
            raise ConfigurationError(
                f"affinity_cap must be in (0, 1), got {affinity_cap}")
        total = sum(prior.values())
        if total <= 0:
            raise ConfigurationError("prior must have positive mass")
        self.rooms: tuple[str, ...] = tuple(prior.keys())
        self.cap = affinity_cap
        self._prior: dict[str, float] = {r: max(v / total, _TINY)
                                         for r, v in prior.items()}
        # Unnormalized log score per room; starts at the log prior.
        self._log_score: dict[str, float] = {
            r: math.log(p) for r, p in self._prior.items()}
        self._processed = 0

    # ------------------------------------------------------------------
    def factor(self, room_id: str,
               affinities: Mapping[str, float]) -> float:
        """Λ_k(r): the mixture likelihood of one neighbor for one room."""
        mass = sum(affinities.values())
        mass = min(mass, 1.0)
        uniform = 1.0 / len(self.rooms)
        return max(affinities.get(room_id, 0.0)
                   + (1.0 - mass) * uniform, _TINY)

    def observe(self, affinities: Mapping[str, float]) -> None:
        """Fold one processed neighbor (or D-FINE cluster) into the score.

        ``affinities[room]`` is α({d_i, d_k}, room, t_q); rooms absent
        from the mapping count as zero affinity.
        """
        for room in self.rooms:
            self._log_score[room] += math.log(self.factor(room, affinities))
        self._processed += 1

    # ------------------------------------------------------------------
    def posterior(self) -> dict[str, float]:
        """P(r | D̄n) per room, normalized over the candidate set."""
        peak = max(self._log_score.values())
        raw = {r: math.exp(s - peak) for r, s in self._log_score.items()}
        total = sum(raw.values())
        return {r: v / total for r, v in raw.items()}

    def prior_of(self, room_id: str) -> float:
        """The normalized prior of one room."""
        return self._prior[room_id]

    def _factor_bounds(self, cap: float) -> "tuple[float, float]":
        """(min, max) factor one unprocessed neighbor can contribute.

        Room-independent: only the cap and the candidate-set size enter.
        """
        c = min(max(cap, 0.0), 1.0 - 1e-9)
        uniform = 1.0 / len(self.rooms)
        fmax = c + (1.0 - c) * uniform    # all affinity mass in this room
        fmin = (1.0 - c) * uniform        # all affinity mass elsewhere
        return max(fmin, _TINY), max(fmax, _TINY)

    def bounds(self, room_id: str, unprocessed: int,
               affinity_caps: "Sequence[float] | None" = None
               ) -> PosteriorBounds:
        """Min/expected/max posterior of ``room_id`` (Theorems 1–3).

        Args:
            unprocessed: |Dn \\ D̄n| — neighbors not yet folded in.
            affinity_caps: Optional per-unprocessed-device upper bounds on
                co-location mass (e.g. cached global-graph weights);
                defaults to the model's ``affinity_cap`` for each.

        The normalized bound places every unprocessed neighbor's factor
        at its best (worst) value for ``room_id`` while the competing
        rooms receive their worst (best) values — a conservative envelope
        of every possible world.
        """
        if room_id not in self._log_score:
            raise ConfigurationError(f"unknown room {room_id!r}")
        if affinity_caps is not None and len(affinity_caps) != unprocessed:
            raise ConfigurationError(
                f"got {len(affinity_caps)} caps for {unprocessed} devices")
        expected = self.posterior()[room_id]
        if unprocessed == 0:
            return PosteriorBounds(expected=expected, minimum=expected,
                                   maximum=expected)
        log_best, log_worst = self._cap_log_bonuses(unprocessed,
                                                    affinity_caps)
        return self._room_bounds(room_id, expected, log_best, log_worst)

    def _cap_log_bonuses(self, unprocessed: int,
                         affinity_caps: "Sequence[float] | None"
                         ) -> "tuple[float, float]":
        """Accumulated (log_best, log_worst) bonuses of the unprocessed.

        The factor bounds depend only on the cap and the candidate-set
        size — not on the room — so the accumulated log-bonuses are two
        scalars shared by every room (this sits on the stop-condition
        hot path: one pair of logs per cap instead of one per cap*room).
        """
        caps = list(affinity_caps) if affinity_caps is not None \
            else [self.cap] * unprocessed
        log_best = 0.0
        log_worst = 0.0
        for cap in caps:
            fmin, fmax = self._factor_bounds(cap)
            log_best += math.log(fmax)
            log_worst += math.log(fmin)
        return log_best, log_worst

    def _room_bounds(self, room_id: str, expected: float,
                     log_best: float, log_worst: float) -> PosteriorBounds:
        """One room's clamped bounds from the shared log-bonuses."""
        maximum = self._normalized(room_id, favoured=room_id,
                                   log_best=log_best, log_worst=log_worst)
        minimum = self._normalized(room_id, favoured=None,
                                   log_best=log_best, log_worst=log_worst)
        return PosteriorBounds(expected=expected,
                               minimum=min(minimum, expected),
                               maximum=max(maximum, expected))

    def bounds_pair(self, room_a: str, room_b: str, unprocessed: int,
                    affinity_caps: "Sequence[float] | None" = None,
                    posterior_map: "Mapping[str, float] | None" = None
                    ) -> "tuple[PosteriorBounds, PosteriorBounds]":
        """Bounds of two rooms sharing one cap accumulation (hot path).

        Equivalent to ``(bounds(room_a, ...), bounds(room_b, ...))`` but
        the cap-dependent log-bonuses (room-independent) and the current
        posterior are computed once instead of per room.  The stop
        conditions of Algorithm 2 evaluate exactly this pair each
        iteration.

        Args:
            posterior_map: Optional precomputed :meth:`posterior` result,
                letting callers that already normalized reuse it.
        """
        for room in (room_a, room_b):
            if room not in self._log_score:
                raise ConfigurationError(f"unknown room {room!r}")
        if affinity_caps is not None and len(affinity_caps) != unprocessed:
            raise ConfigurationError(
                f"got {len(affinity_caps)} caps for {unprocessed} devices")
        post = posterior_map if posterior_map is not None else \
            self.posterior()
        if unprocessed == 0:
            return tuple(  # type: ignore[return-value]
                PosteriorBounds(expected=post[room], minimum=post[room],
                                maximum=post[room])
                for room in (room_a, room_b))
        log_best, log_worst = self._cap_log_bonuses(unprocessed,
                                                    affinity_caps)
        return (self._room_bounds(room_a, post[room_a], log_best, log_worst),
                self._room_bounds(room_b, post[room_b], log_best, log_worst))

    def _normalized(self, room_id: str, favoured: "str | None",
                    log_best: float, log_worst: float) -> float:
        """Normalized posterior with adversarial unprocessed factors.

        ``favoured=room_id`` yields the maximum for that room (its factors
        maximized, every other room minimized); ``favoured=None`` yields
        the minimum (room minimized, others maximized).  ``log_best`` and
        ``log_worst`` are the accumulated log-bonuses of the unprocessed
        neighbors (room-independent, see :meth:`bounds`).
        """
        scores = {}
        for room in self.rooms:
            bonus = log_best if (
                (favoured is not None and room == favoured)
                or (favoured is None and room != room_id)) \
                else log_worst
            scores[room] = self._log_score[room] + bonus
        peak = max(scores.values())
        raw = {r: math.exp(s - peak) for r, s in scores.items()}
        return raw[room_id] / sum(raw.values())

    @property
    def processed_count(self) -> int:
        """Number of neighbors folded in so far."""
        return self._processed

    def top_two(self, posterior_map: "Mapping[str, float] | None" = None
                ) -> "tuple[tuple[str, float], tuple[str, float]]":
        """The two rooms with the highest posterior (room, probability).

        With a single candidate room, the runner-up is a sentinel with
        probability 0 so stop conditions trivially hold.

        Args:
            posterior_map: Optional precomputed :meth:`posterior` result
                (hot-path callers normalize once and reuse it).
        """
        post = posterior_map if posterior_map is not None else \
            self.posterior()
        ranked = sorted(post.items(), key=lambda kv: (-kv[1], kv[0]))
        if len(ranked) == 1:
            return ranked[0], ("", 0.0)
        return ranked[0], ranked[1]


#: Backwards-compatible alias (earlier drafts called this PosteriorOdds).
PosteriorOdds = RoomPosterior
