"""Neighbor device discovery (paper §4.2).

A device d_k is a *neighbor* of the queried device d_i when (i) it is
online at t_q — some connectivity event of d_k is valid at t_q, placing it
in a region g_y without any cleaning; (ii) it can contribute non-zero
group affinity; and (iii) its region's rooms intersect the candidate set
R(gx).  Neighbors are what fine-grained inference iterates over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.table import EventTable
from repro.events.validity import valid_event_at
from repro.space.building import Building
from repro.util.timeutil import TimeInterval


@dataclass(frozen=True, slots=True)
class NeighborDevice:
    """One neighbor of the queried device at query time.

    Attributes:
        mac: The neighbor's MAC address.
        region_id: The region whose AP the neighbor was connected to at
            t_q (known directly from the valid event — no cleaning needed).
        candidate_rooms: R(gy): rooms the neighbor may be in.
        shared_rooms: R(gx) ∩ R(gy): rooms it shares with the query's
            candidate set — where co-location is possible.
    """

    mac: str
    region_id: int
    candidate_rooms: tuple[str, ...]
    shared_rooms: frozenset[str]


class NeighborIndex:
    """Batch neighbor discovery: one online snapshot per distinct time.

    :func:`find_neighbors` scans every device's log per query.  A batch
    of queries sharing a timestamp (occupancy grids, contact tracing,
    trajectory sampling on a common grid) repeats that scan needlessly —
    the set of online devices and their regions depends only on the
    timestamp.  This index computes the (mac, region) snapshot once per
    distinct timestamp and derives each query's neighbor list from it.

    ``neighbors_for`` returns exactly what :func:`find_neighbors` would
    for the same arguments — same devices, same order, same cap — so the
    batch engine stays bitwise-equivalent to the sequential path.

    Instances live for one batch (``Locater.locate_batch`` creates a
    fresh one per call, unbounded) or across a streaming session — then
    ``max_snapshots`` bounds memory (snapshots are memos: evicting the
    oldest-inserted only costs a recompute) and ingestion must call
    :meth:`invalidate_interval` / :meth:`invalidate_all` so snapshots
    never outlive the validity windows they were computed from.
    """

    def __init__(self, building: Building, table: EventTable,
                 max_snapshots: "int | None" = None) -> None:
        self._building = building
        self._table = table
        self._max_snapshots = max_snapshots
        self._snapshots: dict[float, tuple] = {}
        self._region_rooms: dict[int, tuple[str, ...]] = {}  # repro-lint: disable=RL001  memo of the immutable Building topology, never stale

    @property
    def snapshot_count(self) -> int:
        """Cached snapshots currently held (memory accounting)."""
        return len(self._snapshots)

    def invalidate_all(self) -> int:
        """Drop every cached snapshot; returns how many were dropped."""
        dropped = len(self._snapshots)
        self._snapshots.clear()
        return dropped

    def invalidate_interval(self, interval: TimeInterval,
                            slack: float = 0.0) -> int:
        """Drop snapshots with timestamp in ``[start − slack, end + slack]``.

        After events are merged into ``interval``, a device's validity —
        hence its online status — can only change within δ of the new
        rows (a new row truncates at most its immediate predecessor's
        window, which also lies within δ of it), so callers pass the
        changed device's δ as ``slack``.  If the device's *δ itself*
        changed, validity shifts everywhere and
        :meth:`invalidate_all` must be used instead.  Returns how many
        snapshots were dropped.
        """
        lo, hi = interval.start - slack, interval.end + slack
        stale = [t for t in self._snapshots if lo <= t <= hi]
        for t in stale:
            del self._snapshots[t]
        return len(stale)

    def _candidate_rooms(self, region) -> tuple[str, ...]:
        rooms = self._region_rooms.get(region.region_id)
        if rooms is None:
            rooms = tuple(sorted(region.rooms))
            self._region_rooms[region.region_id] = rooms
        return rooms

    def snapshot(self, timestamp: float) -> tuple:
        """Online devices at ``timestamp`` as ordered (mac, region) pairs."""
        snap = self._snapshots.get(timestamp)
        if snap is None:
            online = []
            for mac in sorted(self._table.macs()):
                log = self._table.log(mac)
                if log.is_empty:
                    continue
                hit = valid_event_at(log, timestamp)
                if hit is None:
                    continue
                online.append((mac, self._building.region_of_ap(hit.ap_id)))
            snap = tuple(online)
            if self._max_snapshots is not None and \
                    len(self._snapshots) >= self._max_snapshots:
                # FIFO eviction (dicts preserve insertion order): a
                # snapshot is a memo, so dropping one only costs a
                # recompute on the next query at that timestamp.
                self._snapshots.pop(next(iter(self._snapshots)))
            self._snapshots[timestamp] = snap
        return snap

    def neighbors_for(self, mac: str, timestamp: float, region_id: int,
                      max_neighbors: "int | None" = None
                      ) -> list[NeighborDevice]:
        """Same contract and result as :func:`find_neighbors`."""
        query_region = self._building.region(region_id)
        neighbors: list[NeighborDevice] = []
        for other, other_region in self.snapshot(timestamp):
            if max_neighbors is not None and len(neighbors) >= max_neighbors:
                break
            if other == mac:
                continue
            shared = query_region.shared_rooms(other_region)
            if not shared:
                continue
            neighbors.append(NeighborDevice(
                mac=other,
                region_id=other_region.region_id,
                candidate_rooms=self._candidate_rooms(other_region),
                shared_rooms=shared,
            ))
        return neighbors


def find_neighbors(building: Building, table: EventTable, mac: str,
                   timestamp: float, region_id: int,
                   max_neighbors: "int | None" = None) -> list[NeighborDevice]:
    """All neighbors of ``mac`` at ``timestamp`` given its region ``gx``.

    Scans devices with an event valid at t_q (online devices).  Order is
    deterministic (by MAC); the caching engine re-orders by affinity.

    Args:
        max_neighbors: Optional cap (the iterative algorithm's early-stop
            usually makes large neighbor sets unnecessary anyway).
    """
    query_region = building.region(region_id)
    neighbors: list[NeighborDevice] = []
    for other in sorted(table.macs()):
        if max_neighbors is not None and len(neighbors) >= max_neighbors:
            break
        if other == mac:
            continue
        log = table.log(other)
        if log.is_empty:
            continue
        hit = valid_event_at(log, timestamp)
        if hit is None:
            continue  # offline at t_q
        other_region = building.region_of_ap(hit.ap_id)
        shared = query_region.shared_rooms(other_region)
        if not shared:
            continue  # no overlap: cannot influence the room choice
        neighbors.append(NeighborDevice(
            mac=other,
            region_id=other_region.region_id,
            candidate_rooms=tuple(sorted(other_region.rooms)),
            shared_rooms=shared,
        ))
    return neighbors
