"""Affinity learning (paper §4.1): room, device, and group affinities."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, UnknownRoomError
from repro.events.table import EventTable
from repro.space.building import Building
from repro.space.metadata import SpaceMetadata
from repro.util.timeutil import TimeInterval
from repro.util.validation import check_probability_vector


@dataclass(frozen=True, slots=True)
class RoomAffinityWeights:
    """The (w^pf, w^pb, w^pr) weight triple of §4.1.

    Constraints (paper): w^pf > w^pb > w^pr and they sum to 1.  The paper
    evaluates C1={.7,.2,.1}, C2={.6,.3,.1} (best), C3={.5,.3,.2},
    C4={.5,.4,.1} in Table 2.
    """

    preferred: float = 0.6
    public: float = 0.3
    private: float = 0.1

    def __post_init__(self) -> None:
        check_probability_vector(
            "room affinity weights",
            (self.preferred, self.public, self.private))
        if not self.preferred > self.public > self.private:
            raise ConfigurationError(
                "room affinity weights must satisfy w_pf > w_pb > w_pr, got "
                f"({self.preferred}, {self.public}, {self.private})")


#: The four weight combinations evaluated in Table 2 of the paper.
TABLE2_COMBINATIONS: dict[str, RoomAffinityWeights] = {
    "C1": RoomAffinityWeights(0.7, 0.2, 0.1),
    "C2": RoomAffinityWeights(0.6, 0.3, 0.1),
    "C3": RoomAffinityWeights(0.5, 0.3, 0.2),
    "C4": RoomAffinityWeights(0.5, 0.4, 0.1),
}


def _class_shares(class_rooms: "Sequence[tuple[float, Sequence[str]]]",
                  candidate_rooms: Sequence[str]) -> np.ndarray:
    """Weight-splitting shared by the static and time-dependent models.

    Each class weight is split uniformly among its rooms; weights of
    empty classes are redistributed proportionally to the remaining
    classes so the vector sums to 1 over the candidate set.
    """
    out = np.zeros(len(candidate_rooms))
    if not len(candidate_rooms):
        return out
    active_weight = sum(w for w, rooms in class_rooms if rooms)
    if active_weight <= 0:
        out[:] = 1.0 / len(candidate_rooms)
        return out
    position = {room: i for i, room in enumerate(candidate_rooms)}
    for weight, rooms in class_rooms:
        if not rooms:
            continue
        share = (weight / active_weight) / len(rooms)
        for room in rooms:
            out[position[room]] = share
    return out


class RoomAffinityModel:
    """Room affinity α(d, r, t): metadata-driven priors over candidates.

    Each weight class is split uniformly among the candidate rooms of that
    class (paper example: three "other private" rooms share w^pr/3 each).
    When a class has no candidates its weight is redistributed
    proportionally to the remaining classes so affinities still sum to 1
    over the candidate set.
    """

    def __init__(self, metadata: SpaceMetadata,
                 weights: RoomAffinityWeights = RoomAffinityWeights()) -> None:
        self._metadata = metadata
        self.weights = weights

    def affinities_at(self, mac: str, candidate_rooms: Sequence[str],
                      timestamp: float) -> dict[str, float]:
        """α(d, r, t): time-aware affinities; the base model ignores ``t``.

        Subclasses (e.g. the time-dependent model of
        :mod:`repro.fine.time_dependent`) override this; dict adapter
        over :meth:`affinity_vector_at` so either representation stays
        consistent.
        """
        return dict(zip(candidate_rooms,
                        map(float, self.affinity_vector_at(
                            mac, candidate_rooms, timestamp))))

    def affinities(self, mac: str, candidate_rooms: Sequence[str]
                   ) -> dict[str, float]:
        """α(d, r) for every candidate room; values sum to 1.

        Room affinity is not data dependent (paper: "we can pre-compute and
        store it"), so callers may cache the result per (device, region).
        """
        return dict(zip(candidate_rooms,
                        map(float,
                            self.affinity_vector(mac, candidate_rooms))))

    def affinity_vector_at(self, mac: str, candidate_rooms: Sequence[str],
                           timestamp: float) -> np.ndarray:
        """α(d, ·, t) aligned to ``candidate_rooms`` (the hot-path form).

        The fine localizer always calls this; the static model ignores
        ``t`` while the time-dependent subclass resolves its schedule.
        """
        del timestamp  # static model: affinity is time-independent
        return self.affinity_vector(mac, candidate_rooms)

    def affinity_vector(self, mac: str, candidate_rooms: Sequence[str]
                        ) -> np.ndarray:
        """α(d, ·) as a float64 vector aligned to ``candidate_rooms``."""
        split = self._metadata.classify_candidates(mac, candidate_rooms)
        class_rooms = (
            (self.weights.preferred, split.preferred),
            (self.weights.public, split.public),
            (self.weights.private, split.private),
        )
        return _class_shares(class_rooms, candidate_rooms)


class DeviceAffinityIndex:
    """Device affinity α(D): co-occurrence mining over the event log.

    For a pair (a, b): the fraction of events in E({a, b}) that have a
    matching event of the other device within the validity period and at
    the same AP (paper §4.1).  Generalizes to larger D by requiring a match
    from *every* other member.  Results are cached per frozenset of MACs —
    the history scan is the expensive part the caching engine of §5 tries
    to avoid repeating.

    Args:
        table: Event table to mine.
        history: Restrict mining to this window (defaults to full span).
        max_events: Cap on per-device events scanned (subsampled evenly if
            above), bounding worst-case cost on chatty devices.
        match_window_cap: Upper bound (seconds) on the temporal matching
            tolerance.  The paper matches within the device's validity
            period δ; with real handsets δ is small (phones probe every
            couple of minutes while active), which keeps incidental
            same-AP matches between unrelated devices rare.  Devices with
            sparse probing would otherwise inflate the window to tens of
            minutes and count mere region-mates as companions, so the
            tolerance is min(δ, cap).
        reuse_cache: Memoize computed affinities across queries.  ``True``
            (default) is the production-sane choice; ``False`` recomputes
            the history scan per request, reproducing the per-query cost
            model of the paper's efficiency experiments (§6.4), where the
            *caching engine* — not a memo table — is what saves work.
    """

    def __init__(self, table: EventTable,
                 history: "TimeInterval | None" = None,
                 max_events: int = 4000,
                 match_window_cap: float = 240.0,
                 reuse_cache: bool = True) -> None:
        self._table = table
        self._history = history
        self._max_events = max_events
        self.match_window_cap = match_window_cap
        self.reuse_cache = reuse_cache
        self._cache: dict[frozenset[str], float] = {}

    def _device_arrays(self, mac: str) -> "tuple[np.ndarray, np.ndarray]":
        log = self._table.log(mac)
        if self._history is not None:
            times, aps = log.slice_interval(self._history)
        else:
            times, aps = log.times, log.ap_indices
        n = times.size
        if n > self._max_events:
            take = np.linspace(0, n - 1, self._max_events).astype(int)
            times, aps = times[take], aps[take]
        return times, aps

    def pairwise(self, mac_a: str, mac_b: str) -> float:
        """α({a, b}) ∈ [0, 1]."""
        return self.group(frozenset((mac_a, mac_b)))

    def group(self, macs: "frozenset[str] | Iterable[str]") -> float:
        """α(D) for a device set of size ≥ 2."""
        key = frozenset(macs)
        if len(key) < 2:
            raise ConfigurationError(
                f"device affinity needs >= 2 devices, got {sorted(key)}")
        if self.reuse_cache:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        value = self._compute_group(sorted(key))
        if self.reuse_cache:
            self._cache[key] = value
        return value

    def _compute_group(self, macs: list[str]) -> float:
        arrays = {mac: self._device_arrays(mac) for mac in macs}
        deltas = {mac: min(self._table.registry.get(mac).delta,
                           self.match_window_cap) for mac in macs}
        total = sum(times.size for times, _ in arrays.values())
        if total == 0:
            return 0.0
        matches = 0
        for mac in macs:
            times, aps = arrays[mac]
            delta = deltas[mac]
            if times.size == 0:
                continue
            ok = np.ones(times.size, dtype=bool)
            for other in macs:
                if other == mac:
                    continue
                ok &= self._has_match(times, aps, arrays[other], delta)
                if not ok.any():
                    break
            matches += int(ok.sum())
        return matches / total

    @staticmethod
    def _has_match(times: np.ndarray, aps: np.ndarray,
                   other: "tuple[np.ndarray, np.ndarray]",
                   delta: float) -> np.ndarray:
        """For each (t, ap), is there an ``other`` event within ±δ at ap?

        Fully vectorized: binary-search every event's [t−δ, t+δ] span in
        the other device's log, concatenate all spans into one flat index
        array, compare APs in a single pass, and reduce each span with
        ``logical_or.reduceat``.  No per-event Python loop — this runs
        once per event per group member on the affinity-mining hot path.
        """
        other_times, other_aps = other
        out = np.zeros(times.size, dtype=bool)
        if other_times.size == 0 or times.size == 0:
            return out
        lo = np.searchsorted(other_times, times - delta, side="left")
        hi = np.searchsorted(other_times, times + delta, side="right")
        counts = hi - lo
        nonempty = counts > 0
        if not nonempty.any():
            return out
        starts = lo[nonempty]
        span_sizes = counts[nonempty]
        offsets = np.cumsum(span_sizes) - span_sizes
        # Flat positions covering every [lo, hi) span back to back.
        flat = (np.arange(int(span_sizes.sum()))
                - np.repeat(offsets, span_sizes)
                + np.repeat(starts, span_sizes))
        hits = other_aps[flat] == np.repeat(aps[nonempty], span_sizes)
        out[nonempty] = np.logical_or.reduceat(hits, offsets)
        return out

    def clear(self) -> None:
        """Drop all cached affinities (e.g. after new data arrives)."""
        self._cache.clear()

    def set_history(self, history: "TimeInterval | None") -> None:
        """Change the mining window and drop every cached affinity."""
        self._history = history
        self.clear()

    def invalidate_devices(self, macs: Iterable[str]) -> int:
        """Drop cached affinities involving any of the given devices.

        An affinity is a pure function of its members' logs and δs, so
        after an ingest only entries mentioning a changed device can be
        stale; pairs/groups among unchanged devices keep their memo.
        Returns how many cache entries were dropped.
        """
        changed = frozenset(macs)
        stale = [key for key in self._cache if key & changed]
        for key in stale:
            del self._cache[key]
        return len(stale)


class GroupAffinityModel:
    """Group affinity α(D, r, t) per Eq. 1 of the paper.

    α(D, r, t) = α(D) · Π_{d ∈ D} P(@(d, r, t) | @(d, R_is, t)) when r lies
    in the intersection R_is of all members' candidate rooms, else 0.  The
    conditional is each member's room affinity renormalized over R_is.

    The core entry point is :meth:`group_affinities`: one vectorized
    pass over the building's interned room codes computing R_is
    membership, the device affinity, and every member's renormalized
    alpha vector, yielding α(D, r, t) for *all* candidate rooms at once.
    The scalar :meth:`group_affinity` is a thin wrapper over it.

    Args:
        noise_floor: Device affinities below this are treated as zero.
            The paper's neighbor definition (§4.2 condition ii) admits
            only devices with genuinely positive group affinity; sporadic
            same-AP coincidences between unrelated devices produce tiny
            positive affinities that would otherwise accumulate across
            many neighbors and swamp the room-affinity prior.
    """

    def __init__(self, room_model: RoomAffinityModel,
                 device_index: DeviceAffinityIndex,
                 building: Building,
                 noise_floor: float = 0.1) -> None:
        if not 0.0 <= noise_floor < 1.0:
            raise ConfigurationError(
                f"noise_floor must be in [0, 1), got {noise_floor}")
        self._rooms = room_model
        self._devices = device_index
        self._building = building
        self._index = building.room_index
        # Reused scratch buffers over the full room vocabulary: member
        # counts for R_is membership, and a scatter target for alphas.
        self._counts = np.zeros(len(self._index), dtype=np.int32)
        self._scatter = np.zeros(len(self._index))
        self.noise_floor = noise_floor

    def intersecting_rooms(self, candidate_sets: Sequence[Iterable[str]]
                           ) -> frozenset[str]:
        """R_is: rooms common to every member's candidate set."""
        sets = [frozenset(c) for c in candidate_sets]
        if not sets:
            return frozenset()
        out = sets[0]
        for s in sets[1:]:
            out &= s
        return out

    def group_affinity(self, members: Sequence[tuple[str, Sequence[str]]],
                       room_id: str,
                       room_cache: "dict | None" = None) -> float:
        """α(D, r, t) for one room (wrapper over :meth:`group_affinities`).

        The paper's worked example: α({d1,d2})=.4, R_is={2065,2069,2099},
        P(d1 in 2065|R_is)=.69, P(d2 in 2065|R_is)=.44 → affinity .12.
        """
        return float(self.group_affinities(members, (room_id,),
                                           room_cache=room_cache)[0])

    def group_affinities(self, members: Sequence[tuple[str, Sequence[str]]],
                         rooms: Sequence[str],
                         room_cache: "dict | None" = None) -> np.ndarray:
        """α(D, r, t) for every room in ``rooms``, in one pass (Eq. 1).

        Membership in R_is is computed by scatter-counting each member's
        interned candidate codes; each member's alpha vector is read (or
        memoized) once and renormalized over R_is with array ops — the
        per-room work the scalar path repeated |rooms| times.

        Args:
            members: (mac, candidate_rooms) pairs, |D| ≥ 2.
            rooms: Output rooms; the result is aligned to this order.
            room_cache: Optional memo of per-member alpha vectors keyed
                by (mac, candidate-rooms tuple).  Room affinity is not
                data dependent (the paper notes it can be pre-computed),
                so evaluating many groups with a shared cache — as the
                batch engine does — computes each member's vector once.
        """
        if len(members) < 2:
            raise ConfigurationError("group affinity needs >= 2 members")
        out = np.zeros(len(rooms))
        if not len(rooms):
            return out
        try:
            out_codes = self._index.encode(tuple(rooms))
        except UnknownRoomError:
            # Rooms outside the building can never be in R_is: affinity
            # 0, matching the scalar model's membership test.  Off the
            # hot path — the localizer only queries building rooms.
            known = [i for i, room in enumerate(rooms)
                     if room in self._index]
            if known:
                out[known] = self.group_affinities(
                    members, tuple(rooms[i] for i in known),
                    room_cache=room_cache)
            return out
        member_codes = [self._index.encode(tuple(cands))
                        for _, cands in members]
        counts = self._counts  # all-zero between calls (see finally)
        for codes in member_codes:
            counts[codes] += 1
        try:
            in_ris = counts[out_codes] == len(members)
            if not in_ris.any():
                return out
            device_affinity = self._devices.group(
                frozenset(mac for mac, _ in members))
            if device_affinity < self.noise_floor:
                return out
            out[in_ris] = device_affinity
            scatter = self._scatter
            for (mac, candidates), codes in zip(members, member_codes):
                alpha = self._member_alpha(mac, candidates, room_cache)
                mass_in_ris = float(
                    alpha[counts[codes] == len(members)].sum())
                if mass_in_ris <= 0:
                    out[:] = 0.0
                    return out
                scatter[codes] = alpha
                out[in_ris] *= scatter[out_codes][in_ris] / mass_in_ris
                scatter[codes] = 0.0
            return out
        finally:
            # Selectively reset only the touched positions; a full
            # counts[:] = 0 would cost O(|building rooms|) per call.
            for codes in member_codes:
                counts[codes] = 0

    def _member_alpha(self, mac: str, candidates: Sequence[str],
                      room_cache: "dict | None") -> np.ndarray:
        """One member's room-affinity vector, memoized when a cache is
        supplied (pure function of (mac, candidates))."""
        if room_cache is None:
            return self._rooms.affinity_vector(mac, candidates)
        key = (mac, tuple(candidates))
        alpha = room_cache.get(key)
        if alpha is None:
            alpha = self._rooms.affinity_vector(mac, candidates)
            room_cache[key] = alpha
        return alpha
