"""Scalar, dict-based reference implementations of the fine numeric core.

The production classes in :mod:`repro.fine.worlds` and
:mod:`repro.fine.affinity` run on dense numpy arrays over interned room
codes.  This module retains the pre-vectorization implementations —
string-keyed dicts, per-room Python loops, scalar ``math.log`` — with
two jobs:

* **oracle** for the property suite
  (``tests/property/test_prop_fine_core.py``): on random priors and
  affinity maps the array core must agree with these within 1e-9, with
  identical argmax and preserved bounds ordering;
* **baseline** for ``benchmarks/test_bench_fine_core.py``, which tracks
  the array core's speedup over this path on a wide candidate set.

Nothing in the production pipeline imports this module.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.fine.worlds import PosteriorBounds

#: Numerical floor for log-space accumulation (matches the array core).
_TINY = 1e-12


class DictRoomPosterior:
    """The pre-vectorization :class:`~repro.fine.worlds.RoomPosterior`.

    Same mixture-factor model and possible-world bounds (paper §4.2,
    Theorems 1–3), computed with per-room dict loops and scalar math.
    """

    def __init__(self, prior: Mapping[str, float],
                 affinity_cap: float = 0.1) -> None:
        if not prior:
            raise ConfigurationError("posterior needs at least one room")
        if not 0.0 < affinity_cap < 1.0:
            raise ConfigurationError(
                f"affinity_cap must be in (0, 1), got {affinity_cap}")
        total = sum(prior.values())
        if total <= 0:
            raise ConfigurationError("prior must have positive mass")
        self.rooms: tuple[str, ...] = tuple(prior.keys())
        self.cap = affinity_cap
        self._prior: dict[str, float] = {r: max(v / total, _TINY)
                                         for r, v in prior.items()}
        self._log_score: dict[str, float] = {
            r: math.log(p) for r, p in self._prior.items()}
        self._processed = 0

    # ------------------------------------------------------------------
    def factor(self, room_id: str,
               affinities: Mapping[str, float]) -> float:
        """Λ_k(r): the mixture likelihood of one neighbor for one room."""
        mass = sum(affinities.values())
        mass = min(mass, 1.0)
        uniform = 1.0 / len(self.rooms)
        return max(affinities.get(room_id, 0.0)
                   + (1.0 - mass) * uniform, _TINY)

    def observe(self, affinities: Mapping[str, float]) -> None:
        """Fold one processed neighbor into the score."""
        for room in self.rooms:
            self._log_score[room] += math.log(self.factor(room, affinities))
        self._processed += 1

    # ------------------------------------------------------------------
    def posterior(self) -> dict[str, float]:
        """P(r | D̄n) per room, normalized over the candidate set."""
        peak = max(self._log_score.values())
        raw = {r: math.exp(s - peak) for r, s in self._log_score.items()}
        total = sum(raw.values())
        return {r: v / total for r, v in raw.items()}

    def _factor_bounds(self, cap: float) -> "tuple[float, float]":
        c = min(max(cap, 0.0), 1.0 - 1e-9)
        uniform = 1.0 / len(self.rooms)
        fmax = c + (1.0 - c) * uniform    # all affinity mass in this room
        fmin = (1.0 - c) * uniform        # all affinity mass elsewhere
        return max(fmin, _TINY), max(fmax, _TINY)

    def bounds(self, room_id: str, unprocessed: int,
               affinity_caps: "Sequence[float] | None" = None
               ) -> PosteriorBounds:
        """Min/expected/max posterior of ``room_id`` (Theorems 1–3)."""
        if room_id not in self._log_score:
            raise ConfigurationError(f"unknown room {room_id!r}")
        if affinity_caps is not None and len(affinity_caps) != unprocessed:
            raise ConfigurationError(
                f"got {len(affinity_caps)} caps for {unprocessed} devices")
        expected = self.posterior()[room_id]
        if unprocessed == 0:
            return PosteriorBounds(expected=expected, minimum=expected,
                                   maximum=expected)
        log_best, log_worst = self._cap_log_bonuses(unprocessed,
                                                    affinity_caps)
        return self._room_bounds(room_id, expected, log_best, log_worst)

    def _cap_log_bonuses(self, unprocessed: int,
                         affinity_caps: "Sequence[float] | None"
                         ) -> "tuple[float, float]":
        caps = list(affinity_caps) if affinity_caps is not None \
            else [self.cap] * unprocessed
        log_best = 0.0
        log_worst = 0.0
        for cap in caps:
            fmin, fmax = self._factor_bounds(cap)
            log_best += math.log(fmax)
            log_worst += math.log(fmin)
        return log_best, log_worst

    def _room_bounds(self, room_id: str, expected: float,
                     log_best: float, log_worst: float) -> PosteriorBounds:
        maximum = self._normalized(room_id, favoured=room_id,
                                   log_best=log_best, log_worst=log_worst)
        minimum = self._normalized(room_id, favoured=None,
                                   log_best=log_best, log_worst=log_worst)
        return PosteriorBounds(expected=expected,
                               minimum=min(minimum, expected),
                               maximum=max(maximum, expected))

    def bounds_pair(self, room_a: str, room_b: str, unprocessed: int,
                    affinity_caps: "Sequence[float] | None" = None,
                    posterior_map: "Mapping[str, float] | None" = None
                    ) -> "tuple[PosteriorBounds, PosteriorBounds]":
        """Bounds of two rooms sharing one cap accumulation."""
        for room in (room_a, room_b):
            if room not in self._log_score:
                raise ConfigurationError(f"unknown room {room!r}")
        if affinity_caps is not None and len(affinity_caps) != unprocessed:
            raise ConfigurationError(
                f"got {len(affinity_caps)} caps for {unprocessed} devices")
        post = posterior_map if posterior_map is not None else \
            self.posterior()
        if unprocessed == 0:
            return tuple(  # type: ignore[return-value]
                PosteriorBounds(expected=post[room], minimum=post[room],
                                maximum=post[room])
                for room in (room_a, room_b))
        log_best, log_worst = self._cap_log_bonuses(unprocessed,
                                                    affinity_caps)
        return (self._room_bounds(room_a, post[room_a], log_best, log_worst),
                self._room_bounds(room_b, post[room_b], log_best, log_worst))

    def _normalized(self, room_id: str, favoured: "str | None",
                    log_best: float, log_worst: float) -> float:
        scores = {}
        for room in self.rooms:
            bonus = log_best if (
                (favoured is not None and room == favoured)
                or (favoured is None and room != room_id)) \
                else log_worst
            scores[room] = self._log_score[room] + bonus
        peak = max(scores.values())
        raw = {r: math.exp(s - peak) for r, s in scores.items()}
        return raw[room_id] / sum(raw.values())

    @property
    def processed_count(self) -> int:
        return self._processed

    def top_two(self, posterior_map: "Mapping[str, float] | None" = None
                ) -> "tuple[tuple[str, float], tuple[str, float]]":
        """The two rooms with the highest posterior (room, probability)."""
        post = posterior_map if posterior_map is not None else \
            self.posterior()
        ranked = sorted(post.items(), key=lambda kv: (-kv[1], kv[0]))
        if len(ranked) == 1:
            return ranked[0], ("", 0.0)
        return ranked[0], ranked[1]


class DictGroupAffinity:
    """The pre-vectorization per-room group-affinity evaluation (Eq. 1).

    One :meth:`group_affinity` call per room, each re-deriving R_is and
    every member's renormalized room affinity — the exact work pattern
    ``GroupAffinityModel.group_affinities`` collapses into one pass.

    Args:
        room_model: Any :class:`~repro.fine.affinity.RoomAffinityModel`
            (only its dict-returning ``affinities`` is used).
        device_index: Device-affinity co-occurrence index.
        noise_floor: Device affinities below this count as zero.
    """

    def __init__(self, room_model, device_index,
                 noise_floor: float = 0.1) -> None:
        self._rooms = room_model
        self._devices = device_index
        self.noise_floor = noise_floor

    def intersecting_rooms(self, candidate_sets: Sequence[Iterable[str]]
                           ) -> frozenset[str]:
        """R_is: rooms common to every member's candidate set."""
        sets = [frozenset(c) for c in candidate_sets]
        if not sets:
            return frozenset()
        out = sets[0]
        for s in sets[1:]:
            out &= s
        return out

    def group_affinity(self, members: Sequence[tuple[str, Sequence[str]]],
                       room_id: str) -> float:
        """α(D, r, t) for members given as (mac, candidate_rooms) pairs."""
        if len(members) < 2:
            raise ConfigurationError("group affinity needs >= 2 members")
        r_is = self.intersecting_rooms([cands for _, cands in members])
        if room_id not in r_is:
            return 0.0
        device_affinity = self._devices.group(
            frozenset(mac for mac, _ in members))
        if device_affinity < self.noise_floor:
            return 0.0
        value = device_affinity
        for mac, candidates in members:
            alphas = self._rooms.affinities(mac, list(candidates))
            mass_in_ris = sum(alphas.get(r, 0.0) for r in r_is)
            if mass_in_ris <= 0:
                return 0.0
            value *= alphas.get(room_id, 0.0) / mass_in_ris
        return value

    def group_affinities(self, members: Sequence[tuple[str, Sequence[str]]],
                         rooms: Sequence[str]) -> list[float]:
        """α(D, r, t) per room via repeated single-room evaluation."""
        return [self.group_affinity(members, room) for room in rooms]
