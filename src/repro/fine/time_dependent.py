"""Time-dependent room affinity (the paper's §4.1 suggested extension).

The paper notes: "preferred rooms could be time dependent (e.g., user is
expected to be in the break room during lunch, while being in office
during other times).  Such a time dependent model would potentially
result in more accurate room level localization if such metadata was
available."  This module implements that model: preferred-room sets that
vary by time-of-day window, falling back to the base metadata outside
any window.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, UnknownRoomError
from repro.fine.affinity import (
    RoomAffinityModel,
    RoomAffinityWeights,
    _class_shares,
)
from repro.space.metadata import SpaceMetadata
from repro.util.timeutil import SECONDS_PER_DAY, seconds_of_day


@dataclass(frozen=True, slots=True)
class TimeWindowPreference:
    """Preferred rooms during one daily time-of-day window.

    Attributes:
        start_second / end_second: Window within the day, half-open, in
            seconds since midnight.  Must not wrap midnight (split such
            schedules into two windows).
        rooms: Preferred rooms during the window.
    """

    start_second: float
    end_second: float
    rooms: frozenset[str]

    def __post_init__(self) -> None:
        if not 0 <= self.start_second < SECONDS_PER_DAY:
            raise ConfigurationError(
                f"window start must be within a day, got {self.start_second}")
        if not self.start_second < self.end_second <= SECONDS_PER_DAY:
            raise ConfigurationError(
                "window must be non-empty, within one day "
                f"(got [{self.start_second}, {self.end_second}))")
        if not self.rooms:
            raise ConfigurationError("window must name at least one room")

    def contains(self, timestamp: float) -> bool:
        """Whether the timestamp's time-of-day falls in this window."""
        second = seconds_of_day(timestamp)
        return self.start_second <= second < self.end_second


class TimeDependentRoomAffinityModel(RoomAffinityModel):
    """Room affinity with per-time-of-day preferred rooms.

    Args:
        metadata: Base metadata (used outside any window and for room
            classification).
        weights: The (w^pf, w^pb, w^pr) triple.
        schedules: Device id → list of time windows; overlapping windows
            are rejected.

    Example: a user whose office is 2061 but who is expected in the
    break room 2002 over lunch::

        model = TimeDependentRoomAffinityModel(metadata, schedules={
            "7fbh": [TimeWindowPreference(hours(12), hours(13),
                                          frozenset({"2002"}))],
        })
        model.affinities_at("7fbh", candidates, timestamp)
    """

    def __init__(self, metadata: SpaceMetadata,
                 weights: RoomAffinityWeights = RoomAffinityWeights(),
                 schedules: "dict[str, Sequence[TimeWindowPreference]] | None"
                 = None) -> None:
        super().__init__(metadata, weights=weights)
        self._metadata_ref = metadata
        self._schedules: dict[str, tuple[TimeWindowPreference, ...]] = {}
        for mac, windows in (schedules or {}).items():
            self.set_schedule(mac, windows)

    def set_schedule(self, mac: str,
                     windows: Iterable[TimeWindowPreference]) -> None:
        """Install (replace) a device's time-of-day preference schedule."""
        ordered = sorted(windows, key=lambda w: w.start_second)
        for a, b in zip(ordered, ordered[1:]):
            if b.start_second < a.end_second:
                raise ConfigurationError(
                    f"overlapping windows for {mac!r}: "
                    f"[{a.start_second},{a.end_second}) and "
                    f"[{b.start_second},{b.end_second})")
        building = self._metadata_ref.building
        for window in ordered:
            for room in window.rooms:
                if room not in building.rooms:
                    raise UnknownRoomError(
                        f"scheduled room {room!r} not in building "
                        f"{building.name!r}")
        self._schedules[mac] = tuple(ordered)

    def active_preferred_rooms(self, mac: str,
                               timestamp: float) -> frozenset[str]:
        """The preferred set in force at ``timestamp``.

        Scheduled windows override the base metadata; outside any window
        the base (static) preferred rooms apply.
        """
        for window in self._schedules.get(mac, ()):
            if window.contains(timestamp):
                return window.rooms
        return self._metadata_ref.preferred_rooms(mac)

    def affinity_vector_at(self, mac: str, candidate_rooms: Sequence[str],
                           timestamp: float) -> np.ndarray:
        """α(d, ·, t) aligned to ``candidate_rooms``.

        Same weight-splitting scheme as the base model, but the preferred
        bucket is the schedule-resolved set for ``timestamp``.  The
        inherited dict-facing ``affinities_at`` adapts this vector.
        """
        if not len(candidate_rooms):
            return np.zeros(0)
        preferred = self.active_preferred_rooms(mac, timestamp)
        building = self._metadata_ref.building
        pf: list[str] = []
        pb: list[str] = []
        pr: list[str] = []
        for room_id in sorted(candidate_rooms):
            room = building.room(room_id)
            if room_id in preferred:
                pf.append(room_id)
            elif room.is_public:
                pb.append(room_id)
            else:
                pr.append(room_id)
        class_rooms = (
            (self.weights.preferred, pf),
            (self.weights.public, pb),
            (self.weights.private, pr),
        )
        return _class_shares(class_rooms, candidate_rooms)
