"""Exception hierarchy for the LOCATER reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SpaceModelError(ReproError):
    """The space model (building / region / room graph) is malformed."""


class UnknownRoomError(SpaceModelError):
    """A room id was referenced that the building does not contain."""


class UnknownRegionError(SpaceModelError):
    """A region / access-point id was referenced that does not exist."""


class UnknownDeviceError(ReproError):
    """A device (MAC address) was referenced that the table has never seen."""


class EventTableError(ReproError):
    """The connectivity event table was used inconsistently."""


class EmptyHistoryError(EventTableError):
    """An operation required historical events but none were available."""


class LocalizationError(ReproError):
    """A localization query could not be answered."""


class TrainingError(ReproError):
    """A model could not be trained (e.g. degenerate labels or features)."""


class SimulationError(ReproError):
    """The synthetic data generator was configured inconsistently."""


class StorageError(ReproError):
    """The storage engine failed or was used after being closed."""


class GatewayError(ReproError):
    """The async serving gateway failed or was misused."""


class GatewayClosedError(GatewayError):
    """A query or ingest reached a gateway after ``close()``.

    Also set on the futures of queries still queued when the gateway
    shut down, so no caller awaits forever.
    """


class GatewayOverloadedError(GatewayError):
    """Admission control shed this query: the pending queue is full.

    The typed load-shedding signal — past saturation the gateway
    rejects immediately with a bounded queue instead of growing latency
    without bound.  Carries the observed ``depth`` and the configured
    ``limit`` so callers (and load generators) can report backpressure;
    cooperative clients should ``await gateway.ready()`` and retry.
    """

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"gateway overloaded: {depth} queries pending "
            f"(max_pending={limit}); retry after backpressure clears")
        self.depth = depth
        self.limit = limit


class ClusterError(ReproError):
    """A sharded cluster failed: a shard call raised, or a worker died."""


class ShardUnavailableError(ClusterError):
    """A shard worker is dead or unreachable (pipe EOF, broken pipe).

    Carries ``shard_id`` so supervision can target recovery at the one
    failed shard instead of restarting the whole cluster.
    """

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class ShardTimeoutError(ClusterError):
    """A shard call exceeded the configured timeout (worker hung).

    A timed-out pipe is desynchronized — the late reply would be read as
    the answer to the *next* call — so the shard is marked dead and must
    be restarted before it can serve again.
    """

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class ShardQuarantinedError(ClusterError):
    """A shard exhausted its restart budget and its devices are offline.

    Raised (under ``RecoveryPolicy(degraded="error")``) when a query
    routes to a quarantined shard; the remaining shards keep serving
    their devices bitwise-unchanged.
    """

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class ClusterCallError(ClusterError):
    """One or more shards failed during a fan-out call.

    Aggregates *every* failed shard (not just the first) and carries the
    partial results so supervision can retry only the failed slice:

    * ``shard_ids`` — the shard ids the call targeted, in dispatch order.
    * ``results`` — one slot per targeted shard, aligned with
      ``shard_ids``; ``None`` where that shard failed.
    * ``failures`` — mapping of shard id to the exception it raised.
    """

    def __init__(self, method: str, shard_ids: "list[int]",
                 results: "list[object]",
                 failures: "dict[int, Exception]") -> None:
        failed = ", ".join(
            f"shard {shard_id}: {failures[shard_id]}"
            for shard_id in sorted(failures))
        super().__init__(
            f"{len(failures)} shard(s) failed during {method!r} — {failed}")
        self.method = method
        self.shard_ids = shard_ids
        self.results = results
        self.failures = failures
