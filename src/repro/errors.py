"""Exception hierarchy for the LOCATER reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SpaceModelError(ReproError):
    """The space model (building / region / room graph) is malformed."""


class UnknownRoomError(SpaceModelError):
    """A room id was referenced that the building does not contain."""


class UnknownRegionError(SpaceModelError):
    """A region / access-point id was referenced that does not exist."""


class UnknownDeviceError(ReproError):
    """A device (MAC address) was referenced that the table has never seen."""


class EventTableError(ReproError):
    """The connectivity event table was used inconsistently."""


class EmptyHistoryError(EventTableError):
    """An operation required historical events but none were available."""


class LocalizationError(ReproError):
    """A localization query could not be answered."""


class TrainingError(ReproError):
    """A model could not be trained (e.g. degenerate labels or features)."""


class SimulationError(ReproError):
    """The synthetic data generator was configured inconsistently."""


class StorageError(ReproError):
    """The storage engine failed or was used after being closed."""


class ClusterError(ReproError):
    """A sharded cluster failed: a shard call raised, or a worker died."""
