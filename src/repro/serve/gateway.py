"""Admission-controlled micro-batching gateway over Locater / the cluster.

Architecture (one box per concern)::

    locate(mac, t) ──► admission ──► lane queue ──► window ──► executor
      coroutine        (bounded       (one per       (max_wait /   off-ramp
                        pending,       shard, routed   max_batch)   (thread
                        typed shed)    by ShardRouter)              pool)

* **Admission control** — a global bound on queries admitted but not
  yet answered.  Past it, :meth:`AsyncGateway.locate` raises
  :class:`~repro.errors.GatewayOverloadedError` *immediately* (bounded
  queue depth, typed rejection) instead of queueing into unbounded
  latency; cooperative clients ``await gateway.ready()`` for the
  backpressure signal to clear.
* **Lanes** — one submission queue per shard, routed by the cluster's
  :meth:`~repro.cluster.sharded.ShardedLocater.shard_of` (a lone
  ``Locater`` is one lane).  Each lane's worker coroutine gathers a
  window — up to ``max_wait`` seconds from pickup or ``max_batch``
  queries, whichever first — and executes it as one planner batch via
  :meth:`~repro.cluster.sharded.ShardedLocater.locate_slice`, so lanes
  never wait on each other's shards.
* **The executor off-ramp** — coroutines only enqueue, coordinate and
  resolve futures; every blocking step (planner-batch dispatch, ingest
  merges) runs on a thread pool via ``loop.run_in_executor``.  Lint
  rule RL007 enforces this for the whole package.
* **Warm state** — the gateway owns a persistent batch state (PR 3's
  streaming machinery: a :class:`~repro.system.streaming.StreamingSession`
  for a lone backend, :meth:`make_batch_state` for an in-process
  cluster; process clusters keep state worker-side), so neighbor
  snapshots, affinity memos and §5 cache counters survive across
  windows exactly as they do across a streaming session's bursts.
* **Ingest serialization** — :meth:`AsyncGateway.ingest` acquires every
  lane's lock, so it runs strictly *between* windows: no window ever
  straddles an invalidation, and queued queries are re-routed before
  lanes resume (affinity routers re-key devices at ingest boundaries).

Equivalence contract — the repo's core invariant, extended to the
concurrent world: any interleaving of concurrent gateway calls returns
bitwise the answers (and storage side effects, and summed §5 cache
counters) of the same queries run through plain ``locate_batch``.
Concretely:

* With answers pure functions of the table (caching off, no storage),
  *any* schedule of gateway calls equals one big ``locate_batch`` of
  the same queries — window boundaries can't matter, which is what the
  planner's arrival-order invariance (``tests/property/
  test_prop_planner_order.py``) guarantees per window.
* With warm state in play (caching, storage), equality is per realized
  schedule: enable ``journal=True`` and the gateway records every
  executed window and ingest tick in serialization order; replaying
  the journal through plain ``locate_batch`` calls on an identically
  built system reproduces every answer, storage write and cache
  counter bitwise (``tests/integration/test_gateway_equivalence.py``).

Nothing here touches answer *values*: the gateway decides only which
queries share a planner batch, never how any query is answered.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.cluster.sharded import ShardedLocater
from repro.errors import (
    ConfigurationError,
    GatewayClosedError,
    GatewayOverloadedError,
)
from repro.events.event import ConnectivityEvent
from repro.system.locater import Locater, LocationAnswer
from repro.system.planner import DEFAULT_BUCKET_SECONDS
from repro.system.query import LocationQuery
from repro.system.streaming import MAX_SNAPSHOTS, StreamingSession

#: Lane-queue sentinel: the worker drains up to it, then exits.
_CLOSE = object()


@dataclass(frozen=True, slots=True)
class WindowRecord:
    """One executed batching window, in lane-serialization order.

    ``answers[i]`` is exactly what the caller of ``queries[i]``
    received — the journal is the realized schedule the equivalence
    suite replays through plain ``locate_batch``.
    """

    lane: int
    queries: tuple[LocationQuery, ...]
    answers: tuple[LocationAnswer, ...]


@dataclass(frozen=True, slots=True)
class IngestRecord:
    """One ingest tick: the (unstamped) events, in serialization order.

    Replays re-ingest these through an identical engine, which stamps
    the same ids — the journal needs no post-stamp state.
    """

    count: int
    events: tuple[ConnectivityEvent, ...]


@dataclass(frozen=True, slots=True)
class GatewayStats:
    """Serving counters (admission, coalescing, backpressure).

    Attributes:
        submitted: Queries admitted past admission control.
        completed: Queries answered successfully.
        failed: Queries whose window raised (the exception propagated
            to every caller in the window).
        shed: Queries rejected with ``GatewayOverloadedError``.
        windows: Planner batches executed.
        ingests: Ingest ticks serialized through the gateway.
        pending: Queries currently admitted but unanswered.
        pending_peak: High-water mark of ``pending`` — bounded by
            ``max_pending`` whenever admission control is on.
        coalesced_max: Largest window executed.
    """

    submitted: int
    completed: int
    failed: int
    shed: int
    windows: int
    ingests: int
    pending: int
    pending_peak: int
    coalesced_max: int

    @property
    def coalescing(self) -> float:
        """Mean queries per executed window (1.0 = no coalescing)."""
        return self.completed / self.windows if self.windows else 0.0


class _Pending:
    """One admitted query waiting for its window."""

    __slots__ = ("query", "future")

    def __init__(self, query: LocationQuery,
                 future: "asyncio.Future[LocationAnswer]") -> None:
        self.query = query
        self.future = future


class _Lane:
    """One shard's submission queue, window lock and worker state."""

    __slots__ = ("lane_id", "queue", "lock")

    def __init__(self, lane_id: int) -> None:
        self.lane_id = lane_id
        self.queue: "asyncio.Queue[object]" = asyncio.Queue()
        self.lock = asyncio.Lock()


class AsyncGateway:
    """Coalesce concurrent ``locate`` calls into planner batches.

    Args:
        backend: A :class:`~repro.system.locater.Locater` or
            :class:`~repro.cluster.sharded.ShardedLocater`.  The caller
            keeps ownership — closing the gateway never closes the
            backend.
        max_wait: Seconds a lane worker waits (from window pickup) for
            more queries before executing; ``0`` executes whatever is
            queued the moment the worker is free (coalescing still
            happens under load, with no timed latency floor).
        max_batch: Queries per window; a full window executes without
            waiting out ``max_wait``.  ``max_batch=1`` disables
            coalescing — the benchmark's per-query baseline.
        max_pending: Admission bound on queries admitted but
            unanswered; past it ``locate`` sheds with
            :class:`~repro.errors.GatewayOverloadedError`.
        bucket_seconds: Planner bucket width for every window.
        journal: Record every executed window and ingest tick (see
            :class:`WindowRecord`).  Off by default — the journal grows
            without bound and exists for equivalence proofs and replay
            debugging, not production serving.

    Construction is cheap and synchronous; the event-loop resources
    (lanes, workers, thread pool, warm state) are created by
    :meth:`start`, implicitly on first use, or by ``async with``.

    With a supervised cluster (``recovery=``) the gateway serializes
    shard dispatch globally — the supervisor's recovery bookkeeping is
    single-threaded — trading cross-lane parallelism for fault
    tolerance; unsupervised clusters dispatch lanes concurrently.
    """

    def __init__(self, backend: "Locater | ShardedLocater", *,
                 max_wait: float = 0.002, max_batch: int = 64,
                 max_pending: int = 1024,
                 bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                 journal: bool = False) -> None:
        if max_wait < 0:
            raise ConfigurationError(
                f"max_wait must be >= 0, got {max_wait}")
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}")
        self._backend = backend
        self._cluster = backend if isinstance(backend, ShardedLocater) \
            else None
        self._max_wait = max_wait
        self._max_batch = max_batch
        self._max_pending = max_pending
        self._bucket_seconds = bucket_seconds
        self._journal: "list[WindowRecord | IngestRecord] | None" = \
            [] if journal else None
        self._lane_count = backend.shard_count \
            if self._cluster is not None else 1
        self._session: "StreamingSession | None" = None
        self._state = None
        self._lanes: list[_Lane] = []
        self._workers: list[asyncio.Task] = []
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._pool: "ThreadPoolExecutor | None" = None
        self._ready_event: "asyncio.Event | None" = None
        self._dispatch_lock: "threading.Lock | None" = None
        self._started = False
        self._closed = False
        self._pending = 0
        self._pending_peak = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._windows = 0
        self._ingests = 0
        self._coalesced_max = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncGateway":
        """Bind to the running loop and start the lane workers.

        Idempotent; contains no awaits, so concurrent first calls
        cannot double-start.  :meth:`locate` and :meth:`ingest` call it
        implicitly.
        """
        if self._closed:
            raise GatewayClosedError("gateway is closed")
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._lanes = [_Lane(lane_id) for lane_id in
                       range(self._lane_count)]
        self._pool = ThreadPoolExecutor(
            max_workers=self._lane_count, thread_name_prefix="gateway")
        if self._cluster is None:
            # PR 3's streaming machinery owns the warm state: the
            # session's persistent BatchState survives across windows
            # and is pruned/swapped by Locater.on_ingest on every tick.
            self._session = StreamingSession(
                self._backend, bucket_seconds=self._bucket_seconds)
        elif self._cluster.executor.in_process:
            # Cluster counterpart: the cluster prunes this state on its
            # own ingest fan-out (it holds a weak reference).  Process
            # clusters keep warm state worker-side instead — their
            # shards substitute their own sessions' states.
            self._state = self._cluster.make_batch_state(
                max_snapshots=MAX_SNAPSHOTS)
        if self._cluster is not None and \
                self._cluster.supervisor is not None:
            self._dispatch_lock = threading.Lock()
        self._ready_event = asyncio.Event()
        self._ready_event.set()
        self._workers = [
            self._loop.create_task(self._lane_worker(lane),
                                   name=f"gateway-lane-{lane.lane_id}")
            for lane in self._lanes]
        self._started = True
        return self

    async def close(self) -> None:
        """Drain the lanes, stop the workers, release the warm state.

        Queries already admitted are served; anything still queued when
        the workers exit (possible only when close races an ingest's
        re-routing) fails with :class:`~repro.errors.GatewayClosedError`
        rather than hanging its caller.  Idempotent.  The backend stays
        open — the caller owns it.
        """
        if self._closed:
            return
        self._closed = True
        if self._started:
            for lane in self._lanes:
                lane.queue.put_nowait(_CLOSE)
            await asyncio.gather(*self._workers)
            for lane in self._lanes:
                while True:
                    try:
                        item = lane.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is _CLOSE:
                        continue
                    assert isinstance(item, _Pending)
                    if not item.future.done():
                        item.future.set_exception(GatewayClosedError(
                            "gateway closed before this query was "
                            "served"))
                    self._release(1)
            self._pool.shutdown(wait=True)
        if self._session is not None:
            self._session.close()
        if self._ready_event is not None:
            self._ready_event.set()  # wake waiters into the closed error

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def locate(self, mac: str,
                     timestamp: float) -> LocationAnswer:
        """Answer one query; it shares whatever window it lands in."""
        return await self.locate_query(
            LocationQuery(mac=mac, timestamp=timestamp))

    async def locate_query(self, query: LocationQuery) -> LocationAnswer:
        """Admit, route and await one explicit query."""
        await self.start()
        if self._pending >= self._max_pending:
            self._shed += 1
            raise GatewayOverloadedError(self._pending, self._max_pending)
        self._pending += 1
        self._submitted += 1
        self._pending_peak = max(self._pending_peak, self._pending)
        if self._pending >= self._max_pending:
            self._ready_event.clear()
        future: "asyncio.Future[LocationAnswer]" = \
            self._loop.create_future()
        self._lanes[self._lane_of(query)].queue.put_nowait(
            _Pending(query, future))
        return await future

    async def ingest(self, events: Iterable[ConnectivityEvent]):
        """Merge new events, serialized against every in-flight window.

        Acquires all lane locks (in lane order — workers hold only
        their own, so this cannot deadlock), runs the backend's ingest
        off the loop, re-routes queued queries whose devices an
        affinity router re-keyed, and releases the lanes.  Returns the
        backend's ingest report.
        """
        await self.start()
        events = list(events)
        for lane in self._lanes:
            await lane.lock.acquire()
        try:
            report = await self._loop.run_in_executor(
                self._pool, self._ingest_sync, events)
            self._ingests += 1
            if self._journal is not None:
                self._journal.append(IngestRecord(
                    count=len(events), events=tuple(events)))
            if self._lane_count > 1:
                self._reroute_queued()
        finally:
            for lane in reversed(self._lanes):
                lane.lock.release()
        return report

    async def ready(self) -> None:
        """Backpressure signal: block until admission is open again.

        The cooperative alternative to catch-and-retry on
        ``GatewayOverloadedError`` — returns as soon as pending depth
        drops below ``max_pending``.
        """
        await self.start()
        await self._ready_event.wait()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> "Locater | ShardedLocater":
        """The serving system behind the gateway."""
        return self._backend

    @property
    def lane_count(self) -> int:
        """Submission lanes (the backend's shard count; 1 when lone)."""
        return self._lane_count

    @property
    def pending(self) -> int:
        """Queries admitted but not yet answered (the queue depth)."""
        return self._pending

    @property
    def overloaded(self) -> bool:
        """Whether admission is currently shedding."""
        return self._pending >= self._max_pending

    @property
    def journal(self) -> "tuple[WindowRecord | IngestRecord, ...]":
        """The realized schedule (requires ``journal=True``)."""
        if self._journal is None:
            raise ConfigurationError(
                "journaling is off; construct the gateway with "
                "journal=True to record the realized schedule")
        return tuple(self._journal)

    def stats(self) -> GatewayStats:
        """Current serving counters."""
        return GatewayStats(
            submitted=self._submitted, completed=self._completed,
            failed=self._failed, shed=self._shed, windows=self._windows,
            ingests=self._ingests, pending=self._pending,
            pending_peak=self._pending_peak,
            coalesced_max=self._coalesced_max)

    # ------------------------------------------------------------------
    # Lane machinery (event-loop side)
    # ------------------------------------------------------------------
    def _lane_of(self, query: LocationQuery) -> int:
        if self._cluster is None:
            return 0
        return self._cluster.shard_of(query.mac)

    async def _lane_worker(self, lane: _Lane) -> None:
        """Gather windows from one lane's queue and execute them."""
        closing = False
        while not closing:
            item = await lane.queue.get()
            if item is _CLOSE:
                break
            batch = [item]
            closing = await self._gather(lane, batch)
            await self._run_window(lane, batch)

    async def _gather(self, lane: _Lane, batch: list) -> bool:
        """Fill ``batch`` up to max_batch/max_wait; True when closing."""
        if self._max_wait > 0:
            deadline = self._loop.time() + self._max_wait
            while len(batch) < self._max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    return False
                try:
                    item = await asyncio.wait_for(lane.queue.get(),
                                                  remaining)
                except asyncio.TimeoutError:
                    return False
                if item is _CLOSE:
                    return True
                batch.append(item)
            return False
        while len(batch) < self._max_batch:
            try:
                item = lane.queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is _CLOSE:
                return True
            batch.append(item)
        return False

    async def _run_window(self, lane: _Lane, items: list) -> None:
        """Execute one window under the lane lock and resolve futures."""
        async with lane.lock:
            # Re-check routing under the lock: an ingest (which held
            # every lane lock) may have re-keyed devices between
            # submission and execution; strays go to their new owner's
            # lane so per-shard storage namespaces and cache state stay
            # exact.  Routing cannot change while we hold this lock.
            if self._lane_count > 1:
                items = self._bounce_strays(lane, items)
                if not items:
                    return
            queries = [item.query for item in items]
            self._windows += 1
            self._coalesced_max = max(self._coalesced_max, len(items))
            try:
                answers = await self._loop.run_in_executor(
                    self._pool, self._execute_sync, lane.lane_id, queries)
            except Exception as exc:
                self._failed += len(items)
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                self._release(len(items))
                return
            if self._journal is not None:
                self._journal.append(WindowRecord(
                    lane=lane.lane_id, queries=tuple(queries),
                    answers=tuple(answers)))
            self._completed += len(items)
            for item, answer in zip(items, answers):
                if not item.future.done():
                    item.future.set_result(answer)
            self._release(len(items))

    def _bounce_strays(self, lane: _Lane, items: list) -> list:
        """Re-enqueue queries this lane no longer owns; return the rest."""
        kept = []
        for item in items:
            owner = self._lane_of(item.query)
            if owner == lane.lane_id:
                kept.append(item)
            else:
                self._lanes[owner].queue.put_nowait(item)
        return kept

    def _reroute_queued(self) -> None:
        """Re-route every queued query after an ingest re-keyed devices.

        Runs on the loop while every lane lock is held, so no worker is
        mid-window; order within a lane is preserved, moved items append
        to their new lane.
        """
        moved: list[_Pending] = []
        for lane in self._lanes:
            kept: list[object] = []
            while True:
                try:
                    item = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _CLOSE or \
                        self._lane_of(item.query) == lane.lane_id:
                    kept.append(item)
                else:
                    moved.append(item)
            for item in kept:
                lane.queue.put_nowait(item)
        for item in moved:
            self._lanes[self._lane_of(item.query)].queue.put_nowait(item)

    def _release(self, count: int) -> None:
        self._pending -= count
        if self._pending < self._max_pending and \
                self._ready_event is not None:
            self._ready_event.set()

    # ------------------------------------------------------------------
    # Blocking side (runs on the thread pool, never on the loop)
    # ------------------------------------------------------------------
    def _execute_sync(self, lane_id: int,
                      queries: list[LocationQuery]
                      ) -> list[LocationAnswer]:
        if self._dispatch_lock is not None:
            with self._dispatch_lock:
                return self._dispatch(lane_id, queries)
        return self._dispatch(lane_id, queries)

    def _dispatch(self, lane_id: int,
                  queries: list[LocationQuery]) -> list[LocationAnswer]:
        if self._cluster is not None:
            return self._cluster.locate_slice(
                lane_id, queries, bucket_seconds=self._bucket_seconds,
                state=self._state)
        return self._session.query(queries)

    def _ingest_sync(self, events: list[ConnectivityEvent]):
        if self._dispatch_lock is not None:
            with self._dispatch_lock:
                return self._ingest_backend(events)
        return self._ingest_backend(events)

    def _ingest_backend(self, events: list[ConnectivityEvent]):
        if self._cluster is not None:
            return self._cluster.ingest(events)
        return self._session.ingest(events)
