"""The async serving layer: concurrent queries in, planner batches out.

Single-node LOCATER answers batches; the cluster layer shards them; this
package turns *concurrency itself* into batches.  An
:class:`AsyncGateway` accepts single ``await gateway.locate(mac, t)``
coroutine calls, coalesces everything that arrives within a short
batching window into the (device, time-bucket) planner batches the batch
engine executes ~2.5x faster than per-query dispatch, and runs them off
the event loop — per shard, so one slow shard never stalls another
lane's windows.  See :class:`repro.serve.gateway.AsyncGateway` for the
architecture and the concurrent bitwise-equivalence contract.
"""

from repro.serve.gateway import (
    AsyncGateway,
    GatewayStats,
    IngestRecord,
    WindowRecord,
)

__all__ = [
    "AsyncGateway",
    "GatewayStats",
    "IngestRecord",
    "WindowRecord",
]
