"""``ShardedLocater``: one query surface over N independent shards.

The cluster replicates the event log to every shard and partitions
*serving ownership* by a :class:`~repro.cluster.router.ShardRouter`:
each device's queries, trained coarse models, cleaned-answer storage
namespace and cache warm state live on exactly one shard.  Replication
is not an implementation shortcut — it is what makes the cluster
*correct*: cleaning couples devices through co-location (neighbor
discovery, device-affinity mining and the population aggregate all read
the whole log), so a shard serving from a partial log would change
answers.  What scales out is everything downstream of the log: model
training, gap-feature extraction, fine-grained inference, caching and
answer storage — the dominant costs.

The serving contract is the repo's strongest invariant, extended to the
cluster: with any deterministic router, any shard count and any
executor, answers are **bitwise identical** to a lone
:class:`~repro.system.locater.Locater` over the same table whenever
answers are pure functions of the table — and, under the
:class:`~repro.cluster.router.ComponentAffinityRouter`, *with the §5
caching engine on as well*: the global affinity graph couples devices
only within connected components of the potential co-presence graph,
so co-locating whole components makes each shard's cache perform the
same edge reads and writes, in the same order, as the lone system
(aggregated cache counters included).  When components merge at an
ingest boundary, the cluster migrates the re-keyed devices' recorded
edges and clears their stale namespaced answers (see
:meth:`ShardedLocater._migrate_moved`).  The equivalence suite in
``tests/integration/test_cluster_equivalence.py`` enforces all of this
on batch and streaming workloads.

The public surface mirrors ``Locater`` (``locate``, ``locate_batch``,
``locate_query``, ``make_batch_state``, ``on_ingest``, ``table``), so
:class:`~repro.system.streaming.StreamingSession`, the CLI, analytics
and the eval runner work unchanged against a cluster; ``ingest`` is the
cluster-native entry point that also works with process shards.
"""

from __future__ import annotations

import contextlib
import weakref
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.cluster.executor import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ShardFactory,
)
from repro.cluster.router import HashRouter, ShardRouter, partition_events
from repro.cluster.shard import Shard
from repro.cluster.supervision import (
    RecoveryEvent,
    RecoveryPolicy,
    ShardSupervisor,
)
from repro.errors import (
    ClusterError,
    ConfigurationError,
    ShardQuarantinedError,
)
from repro.events.columns import SharedMemoryColumnStore
from repro.events.event import ConnectivityEvent
from repro.events.table import EventTable, TableDescriptor
from repro.space.building import Building
from repro.space.metadata import SpaceMetadata
from repro.system.config import LocaterConfig
from repro.system.ingestion import IngestionEngine, IngestReport
from repro.system.locater import (
    BatchState,
    InvalidationSummary,
    Locater,
    LocationAnswer,
)
from repro.system.planner import DEFAULT_BUCKET_SECONDS
from repro.system.query import LocationQuery
from repro.system.storage import StorageEngine
from repro.system.streaming import prune_batch_state


@dataclass(frozen=True, slots=True)
class ClusterCacheStats:
    """Cluster-wide caching counters: per shard and aggregated.

    Attributes:
        per_shard: Each shard's :meth:`CachingEngine.stats
            <repro.cache.engine.CachingEngine.stats>` dict, in shard
            order (None where that shard runs with caching off).
        total: The None-safe sum over the per-shard counters — the
            shard-order-insensitive quantity equivalence checks compare
            against a lone system's ``cache.stats()``; None when every
            shard has caching off.
    """

    per_shard: "tuple[dict[str, int] | None, ...]"
    total: "dict[str, int] | None"

    def __len__(self) -> int:
        return len(self.per_shard)


@dataclass(frozen=True, slots=True)
class ClusterIngestReport:
    """What one :meth:`ShardedLocater.ingest` call changed, per shard.

    Attributes:
        total: The merge-once report over the cluster's authoritative
            table — exactly what a lone system's engine would publish.
        shard_reports: The router's partition of ``total``: per shard,
            the events routed to it and the changed *owned* devices.
            Counts sum to ``total.count``; changed maps union to
            ``total.changed``.
    """

    total: IngestReport
    shard_reports: tuple[IngestReport, ...]

    @property
    def count(self) -> int:
        """Events ingested by this call (all shards)."""
        return self.total.count

    @property
    def generation(self) -> int:
        """Table generation after the merge."""
        return self.total.generation

    @property
    def macs(self) -> frozenset[str]:
        """All devices whose logs changed."""
        return self.total.macs


class _NeighborsFanout:
    """Invalidation hooks over every shard's neighbor index."""

    def __init__(self, states: "Sequence[BatchState]") -> None:
        self._indexes = [s.neighbors for s in states]

    def invalidate_all(self) -> int:
        return sum(index.invalidate_all() for index in self._indexes)

    def invalidate_interval(self, interval, slack: float = 0.0) -> int:
        return sum(index.invalidate_interval(interval, slack=slack)
                   for index in self._indexes)


class ClusterBatchState:
    """Per-shard :class:`BatchState` bundle with a ``BatchState`` surface.

    A :class:`~repro.system.streaming.StreamingSession` holds one of
    these when serving a cluster: ``drop_devices``, the neighbor
    invalidation hooks and ``memo_dicts`` fan out to every shard's
    state, so the session's pruning logic works unchanged.
    """

    def __init__(self, shard_states: "tuple[BatchState, ...]") -> None:
        self.shard_states = shard_states
        self.neighbors = _NeighborsFanout(shard_states)

    def drop_device(self, mac: str) -> None:
        """Forget every memo involving one device, on every shard."""
        self.drop_devices({mac})

    def drop_devices(self, macs: "set[str]") -> None:
        """Forget memos involving the given devices, on every shard."""
        for state in self.shard_states:
            state.drop_devices(macs)

    def memo_dicts(self) -> list[dict]:
        """Every memo dict across every shard (see BatchState.memo_dicts).

        Freshly resolved per call — the drop paths rebind the dicts —
        and flattened per shard, so a trim bound applies to each
        shard's memo individually.
        """
        return [memo for state in self.shard_states
                for memo in state.memo_dicts()]

    def reset(self) -> None:
        """Forget everything — the in-place equivalent of a fresh state.

        Used on full invalidations: every memo dict is emptied and every
        neighbor snapshot dropped, so serving from this state afterwards
        behaves exactly like serving from ``make_batch_state()`` output
        (the snapshot bound survives; it lives on the neighbor indexes).
        """
        for memo in self.memo_dicts():
            memo.clear()
        self.neighbors.invalidate_all()


class _AttachedShardFactory:
    """Picklable shard factory for workers that *attach* the table.

    Instead of closing over the live table (fork-only, one replica per
    worker), it carries a :class:`~repro.events.table.TableDescriptor` —
    segment names, registry order, generations — and each worker maps
    the owner's shared-memory segments read-only.  Picklable and
    self-contained, so it crosses a ``spawn`` boundary too; under
    ``fork`` it still wins by never letting workers privatize column
    pages.  The shard gets a streaming session whose state is advanced
    by :meth:`Shard.apply_table_sync` fan-outs.
    """

    def __init__(self, building: Building, metadata: SpaceMetadata,
                 config: "LocaterConfig | None",
                 descriptor: TableDescriptor) -> None:
        self.building = building
        self.metadata = metadata
        self.config = config
        self.descriptor = descriptor

    def __call__(self, shard_id: int) -> Shard:
        table = EventTable.attach(self.descriptor)
        locater = Locater(self.building, self.metadata, table,
                          config=self.config)
        return Shard(shard_id, locater, engine=IngestionEngine(table))


class ShardedLocater:
    """N-shard cluster with the single-system query surface.

    Args:
        building: Space model (a single building or a merged campus).
        metadata: Per-device preferred-room metadata.
        table: The authoritative event table.  In-process shards share
            this object; process shards inherit a bitwise replica at
            fork time.
        shard_count: Number of shards.
        router: Device → shard assignment (default
            :class:`~repro.cluster.router.HashRouter`).
        executor: Shard placement and call dispatch (default
            :class:`~repro.cluster.executor.SerialShardExecutor`).  The
            cluster owns it from here: ``close`` tears it down.
        config: Pipeline configuration shared by every shard.
        storage: Optional shared backend; shard ``i`` persists its
            answers under namespace ``"shard<i>"`` and its slice of the
            dirty event stream (globally unique ids, stored once).
            Incompatible with process executors, whose shards cannot
            reach the caller's backend.
        shared_memory: Publish the table's hot columns as named
            shared-memory segments (migrating the table's column store
            in place if needed).  Process shard workers then *attach*
            the one physical copy of the log by segment name instead of
            holding a private replica — N shards cost ~1× the table —
            and ingests fan out as cheap segment-name syncs instead of
            per-worker re-merges.  Required for
            ``ProcessShardExecutor(start_method='spawn')``.  The caller
            still owns the table: close it (``table.close()``) after
            the cluster to unlink the segments.
        recovery: Opt into fault tolerance: a
            :class:`~repro.cluster.supervision.RecoveryPolicy` puts a
            :class:`~repro.cluster.supervision.ShardSupervisor` between
            the cluster and the executor, so dead or hung shard workers
            are detected, resurrected deterministically (restart budget
            and backoff per the policy) and — once the budget is
            exhausted — quarantined, degrading only their own devices
            (``policy.degraded``: typed error or parent-side fallback)
            while every other shard keeps serving bitwise-unchanged.
            ``policy.call_timeout`` is applied to a process executor's
            receives.  None (default): failures surface as
            :class:`~repro.errors.ClusterError` exactly as before.

    Example:
        >>> cluster = ShardedLocater(building, metadata, table,
        ...                          shard_count=4,
        ...                          executor=ThreadShardExecutor())
        >>> answers = cluster.locate_batch(queries)
        >>> cluster.ingest(new_events)       # merge once, fan out
        >>> cluster.close()
    """

    def __init__(self, building: Building, metadata: SpaceMetadata,
                 table: EventTable, *, shard_count: int,
                 router: "ShardRouter | None" = None,
                 executor: "ShardExecutor | None" = None,
                 config: "LocaterConfig | None" = None,
                 storage: "StorageEngine | None" = None,
                 shared_memory: bool = False,
                 recovery: "RecoveryPolicy | None" = None) -> None:
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}")
        self._building = building
        self._metadata = metadata
        self._table = table
        self._config = config
        self._router = router if router is not None else HashRouter()
        self._executor = executor if executor is not None \
            else SerialShardExecutor()
        self._shard_count = shard_count
        if not self._executor.in_process and storage is not None:
            raise ConfigurationError(
                "process shards cannot share the caller's storage "
                "backend; use an in-process executor or storage=None")
        self._storage = storage
        self._views = [
            storage.namespace(f"shard{shard_id}") if storage is not None
            else None
            for shard_id in range(shard_count)]
        self._tap = _EventTap(storage)
        self._engine = IngestionEngine(table, storage=self._tap)
        in_process = self._executor.in_process
        views = self._views if in_process else [None] * shard_count
        if shared_memory and not table.store.is_shared:
            table.migrate_store(SharedMemoryColumnStore())
        # Attach mode: process shards map the owner's segments by name
        # (one physical copy) instead of inheriting a fork replica.
        self._attached_shards = (not in_process) and table.store.is_shared
        if getattr(self._executor, "start_method", None) == "spawn" and \
                not self._attached_shards:
            raise ConfigurationError(
                "spawned shard workers cannot inherit the event table; "
                "construct the cluster with shared_memory=True (or a "
                "table on a SharedMemoryColumnStore) so workers attach "
                "by segment name")

        if self._attached_shards:
            factory = _AttachedShardFactory(
                building, metadata, config, table.describe())
        else:
            def factory(shard_id: int) -> Shard:
                # In-process: every shard's Locater reads the shared
                # table.  In a forked worker this closure runs
                # post-fork, so ``table`` is the worker's private
                # copy-on-write replica and the shard gets its own
                # engine + streaming session.  (Closes over plain
                # locals only — a worker must not drag a copy of the
                # cluster object, executor pipes included, across the
                # fork.)
                locater = Locater(building, metadata, table, config=config,
                                  storage=views[shard_id])
                engine = None if in_process else IngestionEngine(table)
                return Shard(shard_id, locater, engine=engine)

        if recovery is not None and recovery.call_timeout is not None:
            # Reach through a wrapper (e.g. FaultInjectingExecutor) so
            # the timeout lands on the executor that owns the pipes.
            target = getattr(self._executor, "inner", self._executor)
            if isinstance(target, ProcessShardExecutor):
                target.call_timeout = recovery.call_timeout
        self._executor.start(factory, shard_count)
        self._recovery = recovery
        self._fallback: "Locater | None" = None
        if recovery is not None:
            caching_on = config.use_caching if config is not None else True
            self._supervisor: "ShardSupervisor | None" = ShardSupervisor(
                self._executor, policy=recovery,
                # Attached workers must map the table's *current*
                # segments at resurrection time; the start-time
                # descriptor goes stale at the first ingest.  Fork /
                # in-process factories re-derive current state on their
                # own (a re-fork inherits the merged table).
                factory_provider=self._shard_factory
                if self._attached_shards else None,
                checkpoints=caching_on)
        else:
            self._supervisor = None
        # States handed out by make_batch_state, pruned on every ingest
        # so held states never serve memos staled by new events.  Weak:
        # the cluster must not keep abandoned states (and their neighbor
        # snapshots) alive.
        self._live_states: "weakref.WeakSet[ClusterBatchState]" = \
            weakref.WeakSet()
        self._closed = False
        self._poisoned = False

    def _shard_factory(self) -> ShardFactory:
        """A fresh attached-shard factory over the current table state."""
        return _AttachedShardFactory(
            self._building, self._metadata, self._config,
            self._table.describe())

    # ------------------------------------------------------------------
    @property
    def building(self) -> Building:
        """The space model every shard cleans against."""
        return self._building

    @property
    def table(self) -> EventTable:
        """The authoritative connectivity events table."""
        return self._table

    @property
    def config(self) -> "LocaterConfig | None":
        """The configuration shared by every shard."""
        return self._config

    @property
    def router(self) -> ShardRouter:
        """The device → shard assignment."""
        return self._router

    @property
    def executor(self) -> ShardExecutor:
        """The shard placement / dispatch layer."""
        return self._executor

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return self._shard_count

    def shard_of(self, mac: str) -> int:
        """The shard that owns ``mac``."""
        return self._router.shard_of(mac, self._shard_count)

    @property
    def supervisor(self) -> "ShardSupervisor | None":
        """The supervision layer (None unless ``recovery`` was given)."""
        return self._supervisor

    @property
    def quarantined(self) -> frozenset[int]:
        """Shards offline for good (restart budget exhausted)."""
        return self._supervisor.quarantined \
            if self._supervisor is not None else frozenset()

    @property
    def recovery_events(self) -> list[RecoveryEvent]:
        """Every recovery episode so far (empty without supervision)."""
        return list(self._supervisor.events) \
            if self._supervisor is not None else []

    # -- supervised dispatch (falls through when recovery is off) ------
    def _call_all(self, method: str,
                  args_per_shard: "Sequence[tuple] | None" = None
                  ) -> list:
        if self._supervisor is not None:
            return self._supervisor.call_all(method, args_per_shard)
        return self._executor.call_all(method, args_per_shard)

    def _call_one(self, shard_id: int, method: str, *args) -> object:
        if self._supervisor is not None:
            return self._supervisor.call_one(shard_id, method, *args)
        return self._executor.call_one(shard_id, method, *args)

    def _checkpoint(self, shard_ids: "Iterable[int] | None" = None) -> None:
        if self._supervisor is not None:
            self._supervisor.checkpoint(shard_ids)

    def _fallback_locater(self) -> Locater:
        """Parent-side degraded-mode server for quarantined devices.

        Cache-less (so surviving shards' aggregated cache counters stay
        exactly a lone system's minus the quarantined slice) and
        storage-less (degraded answers are best-effort, never
        persisted); reads the authoritative table, so answers are still
        full-quality — just without the dead shard's warm state.
        """
        if self._fallback is None:
            base = self._config if self._config is not None \
                else LocaterConfig()
            self._fallback = Locater(
                self._building, self._metadata, self._table,
                config=base.with_(use_caching=False))
        return self._fallback

    def _degraded_answer(self, shard_id: int, queries: list[LocationQuery],
                         bucket_seconds: float,
                         share_computation: bool) -> list[LocationAnswer]:
        """Serve a quarantined shard's slice per the degradation policy."""
        if self._recovery is None or self._recovery.degraded == "error":
            macs = sorted({query.mac for query in queries})
            raise ShardQuarantinedError(
                shard_id,
                f"shard {shard_id} is quarantined (restart budget "
                f"exhausted); its devices are offline: {', '.join(macs)}")
        return self._fallback_locater().locate_batch(
            queries, bucket_seconds=bucket_seconds,
            share_computation=share_computation)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def locate(self, mac: str, timestamp: float) -> LocationAnswer:
        """Answer one query on its owning shard."""
        return self.locate_query(
            LocationQuery(mac=mac, timestamp=timestamp))

    def locate_query(self, query: LocationQuery) -> LocationAnswer:
        """Answer an explicit :class:`LocationQuery` on its owning shard.

        Under supervision a dead owning shard is resurrected first; a
        quarantined one degrades per the recovery policy (typed error
        or parent-side fallback).
        """
        self._check_open()
        shard_id = self.shard_of(query.mac)
        if self._supervisor is None:
            return self._executor.call_one(shard_id, "locate_query", query)
        try:
            if shard_id in self._supervisor.quarantined:
                raise ShardQuarantinedError(
                    shard_id, f"shard {shard_id} is quarantined")
            answer = self._supervisor.call_one(
                shard_id, "locate_query", query)
        except ShardQuarantinedError:
            return self._degraded_answer(
                shard_id, [query], DEFAULT_BUCKET_SECONDS, True)[0]
        self._checkpoint([shard_id])
        return answer

    def locate_batch(self, queries: Iterable[LocationQuery],
                     bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                     timings: "list[tuple[int, float]] | None" = None,
                     share_computation: bool = True,
                     state: "ClusterBatchState | None" = None
                     ) -> list[LocationAnswer]:
        """Answer a batch: partition by owner, execute shards, merge.

        Same contract as :meth:`Locater.locate_batch` — answers return
        in input order; ``timings`` entries carry input indices (their
        *order* interleaves per shard rather than following the global
        plan).  ``state`` must come from :meth:`make_batch_state`.
        """
        self._check_open()
        queries = list(queries)
        indexed = list(enumerate(queries))
        parts = self._router.partition(
            indexed, [q.mac for q in queries], self._shard_count)
        if state is not None:
            shard_states: "Sequence[BatchState | None]" = state.shard_states
        else:
            shard_states = [None] * self._shard_count
        args = [
            ([query for _, query in part], bucket_seconds,
             timings is not None, share_computation, shard_state)
            for part, shard_state in zip(parts, shard_states)]
        results = self._call_all("locate_batch", args)
        answers: "list[LocationAnswer | None]" = [None] * len(queries)
        served: list[int] = []
        for shard_id, (part, result) in enumerate(zip(parts, results)):
            if result is None:
                # Only the supervised path yields None slots: the shard
                # is quarantined (before the call, or its recovery
                # failed mid-call).  Its slice degrades per policy;
                # every other shard's slice is untouched.
                if not part:
                    continue
                part_answers = self._degraded_answer(
                    shard_id, [query for _, query in part],
                    bucket_seconds, share_computation)
                part_timings = None
            else:
                part_answers, part_timings = result
                if part:
                    served.append(shard_id)
            for (index, _), answer in zip(part, part_answers):
                answers[index] = answer
            if timings is not None and part_timings:
                timings.extend((part[local][0], seconds)
                               for local, seconds in part_timings)
        self._checkpoint(served)
        return answers  # type: ignore[return-value]  # every slot filled

    def locate_slice(self, shard_id: int,
                     queries: "Sequence[LocationQuery]",
                     bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                     share_computation: bool = True,
                     state: "ClusterBatchState | None" = None
                     ) -> list[LocationAnswer]:
        """Answer a pre-routed slice on one shard (the serving layer's
        per-lane entry).

        :meth:`locate_batch` fans an unrouted batch to every shard and
        waits for all of them; a micro-batching gateway routes queries
        to per-shard lanes itself (via :meth:`shard_of`) and needs the
        complement — dispatch *one* shard's window without touching the
        others, so one slow shard never stalls another lane's batches.
        The caller owns the routing invariant: every query must route
        to ``shard_id`` under the current router (re-check after any
        ingest, which is when affinity routers re-key devices).
        Answers come back in slice order, bitwise what
        :meth:`locate_batch` would return for the same slice.

        Concurrent ``locate_slice`` calls targeting *different* shards
        are safe on every executor (each shard sees a sequential call
        stream, the property the executors already guarantee inside
        ``call_all``); calls targeting one shard must be serialized by
        the caller, and supervised dispatch must be serialized globally
        (the supervisor's recovery bookkeeping is single-threaded).

        Under supervision a dead shard is resurrected first; a
        quarantined one degrades per the recovery policy, exactly like
        :meth:`locate_batch`.
        """
        self._check_open()
        queries = list(queries)
        if not queries:
            return []
        shard_state = state.shard_states[shard_id] \
            if state is not None else None
        try:
            if self._supervisor is not None and \
                    shard_id in self._supervisor.quarantined:
                raise ShardQuarantinedError(
                    shard_id, f"shard {shard_id} is quarantined")
            answers, _ = self._call_one(
                shard_id, "locate_batch", queries, bucket_seconds,
                False, share_computation, shard_state)
        except ShardQuarantinedError:
            return self._degraded_answer(
                shard_id, queries, bucket_seconds, share_computation)
        self._checkpoint([shard_id])
        return answers

    def make_batch_state(self, max_snapshots: "int | None" = None
                         ) -> ClusterBatchState:
        """A persistent cluster state (one :class:`BatchState` per shard).

        The cluster keeps a weak reference and prunes the state on
        every :meth:`ingest` / :meth:`on_ingest`, so holding it across
        ingests stays safe (memos never outlive the table state they
        were derived from).  Only available with in-process executors;
        process shards keep their persistent state worker-side (their
        streaming sessions prune it on every :meth:`ingest`).
        """
        self._check_open()
        self._require_in_process("make_batch_state")
        state = ClusterBatchState(tuple(
            shard.locater.make_batch_state(max_snapshots=max_snapshots)
            for shard in self._executor.shards))
        self._live_states.add(state)
        return state

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[ConnectivityEvent]
               ) -> ClusterIngestReport:
        """Merge new events once, then bring every shard up to date.

        The cluster's engine stamps ids and merges into the
        authoritative table (identically to a lone system's engine).
        The stamped batch then feeds the router (so assignment-learning
        routers bind first-seen devices), is partitioned to persist each
        shard's slice of the dirty stream, and finally reaches the
        shards: in-process shards invalidate against the shared table
        (live batch states handed out by :meth:`make_batch_state` are
        pruned along the way); replica shards merge the stamped batch
        themselves; attached shards receive a
        :class:`~repro.events.table.TableSync` — the new segment names
        and counters, no event data — and invalidate off the owner's
        report.
        """
        self._check_open()
        generation_before = self._table.generation
        report = self._engine.ingest(events)
        stamped = self._tap.take()
        # Bind assignment-learning routers from the merged table (same
        # first-seen-in-log-order semantics as the on_ingest path).
        moved = self._router.observe_table(self._table, report.macs)
        partitions = partition_events(stamped, self._router,
                                      self._shard_count)
        for view, partition in zip(self._views, partitions):
            if view is not None and partition:
                view.store_events(partition)
        with self._poison_on_failure():
            self._migrate_moved(moved)
            if self._executor.in_process:
                summaries = self._call_all(
                    "on_ingest", [(report,)] * self._shard_count)
                self._prune_states(report,
                                   self._merge_summaries(summaries))
            elif self._attached_shards:
                # One physical merge just happened (owner-side); ship
                # the new segment names, not the events.  Workers are
                # idle between calls (synchronous dispatch), so no read
                # races the handle swap.
                payload = self._table.sync_payload(generation_before)
                self._call_all(
                    "apply_table_sync",
                    [(payload, report)] * self._shard_count)
            else:
                self._call_all("ingest_events",
                               [(stamped,)] * self._shard_count)
        self._checkpoint()
        return ClusterIngestReport(
            total=report,
            shard_reports=tuple(
                self._slice_report(report, partitions[shard_id], shard_id)
                for shard_id in range(self._shard_count)))

    def on_ingest(self, report: IngestReport) -> InvalidationSummary:
        """React to a merge some external engine performed on ``table``.

        This is the :class:`~repro.system.streaming.StreamingSession`
        wiring: the session's engine merged into the shared table, and
        every shard now invalidates its own models.  The per-shard
        summaries agree on everything except the per-namespace answer
        counts (same report, same table, same escalation rule), so the
        merge is a sum/union of identical decisions.  Live batch states
        are pruned here too — a session prunes its own state again
        afterwards, which is redundant but harmless (every pruning step
        is idempotent).
        """
        self._check_open()
        self._require_in_process("on_ingest")
        # The external engine merged into the shared table already, so
        # assignment-learning routers can bind the changed devices from
        # their logs — queries must never route a device differently
        # depending on which ingest entry point saw it first.
        moved = self._router.observe_table(self._table, report.macs)
        with self._poison_on_failure():
            self._migrate_moved(moved)
            summaries: "list[InvalidationSummary | None]" = \
                self._call_all(
                    "on_ingest", [(report,)] * self._shard_count)
            merged = self._merge_summaries(summaries)
            self._prune_states(report, merged)
        self._checkpoint()
        return merged

    def _migrate_moved(self, moved: frozenset[str]) -> None:
        """Move what a route upgrade would otherwise strand.

        The router just re-keyed ``moved`` devices (first binding off
        the hash fallback, or a component merge).  Two kinds of owned
        state must follow them — runs inside ``_poison_on_failure``
        because a partial migration leaves shards diverged:

        * **Stored answers**: cleared from every namespace but the new
          owner's, so a re-query can never serve a stale namespaced
          answer (models and memos need no such care — they are pure
          functions of the replicated log).
        * **Cache edges**: every recorded affinity edge incident to a
          moved device is extracted from whichever shard holds it and
          re-inserted on the shard owning the edge's lower endpoint,
          observation order preserved bitwise — after a component
          merge both endpoints route to the same shard, so that
          shard's later affinity reads are exactly a lone system's.
        """
        if not moved:
            return
        macs = sorted(moved)
        for shard_id, view in enumerate(self._views):
            if view is None:
                continue
            for mac in macs:
                if self.shard_of(mac) != shard_id:
                    view.clear_answers(mac)
        exports = self._call_all(
            "export_cache_edges", [(macs,)] * self._shard_count)
        payloads: "list[list[tuple[str, str, list[tuple[float, float]]]]]" \
            = [[] for _ in range(self._shard_count)]
        for edges in exports:
            # A None slot is a quarantined shard (supervised path): its
            # cache is unreachable and its devices are offline, so
            # nothing can be migrated from it.
            for mac_a, mac_b, vector in edges or ():
                payloads[self.shard_of(min(mac_a, mac_b))].append(
                    (mac_a, mac_b, vector))
        if any(payloads):
            self._call_all(
                "import_cache_edges",
                [(payload,) for payload in payloads])
        if any(edges for edges in exports if edges):
            # The extraction was destructive on the source shards; a
            # later crash must not resurrect one from a pre-extraction
            # checkpoint (the moved edges would exist twice).
            self._checkpoint()

    @staticmethod
    def _merge_summaries(summaries: "Sequence[InvalidationSummary | None]"
                         ) -> InvalidationSummary:
        # A None slot means the supervised path resurrected (or
        # quarantined) that shard instead of running its invalidation —
        # the rebuilt shard is fresh against the merged table, but any
        # *parent-side* state derived from the old shard must be
        # considered fully stale, so the merge escalates to a full
        # invalidation (bitwise-safe: serving from a reset state equals
        # serving from a fresh one).
        present = [s for s in summaries if s is not None]
        full = any(s.full for s in present) or len(present) < len(summaries)
        return InvalidationSummary(
            full=full,
            macs=frozenset().union(*(s.macs for s in present))
            if present else frozenset(),
            delta_changed=frozenset().union(
                *(s.delta_changed for s in present))
            if present else frozenset(),
            answers_dropped=sum(s.answers_dropped for s in present))

    def _prune_states(self, report: IngestReport,
                      summary: InvalidationSummary) -> None:
        """Bring every live :class:`ClusterBatchState` up to date.

        Shares :func:`~repro.system.streaming.prune_batch_state` with
        the streaming session — one surgical-invalidation policy, no
        drift — and handles the full-invalidation case by resetting
        each held state in place (a session would swap in a fresh one).
        """
        if not report.changed and not summary.full:
            return
        registry = self._table.registry
        for state in list(self._live_states):
            if summary.full:
                state.reset()
            else:
                prune_batch_state(state, report, summary, registry)

    def _slice_report(self, report: IngestReport,
                      partition: "list[ConnectivityEvent]",
                      shard_id: int) -> IngestReport:
        """The owned slice of a cluster report for one shard."""
        owned = {mac: interval for mac, interval in report.changed.items()
                 if self.shard_of(mac) == shard_id}
        return IngestReport(
            count=len(partition), generation=report.generation,
            changed=owned,
            delta_changes={mac: move for mac, move
                           in report.delta_changes.items() if mac in owned})

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def cache_stats(self) -> ClusterCacheStats:
        """Caching-engine counters, per shard and summed cluster-wide.

        The aggregated ``total`` is what equivalence checks compare: it
        is insensitive to shard order and — under component routing —
        bitwise equal to a lone system's ``cache.stats()``.
        """
        self._check_open()
        per_shard = self._call_all("cache_stats")
        counters = [stats for stats in per_shard if stats is not None]
        total = None
        if counters:
            total = {key: sum(stats.get(key, 0) for stats in counters)
                     for key in counters[0]}
        return ClusterCacheStats(per_shard=tuple(per_shard), total=total)

    def shard_stats(self) -> "list[dict[str, int] | None]":
        """Per-shard serving counters (None slots: quarantined shards)."""
        self._check_open()
        return self._call_all("stats")

    def table_memory(self) -> dict:
        """Event-table memory accounting: parent plus every shard.

        The cluster-level truth the shared-vs-replicated benchmark
        archives: logical column bytes per process (exact, from store
        accounting) with the backend kind, plus each process's VmRSS as
        an auxiliary signal.  ``total_column_bytes`` counts private
        copies per shard but any shared segments once — the "how much
        log does this deployment hold" number.
        """
        self._check_open()
        parent = self._table.memory_stats()
        shards = self._call_all("table_memory")
        private = 0
        for stats in shards:
            if stats is None:  # quarantined shard: holds no live table
                continue
            if stats["kind"] == "shared-attached":
                continue  # maps the parent's segments: counted once below
            if self._executor.in_process:
                continue  # same table object as the parent's
            private += stats["column_bytes"]
        return {
            "parent": parent,
            "shards": shards,
            "attached": self._attached_shards,
            "total_column_bytes": parent["column_bytes"] + private,
        }

    def close(self) -> None:
        """Tear down shards, workers and storage views.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._executor.close()
        for view in self._views:
            if view is not None:
                view.close()

    def __enter__(self) -> "ShardedLocater":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster already closed")
        if self._poisoned:
            raise ClusterError(
                "cluster poisoned: an ingest fan-out failed part-way, so "
                "some shards may hold stale models or replicas; rebuild "
                "the cluster from the authoritative table (retrying the "
                "ingest would double-merge the batch)")

    @contextlib.contextmanager
    def _poison_on_failure(self):
        """Fail-stop guard around a shard fan-out.

        If invalidation (or a replica merge) reaches some shards but not
        others, the survivors silently diverge from the authoritative
        table — worse than an outage under this layer's bitwise
        contract.  Any fan-out failure therefore poisons the cluster:
        every later serving call raises until the owner rebuilds.
        """
        try:
            yield
        except BaseException:
            self._poisoned = True
            raise

    def _require_in_process(self, operation: str) -> None:
        if not self._executor.in_process:
            raise ConfigurationError(
                f"{operation} needs in-process shards (they share the "
                "cluster's table and state); with process shards, drive "
                "ingest through ShardedLocater.ingest instead")


class _EventTap:
    """The engine-facing storage stub of a cluster.

    Captures the stamped events of the current ingest call (the cluster
    partitions and persists them *after* the router has observed them)
    and answers ``max_event_id`` from the real backend so id seeding
    matches a lone system's engine exactly.
    """

    def __init__(self, backend: "StorageEngine | None") -> None:
        self._backend = backend
        self._buffer: list[ConnectivityEvent] = []

    def store_events(self, events: Iterable[ConnectivityEvent]) -> int:
        batch = list(events)
        self._buffer.extend(batch)
        return len(batch)

    def max_event_id(self) -> int:
        return self._backend.max_event_id() \
            if self._backend is not None else -1

    def take(self) -> list[ConnectivityEvent]:
        """The stamped events buffered since the last take."""
        out, self._buffer = self._buffer, []
        return out
