"""Shard executors: where shards live and how their calls run.

An executor owns the shard lifecycle — :meth:`ShardExecutor.start`
builds the shards from a factory, :meth:`ShardExecutor.close` tears
them down — and dispatches method calls to all shards (or one).  The
cluster layer never touches shards directly; swapping the executor
swaps the deployment shape without changing any cluster logic:

* :class:`SerialShardExecutor` — shards in-process, calls run one after
  another.  Zero overhead; the baseline every benchmark compares
  against, and the executor under which equivalence proofs are easiest
  to read.
* :class:`ThreadShardExecutor` — shards in-process, calls run on a
  thread pool.  Python's GIL serializes the pure-Python parts, so the
  win is bounded by the numpy fraction of the pipeline; what it buys
  cheaply is overlap of shard calls that block (storage I/O) and a
  drop-in dress rehearsal for the process executor.
* :class:`ProcessShardExecutor` — each shard is an *actor* in a worker
  process: forked with a private copy-on-write replica of everything
  the factory closed over, or (``start_method='spawn'``, or any worker
  given a shared-memory table) attached by segment name to the one
  physical copy of the event log.  Calls travel a pipe as pickled
  (method, args) tuples; results return pickled, which roundtrips
  floats and numpy arrays bitwise, so answers are indistinguishable
  from in-process ones.  True parallelism, at the cost of per-call
  serialization and no shared mutable state (a cluster with process
  shards therefore refuses external storage and batch states).

Determinism contract shared by all three: ``call_all`` returns results
in shard order no matter which shard finished first, and each shard
executes its own calls sequentially — so any per-shard computation is
bit-for-bit reproducible across executor choices.
"""

from __future__ import annotations

import multiprocessing
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import ClusterError, ConfigurationError

#: Factory signature: shard_id → shard object.  The cluster provides it;
#: executors decide where (and in which process) it runs.
ShardFactory = Callable[[int], Any]


class ShardExecutor(ABC):
    """Owns N shards and runs method calls against them."""

    #: Whether shards live in the calling process (and may therefore
    #: share objects — the event table, storage views, batch states —
    #: with the cluster).  Process-based executors set this False.
    in_process: bool = True

    def __init__(self) -> None:
        self._started = False

    @property
    def shard_count(self) -> int:
        """Number of shards started (0 before :meth:`start`)."""
        return self._count if self._started else 0

    def start(self, factory: ShardFactory, shard_count: int) -> None:
        """Build ``shard_count`` shards via ``factory``; idempotence error."""
        if self._started:
            raise ConfigurationError("executor already started")
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}")
        self._count = shard_count
        try:
            self._start(factory, shard_count)
        except BaseException:
            # A failed start must not leak half-built shards or workers.
            try:
                self._close()
            except Exception:
                pass
            raise
        self._started = True

    def call_all(self, method: str,
                 args_per_shard: "Sequence[tuple] | None" = None
                 ) -> list[Any]:
        """Call ``method`` on every shard; results in shard order.

        Args:
            method: Shard method name.
            args_per_shard: One positional-args tuple per shard
                (defaults to no-arg calls).
        """
        self._check_started()
        if args_per_shard is None:
            args_per_shard = [()] * self._count
        if len(args_per_shard) != self._count:
            raise ConfigurationError(
                f"need {self._count} argument tuples, "
                f"got {len(args_per_shard)}")
        return self._call_all(method, args_per_shard)

    def call_one(self, shard_id: int, method: str, *args: Any) -> Any:
        """Call ``method`` on one shard."""
        self._check_started()
        if not 0 <= shard_id < self._count:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range(0, {self._count})")
        return self._call_one(shard_id, method, args)

    def close(self) -> None:
        """Tear the shards down; further calls raise.  Idempotent."""
        if self._started:
            self._close()
            self._started = False

    def _check_started(self) -> None:
        if not self._started:
            raise ConfigurationError("executor not started (or closed)")

    # -- template methods ----------------------------------------------
    @abstractmethod
    def _start(self, factory: ShardFactory, shard_count: int) -> None: ...

    @abstractmethod
    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]: ...

    @abstractmethod
    def _call_one(self, shard_id: int, method: str, args: tuple) -> Any: ...

    @abstractmethod
    def _close(self) -> None: ...

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _InProcessExecutor(ShardExecutor):
    """Common base for executors whose shards live in this process."""

    in_process = True

    def _start(self, factory: ShardFactory, shard_count: int) -> None:
        self._shards = [factory(shard_id) for shard_id in range(shard_count)]

    @property
    def shards(self) -> list[Any]:
        """The live shard objects (cluster wiring needs direct access)."""
        self._check_started()
        return self._shards

    def _call_one(self, shard_id: int, method: str, args: tuple) -> Any:
        return getattr(self._shards[shard_id], method)(*args)

    def _close(self) -> None:
        for shard in self._shards:
            close = getattr(shard, "close", None)
            if close is not None:
                close()
        self._shards = []


class SerialShardExecutor(_InProcessExecutor):
    """Run every shard call sequentially in the calling thread."""

    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]:
        return [getattr(shard, method)(*args)
                for shard, args in zip(self._shards, args_per_shard)]

    def __repr__(self) -> str:
        return "SerialShardExecutor()"


class ThreadShardExecutor(_InProcessExecutor):
    """Run shard calls on a thread pool (one worker per shard by default).

    Each ``call_all`` dispatches one task per shard; a shard never sees
    concurrent calls (the pool is fed at most one task per shard per
    dispatch, and the cluster layer issues dispatches sequentially), so
    per-shard state needs no locking.
    """

    def __init__(self, max_workers: "int | None" = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers

    def _start(self, factory: ShardFactory, shard_count: int) -> None:
        super()._start(factory, shard_count)
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers or shard_count,
            thread_name_prefix="shard")

    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]:
        futures = [
            self._pool.submit(getattr(shard, method), *args)
            for shard, args in zip(self._shards, args_per_shard)]
        # Collect in shard order; a raised shard call surfaces here with
        # its original traceback.
        return [future.result() for future in futures]

    def _close(self) -> None:
        self._pool.shutdown(wait=True)
        super()._close()

    def __repr__(self) -> str:
        return f"ThreadShardExecutor(max_workers={self._max_workers})"


def _worker_main(connection, factory: ShardFactory, shard_id: int) -> None:
    """Actor loop of one forked shard worker.

    Builds the shard from the (fork-inherited) factory, then serves
    pickled ``(method, args)`` commands until the parent sends ``None``.
    Failures are answered as ``(False, message)`` rather than killing
    the worker, so one bad call doesn't take the shard down.
    """
    try:
        shard = factory(shard_id)
    except BaseException:
        connection.send((False, f"shard {shard_id} factory failed:\n"
                         f"{traceback.format_exc()}"))
        connection.close()
        return
    connection.send((True, None))  # ready handshake
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        if message is None:
            break
        method, args = message
        try:
            result = getattr(shard, method)(*args)
            connection.send((True, result))
        except BaseException:
            connection.send((False, f"shard {shard_id}.{method} failed:\n"
                             f"{traceback.format_exc()}"))
    close = getattr(shard, "close", None)
    if close is not None:
        close()
    connection.close()


class ProcessShardExecutor(ShardExecutor):
    """One worker process per shard, spoken to over a pipe.

    Under the default ``fork`` start method the factory and its closure
    — building, metadata, the replicated event table — are *inherited*
    copy-on-write, never pickled, so each worker starts with a private
    bitwise-identical replica of the cluster's state at start time.
    Under ``spawn`` the factory itself crosses the process boundary
    pickled, so it must be picklable and self-contained — the cluster
    provides one that carries a
    :class:`~repro.events.table.TableDescriptor` and *attaches* the
    shared-memory event table by segment name instead of copying it
    (``ShardedLocater(..., shared_memory=True)``).  After start, workers
    receive only picklable payloads: stamped event batches or table
    syncs in, answers and reports out.
    """

    in_process = False

    def __init__(self, start_method: "str | None" = None) -> None:
        super().__init__()
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            if "fork" not in available:
                raise ConfigurationError(
                    "ProcessShardExecutor defaults to the 'fork' start "
                    "method (unavailable on this platform); pass "
                    "start_method='spawn' with a shared-memory table, or "
                    "use ThreadShardExecutor / SerialShardExecutor")
            start_method = "fork"
        if start_method not in ("fork", "spawn"):
            raise ConfigurationError(
                f"start_method must be 'fork' or 'spawn', "
                f"got {start_method!r}")
        if start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} unavailable on this "
                f"platform (have: {', '.join(available)})")
        self.start_method = start_method
        self._context = multiprocessing.get_context(start_method)

    def _start(self, factory: ShardFactory, shard_count: int) -> None:
        self._connections = []
        self._workers = []
        for shard_id in range(shard_count):
            parent_end, worker_end = self._context.Pipe(duplex=True)
            worker = self._context.Process(
                target=_worker_main, args=(worker_end, factory, shard_id),
                name=f"shard-{shard_id}", daemon=True)
            worker.start()
            worker_end.close()
            self._connections.append(parent_end)
            self._workers.append(worker)
        for shard_id, connection in enumerate(self._connections):
            self._receive(shard_id, connection)  # ready handshake

    def _receive(self, shard_id: int, connection) -> Any:
        try:
            ok, payload = connection.recv()
        except EOFError as exc:
            raise ClusterError(
                f"shard worker {shard_id} died (pipe closed)") from exc
        if not ok:
            raise ClusterError(payload)
        return payload

    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]:
        # Send every command first (each worker holds at most one
        # in-flight command, so sends never deadlock), then collect in
        # shard order — workers compute concurrently in between.  Every
        # response is drained even when one shard fails, or the pipes
        # would desynchronize and the next call read stale results.
        for connection, args in zip(self._connections, args_per_shard):
            connection.send((method, args))
        results: list[Any] = []
        failure: "ClusterError | None" = None
        for shard_id, connection in enumerate(self._connections):
            try:
                results.append(self._receive(shard_id, connection))
            except ClusterError as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return results

    def _call_one(self, shard_id: int, method: str, args: tuple) -> Any:
        connection = self._connections[shard_id]
        connection.send((method, args))
        return self._receive(shard_id, connection)

    def _close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        for connection in self._connections:
            connection.close()
        self._connections = []
        self._workers = []

    def __repr__(self) -> str:
        return f"ProcessShardExecutor(start_method={self.start_method!r})"
