"""Shard executors: where shards live and how their calls run.

An executor owns the shard lifecycle — :meth:`ShardExecutor.start`
builds the shards from a factory, :meth:`ShardExecutor.close` tears
them down — and dispatches method calls to all shards (or one).  The
cluster layer never touches shards directly; swapping the executor
swaps the deployment shape without changing any cluster logic:

* :class:`SerialShardExecutor` — shards in-process, calls run one after
  another.  Zero overhead; the baseline every benchmark compares
  against, and the executor under which equivalence proofs are easiest
  to read.
* :class:`ThreadShardExecutor` — shards in-process, calls run on a
  thread pool.  Python's GIL serializes the pure-Python parts, so the
  win is bounded by the numpy fraction of the pipeline; what it buys
  cheaply is overlap of shard calls that block (storage I/O) and a
  drop-in dress rehearsal for the process executor.
* :class:`ProcessShardExecutor` — each shard is an *actor* in a worker
  process: forked with a private copy-on-write replica of everything
  the factory closed over, or (``start_method='spawn'``, or any worker
  given a shared-memory table) attached by segment name to the one
  physical copy of the event log.  Calls travel a pipe as pickled
  (method, args) tuples; results return pickled, which roundtrips
  floats and numpy arrays bitwise, so answers are indistinguishable
  from in-process ones.  True parallelism, at the cost of per-call
  serialization and no shared mutable state (a cluster with process
  shards therefore refuses external storage and batch states).

Determinism contract shared by all three: ``call_all`` returns results
in shard order no matter which shard finished first, and each shard
executes its own calls sequentially — so any per-shard computation is
bit-for-bit reproducible across executor choices.

Failure contract: no OS-level exception escapes the executor boundary.
A dead worker (pipe EOF, broken pipe on send) surfaces as
:class:`~repro.errors.ShardUnavailableError`, a hung worker (with
``call_timeout`` set) as :class:`~repro.errors.ShardTimeoutError`, and
a fan-out where some shards failed as a single
:class:`~repro.errors.ClusterCallError` aggregating *every* failure
with the partial results — all under :class:`~repro.errors.ClusterError`.
A failed shard is marked dead (a timed-out pipe is desynchronized and
must never be reused) until :meth:`ShardExecutor.restart_shard` rebuilds
it from the factory; the supervision layer
(:mod:`repro.cluster.supervision`) drives that recovery loop.
"""

from __future__ import annotations

import multiprocessing
import signal as _signal
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.errors import (
    ClusterCallError,
    ClusterError,
    ConfigurationError,
    ShardTimeoutError,
    ShardUnavailableError,
)

#: Factory signature: shard_id → shard object.  The cluster provides it;
#: executors decide where (and in which process) it runs.
ShardFactory = Callable[[int], Any]


class ShardExecutor(ABC):
    """Owns N shards and runs method calls against them."""

    #: Whether shards live in the calling process (and may therefore
    #: share objects — the event table, storage views, batch states —
    #: with the cluster).  Process-based executors set this False.
    in_process: bool = True

    def __init__(self) -> None:
        self._started = False

    @property
    def shard_count(self) -> int:
        """Number of shards started (0 before :meth:`start`)."""
        return self._count if self._started else 0

    def start(self, factory: ShardFactory, shard_count: int) -> None:
        """Build ``shard_count`` shards via ``factory``; idempotence error."""
        if self._started:
            raise ConfigurationError("executor already started")
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}")
        self._count = shard_count
        self._factory = factory
        try:
            self._start(factory, shard_count)
        except BaseException:
            # A failed start must not leak half-built shards or workers.
            try:
                self._close()
            except Exception:
                pass
            raise
        self._started = True

    def call_all(self, method: str,
                 args_per_shard: "Sequence[tuple] | None" = None
                 ) -> list[Any]:
        """Call ``method`` on every shard; results in shard order.

        Args:
            method: Shard method name.
            args_per_shard: One positional-args tuple per shard
                (defaults to no-arg calls).
        """
        self._check_started()
        if args_per_shard is None:
            args_per_shard = [()] * self._count
        if len(args_per_shard) != self._count:
            raise ConfigurationError(
                f"need {self._count} argument tuples, "
                f"got {len(args_per_shard)}")
        return self._call_all(method, args_per_shard)

    def call_some(self, shard_ids: Iterable[int], method: str,
                  args_per_shard: "Sequence[tuple] | None" = None
                  ) -> list[Any]:
        """Call ``method`` on a subset of shards; results align with ids.

        The supervision layer uses this to retry only failed shards and
        to skip quarantined ones; semantics otherwise match
        :meth:`call_all` restricted to ``shard_ids``.
        """
        self._check_started()
        shard_ids = list(shard_ids)
        if args_per_shard is None:
            args_per_shard = [()] * len(shard_ids)
        if len(args_per_shard) != len(shard_ids):
            raise ConfigurationError(
                f"need {len(shard_ids)} argument tuples, "
                f"got {len(args_per_shard)}")
        for shard_id in shard_ids:
            if not 0 <= shard_id < self._count:
                raise ConfigurationError(
                    f"shard_id {shard_id} out of range(0, {self._count})")
        return self._call_some(shard_ids, method, args_per_shard)

    def call_one(self, shard_id: int, method: str, *args: Any) -> Any:
        """Call ``method`` on one shard."""
        self._check_started()
        if not 0 <= shard_id < self._count:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range(0, {self._count})")
        return self._call_one(shard_id, method, args)

    def restart_shard(self, shard_id: int,
                      factory: "ShardFactory | None" = None) -> None:
        """Tear down one shard and rebuild it from the factory.

        The replacement is built by ``factory`` (default: the factory
        :meth:`start` was given), so a restarted shard re-derives its
        state from the same sources a fresh start would — the basis of
        the deterministic-resurrection guarantee.
        """
        self._check_started()
        if not 0 <= shard_id < self._count:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range(0, {self._count})")
        self._restart(shard_id, factory if factory is not None
                      else self._factory)

    def alive(self, shard_id: int) -> bool:
        """Whether the shard can currently serve calls (liveness probe)."""
        self._check_started()
        if not 0 <= shard_id < self._count:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range(0, {self._count})")
        return self._alive(shard_id)

    def close(self) -> None:
        """Tear the shards down; further calls raise.  Idempotent."""
        if self._started:
            self._close()
            self._started = False

    def _check_started(self) -> None:
        if not self._started:
            raise ConfigurationError("executor not started (or closed)")

    # -- template methods ----------------------------------------------
    @abstractmethod
    def _start(self, factory: ShardFactory, shard_count: int) -> None: ...

    @abstractmethod
    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]: ...

    def _call_some(self, shard_ids: list[int], method: str,
                   args_per_shard: Sequence[tuple]) -> list[Any]:
        return [self._call_one(shard_id, method, args)
                for shard_id, args in zip(shard_ids, args_per_shard)]

    @abstractmethod
    def _call_one(self, shard_id: int, method: str, args: tuple) -> Any: ...

    @abstractmethod
    def _restart(self, shard_id: int, factory: ShardFactory) -> None: ...

    def _alive(self, shard_id: int) -> bool:
        return True

    @abstractmethod
    def _close(self) -> None: ...

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _InProcessExecutor(ShardExecutor):
    """Common base for executors whose shards live in this process."""

    in_process = True

    def _start(self, factory: ShardFactory, shard_count: int) -> None:
        # Built incrementally so a factory failure at shard k still
        # leaves shards 0..k-1 reachable for the teardown that
        # :meth:`ShardExecutor.start` runs before re-raising.
        self._shards: list[Any] = []
        for shard_id in range(shard_count):
            self._shards.append(factory(shard_id))

    @property
    def shards(self) -> list[Any]:
        """The live shard objects (cluster wiring needs direct access)."""
        self._check_started()
        return self._shards

    def _call_one(self, shard_id: int, method: str, args: tuple) -> Any:
        return getattr(self._shards[shard_id], method)(*args)

    def _restart(self, shard_id: int, factory: ShardFactory) -> None:
        old = self._shards[shard_id]
        close = getattr(old, "close", None)
        if close is not None:
            close()
        self._shards[shard_id] = factory(shard_id)

    def _close(self) -> None:
        for shard in getattr(self, "_shards", []):
            close = getattr(shard, "close", None)
            if close is not None:
                close()
        self._shards = []


class SerialShardExecutor(_InProcessExecutor):
    """Run every shard call sequentially in the calling thread."""

    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]:
        return [getattr(shard, method)(*args)
                for shard, args in zip(self._shards, args_per_shard)]

    def __repr__(self) -> str:
        return "SerialShardExecutor()"


class ThreadShardExecutor(_InProcessExecutor):
    """Run shard calls on a thread pool (one worker per shard by default).

    Each ``call_all`` dispatches one task per shard; a shard never sees
    concurrent calls (the pool is fed at most one task per shard per
    dispatch, and the cluster layer issues dispatches sequentially), so
    per-shard state needs no locking.
    """

    def __init__(self, max_workers: "int | None" = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers

    def _start(self, factory: ShardFactory, shard_count: int) -> None:
        super()._start(factory, shard_count)
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers or shard_count,
            thread_name_prefix="shard")

    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]:
        futures = [
            self._pool.submit(getattr(shard, method), *args)
            for shard, args in zip(self._shards, args_per_shard)]
        # Collect in shard order; a raised shard call surfaces here with
        # its original traceback.
        return [future.result() for future in futures]

    def _call_some(self, shard_ids: list[int], method: str,
                   args_per_shard: Sequence[tuple]) -> list[Any]:
        futures = [
            self._pool.submit(getattr(self._shards[shard_id], method), *args)
            for shard_id, args in zip(shard_ids, args_per_shard)]
        return [future.result() for future in futures]

    def _close(self) -> None:
        # ``_pool`` may not exist if the factory raised before the pool
        # was built; close() must still tear down the built shards.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None
        super()._close()

    def __repr__(self) -> str:
        return f"ThreadShardExecutor(max_workers={self._max_workers})"


def _worker_send(connection, payload) -> bool:
    """Send on the worker side; ``False`` when the parent is gone.

    A worker whose parent died (or closed the pipe) has nobody to
    answer; exiting quietly beats dying on an unhandled
    ``BrokenPipeError`` and leaving a corpse in the process table.
    """
    try:
        connection.send(payload)
    except (BrokenPipeError, OSError):
        return False
    return True


def _worker_main(connection, factory: ShardFactory, shard_id: int) -> None:
    """Actor loop of one forked shard worker.

    Builds the shard from the (fork-inherited) factory, then serves
    pickled ``(method, args)`` commands until the parent sends ``None``.
    Failures are answered as ``(False, message)`` rather than killing
    the worker, so one bad call doesn't take the shard down.
    """
    try:
        shard = factory(shard_id)
    except BaseException:
        _worker_send(connection, (False, f"shard {shard_id} factory failed:\n"
                                  f"{traceback.format_exc()}"))
        connection.close()
        return
    if not _worker_send(connection, (True, None)):  # ready handshake
        connection.close()
        return
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        if message is None:
            break
        method, args = message
        try:
            result = getattr(shard, method)(*args)
            ok = _worker_send(connection, (True, result))
        except BaseException:
            ok = _worker_send(
                connection, (False, f"shard {shard_id}.{method} failed:\n"
                             f"{traceback.format_exc()}"))
        if not ok:
            break
    close = getattr(shard, "close", None)
    if close is not None:
        close()
    connection.close()


class ProcessShardExecutor(ShardExecutor):
    """One worker process per shard, spoken to over a pipe.

    Under the default ``fork`` start method the factory and its closure
    — building, metadata, the replicated event table — are *inherited*
    copy-on-write, never pickled, so each worker starts with a private
    bitwise-identical replica of the cluster's state at start time.
    Under ``spawn`` the factory itself crosses the process boundary
    pickled, so it must be picklable and self-contained — the cluster
    provides one that carries a
    :class:`~repro.events.table.TableDescriptor` and *attaches* the
    shared-memory event table by segment name instead of copying it
    (``ShardedLocater(..., shared_memory=True)``).  After start, workers
    receive only picklable payloads: stamped event batches or table
    syncs in, answers and reports out.

    ``call_timeout`` (seconds) bounds every receive: a worker that does
    not answer in time is declared hung and its shard marked dead
    (:class:`~repro.errors.ShardTimeoutError`) — the pipe is
    desynchronized at that point, so the shard cannot serve again until
    :meth:`restart_shard` replaces the worker and the pipe together.
    """

    in_process = False

    def __init__(self, start_method: "str | None" = None,
                 call_timeout: "float | None" = None) -> None:
        super().__init__()
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            if "fork" not in available:
                raise ConfigurationError(
                    "ProcessShardExecutor defaults to the 'fork' start "
                    "method (unavailable on this platform); pass "
                    "start_method='spawn' with a shared-memory table, or "
                    "use ThreadShardExecutor / SerialShardExecutor")
            start_method = "fork"
        if start_method not in ("fork", "spawn"):
            raise ConfigurationError(
                f"start_method must be 'fork' or 'spawn', "
                f"got {start_method!r}")
        if start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} unavailable on this "
                f"platform (have: {', '.join(available)})")
        if call_timeout is not None and call_timeout <= 0:
            raise ConfigurationError(
                f"call_timeout must be positive, got {call_timeout}")
        self.start_method = start_method
        self.call_timeout = call_timeout
        self._context = multiprocessing.get_context(start_method)
        self._dead: set[int] = set()

    def _start(self, factory: ShardFactory, shard_count: int) -> None:
        self._connections = []
        self._workers = []
        for shard_id in range(shard_count):
            self._spawn_worker(shard_id, factory, append=True)
        for shard_id, connection in enumerate(self._connections):
            self._receive(shard_id, connection)  # ready handshake

    def _spawn_worker(self, shard_id: int, factory: ShardFactory,
                      append: bool) -> None:
        parent_end, worker_end = self._context.Pipe(duplex=True)
        worker = self._context.Process(
            target=_worker_main, args=(worker_end, factory, shard_id),
            name=f"shard-{shard_id}", daemon=True)
        worker.start()
        worker_end.close()
        if append:
            self._connections.append(parent_end)
            self._workers.append(worker)
        else:
            self._connections[shard_id] = parent_end
            self._workers[shard_id] = worker

    def _death_notice(self, shard_id: int, cause: str) -> str:
        """Describe a dead worker, inspecting its exit code / signal."""
        worker = self._workers[shard_id]
        worker.join(timeout=1.0)
        code = worker.exitcode
        if code is None:
            detail = "worker still running"
        elif code < 0:
            try:
                name = _signal.Signals(-code).name
            except ValueError:
                name = f"signal {-code}"
            detail = f"killed by {name}"
        else:
            detail = f"exit code {code}"
        return f"shard worker {shard_id} died ({cause}; {detail})"

    def _send(self, shard_id: int, payload) -> None:
        if shard_id in self._dead:
            raise ShardUnavailableError(
                shard_id, f"shard worker {shard_id} is dead "
                f"(awaiting restart)")
        try:
            self._connections[shard_id].send(payload)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            self._dead.add(shard_id)
            raise ShardUnavailableError(
                shard_id,
                self._death_notice(shard_id, "pipe broken on send")) from exc

    def _receive(self, shard_id: int, connection) -> Any:
        if self.call_timeout is not None:
            try:
                ready = connection.poll(self.call_timeout)
            except (BrokenPipeError, ConnectionError, OSError) as exc:
                self._dead.add(shard_id)
                raise ShardUnavailableError(
                    shard_id,
                    self._death_notice(shard_id, "pipe closed")) from exc
            if not ready:
                self._dead.add(shard_id)
                raise ShardTimeoutError(
                    shard_id,
                    f"shard worker {shard_id} did not answer within "
                    f"{self.call_timeout}s (hung; pipe desynchronized, "
                    f"restart required)")
        try:
            ok, payload = connection.recv()
        except (EOFError, ConnectionError, OSError) as exc:
            self._dead.add(shard_id)
            raise ShardUnavailableError(
                shard_id,
                self._death_notice(shard_id, "pipe closed")) from exc
        if not ok:
            raise ClusterError(payload)
        return payload

    def _call_all(self, method: str,
                  args_per_shard: Sequence[tuple]) -> list[Any]:
        return self._call_some(
            list(range(self._count)), method, args_per_shard)

    def _call_some(self, shard_ids: list[int], method: str,
                   args_per_shard: Sequence[tuple]) -> list[Any]:
        # Send every command first (each worker holds at most one
        # in-flight command, so sends never deadlock), then collect in
        # shard order — workers compute concurrently in between.  Every
        # response is drained even when one shard fails, or the pipes
        # would desynchronize and the next call read stale results.
        # All failures aggregate into one ClusterCallError carrying the
        # partial results, so supervision can retry just the failed ids.
        sent: list[int] = []
        failures: dict[int, Exception] = {}
        for shard_id, args in zip(shard_ids, args_per_shard):
            try:
                self._send(shard_id, (method, args))
                sent.append(shard_id)
            except ClusterError as exc:
                failures[shard_id] = exc
        results_by_id: dict[int, Any] = {}
        for shard_id in sent:
            try:
                results_by_id[shard_id] = self._receive(
                    shard_id, self._connections[shard_id])
            except ClusterError as exc:
                failures[shard_id] = exc
        results = [results_by_id.get(shard_id) for shard_id in shard_ids]
        if failures:
            raise ClusterCallError(method, shard_ids, results, failures)
        return results

    def _call_one(self, shard_id: int, method: str, args: tuple) -> Any:
        self._send(shard_id, (method, args))
        return self._receive(shard_id, self._connections[shard_id])

    def _alive(self, shard_id: int) -> bool:
        return (shard_id not in self._dead
                and self._workers[shard_id].is_alive())

    def _retire_worker(self, shard_id: int) -> None:
        """Stop one worker unconditionally (terminate, then kill)."""
        connection = self._connections[shard_id]
        if shard_id not in self._dead:
            try:
                connection.send(None)
            except (BrokenPipeError, ConnectionError, OSError):
                self._dead.add(shard_id)
        worker = self._workers[shard_id]
        worker.join(timeout=0.2 if shard_id in self._dead else 5.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=1.0)
        if worker.is_alive():
            # SIGTERM stays pending for a stopped (SIGSTOP) worker;
            # SIGKILL acts even on stopped processes.
            worker.kill()
            worker.join(timeout=5.0)
        try:
            connection.close()
        except OSError:
            pass

    def _restart(self, shard_id: int, factory: ShardFactory) -> None:
        self._retire_worker(shard_id)
        self._spawn_worker(shard_id, factory, append=False)
        self._dead.discard(shard_id)
        # Ready handshake: a factory failure in the new worker marks the
        # shard dead again and surfaces as a ClusterError.
        try:
            self._receive(shard_id, self._connections[shard_id])
        except ClusterError:
            self._dead.add(shard_id)
            raise

    def _close(self) -> None:
        for shard_id in range(len(getattr(self, "_connections", []))):
            self._retire_worker(shard_id)
        self._connections = []
        self._workers = []
        self._dead = set()

    def __repr__(self) -> str:
        return (f"ProcessShardExecutor(start_method={self.start_method!r}, "
                f"call_timeout={self.call_timeout!r})")
