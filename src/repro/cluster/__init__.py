"""The sharded cluster layer: LOCATER scaled past one serving process.

Single-node LOCATER is vectorized end to end; the remaining axis of
scale is *across* devices and buildings.  This package turns one
:class:`~repro.system.locater.Locater` into N of them behind the same
query surface:

Architecture
------------

Three orthogonal pieces, each swappable:

* **Router** (:mod:`repro.cluster.router`) — which shard *owns* which
  device.  Ownership covers a device's queries, trained coarse models,
  cleaned-answer storage namespace and cache warm state.  Routers must
  be deterministic and sticky (a moved device strands its models).
  :class:`HashRouter` spreads devices uniformly;
  :class:`BuildingAffinityRouter` keeps a campus building's population
  on one shard so shared-computation memos hit across its query stream.
* **Executor** (:mod:`repro.cluster.executor`) — where shards live and
  how calls reach them.  :class:`SerialShardExecutor` and
  :class:`ThreadShardExecutor` keep shards in-process (sharing the
  cluster's event table object); :class:`ProcessShardExecutor` forks
  one actor worker per shard with a copy-on-write table replica and
  speaks pickled (method, args) over a pipe.  All three return results
  in shard order, so executor choice never changes an answer.
* **Shard** (:mod:`repro.cluster.shard`) — one full ``Locater`` plus,
  for process workers, its own ingestion engine and streaming session.
  Shards are created by the executor from a factory at
  :meth:`ShardedLocater <repro.cluster.sharded.ShardedLocater>`
  construction and torn down by ``close()`` (context manager
  supported); worker sessions unsubscribe from their engines on close,
  so no callback leaks outlive the cluster.

Data placement is the key decision: the event log is **replicated** to
every shard, serving state is **partitioned**.  Cleaning couples
devices through co-location — neighbor discovery, device-affinity
mining and the population aggregate read the whole log — so partial
logs would change answers; replication keeps the load-bearing
invariant instead:

    With any deterministic router, any shard count and any executor,
    cluster answers are bitwise identical to a lone ``Locater`` over
    the same table whenever answers are pure functions of the table
    (caching engine off).  Per-shard caches and storage namespaces
    behave exactly like N independent deployments of the paper system.

Ingest fans out through the same routers: one merge into the
authoritative table stamps ids and re-estimates δ exactly like a lone
engine, the router observes the stamped batch (binding first-seen
devices), each shard's slice of the dirty stream is persisted under its
storage namespace, and shards invalidate surgically via the existing
:meth:`Locater.on_ingest` path (replica shards merge the stamped batch
themselves, reproducing identical ids).

Typical use::

    from repro import ShardedLocater, ThreadShardExecutor

    cluster = ShardedLocater(building, metadata, table, shard_count=4,
                             executor=ThreadShardExecutor())
    answers = cluster.locate_batch(queries)     # partition → merge
    cluster.ingest(new_events)                  # merge once, fan out
    cluster.close()

``examples/campus_cluster.py`` walks a 3-building campus on a 4-shard
cluster with streaming ingest;
``benchmarks/test_bench_cluster.py`` tracks throughput versus shard
count and executor choice.
"""

from repro.cluster.executor import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
)
from repro.cluster.router import (
    BuildingAffinityRouter,
    HashRouter,
    ShardRouter,
    partition_events,
    stable_hash,
)
from repro.cluster.shard import Shard
from repro.cluster.sharded import (
    ClusterBatchState,
    ClusterIngestReport,
    ShardedLocater,
)

__all__ = [
    "BuildingAffinityRouter",
    "ClusterBatchState",
    "ClusterIngestReport",
    "HashRouter",
    "ProcessShardExecutor",
    "SerialShardExecutor",
    "Shard",
    "ShardExecutor",
    "ShardRouter",
    "ShardedLocater",
    "ThreadShardExecutor",
    "partition_events",
    "stable_hash",
]
