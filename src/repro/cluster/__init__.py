"""The sharded cluster layer: LOCATER scaled past one serving process.

Single-node LOCATER is vectorized end to end; the remaining axis of
scale is *across* devices and buildings.  This package turns one
:class:`~repro.system.locater.Locater` into N of them behind the same
query surface:

Architecture
------------

Three orthogonal pieces, each swappable:

* **Router** (:mod:`repro.cluster.router`) — which shard *owns* which
  device.  Ownership covers a device's queries, trained coarse models,
  cleaned-answer storage namespace and cache warm state.  Routers must
  be deterministic, and route upgrades happen only at ingest
  boundaries, where the cluster migrates what a move would strand
  (stored answers, recorded cache edges).  :class:`HashRouter` spreads
  devices uniformly; :class:`BuildingAffinityRouter` keeps a campus
  building's population on one shard so shared-computation memos hit
  across its query stream; :class:`ComponentAffinityRouter` co-locates
  whole affinity components, which is what makes per-shard caching
  exact (below).
* **Executor** (:mod:`repro.cluster.executor`) — where shards live and
  how calls reach them.  :class:`SerialShardExecutor` and
  :class:`ThreadShardExecutor` keep shards in-process (sharing the
  cluster's event table object); :class:`ProcessShardExecutor` forks
  one actor worker per shard with a copy-on-write table replica and
  speaks pickled (method, args) over a pipe.  All three return results
  in shard order, so executor choice never changes an answer.
* **Shard** (:mod:`repro.cluster.shard`) — one full ``Locater`` plus,
  for process workers, its own ingestion engine and streaming session.
  Shards are created by the executor from a factory at
  :meth:`ShardedLocater <repro.cluster.sharded.ShardedLocater>`
  construction and torn down by ``close()`` (context manager
  supported); worker sessions unsubscribe from their engines on close,
  so no callback leaks outlive the cluster.

Data placement is the key decision: the event log is **replicated** to
every shard, serving state is **partitioned**.  Cleaning couples
devices through co-location — neighbor discovery, device-affinity
mining and the population aggregate read the whole log — so partial
logs would change answers; replication keeps the load-bearing
invariant instead:

    With any deterministic router, any shard count and any executor,
    cluster answers are bitwise identical to a lone ``Locater`` over
    the same table whenever answers are pure functions of the table.

The §5 caching engine is deliberate cross-query warm state, not a pure
function of the table — and the cluster keeps the invariant anyway,
through the **component-routing contract**: the global affinity graph
only ever couples devices inside a connected component of the
potential co-presence graph (two devices can share an affinity edge
only if their observed APs' room coverage intersects, the precondition
for ever being neighbors).  The
:class:`~repro.cluster.router.ComponentAffinityRouter` co-locates
every device of a component on one shard, so each per-shard cache
performs exactly the edge reads and writes — in exactly the order —
of a lone deployment: **intra-component caching is exact**, bitwise,
including the aggregated hit/miss counters
(:meth:`ShardedLocater.cache_stats
<repro.cluster.sharded.ShardedLocater.cache_stats>` sums them
None-safely).  When growing logs merge two components at an ingest
boundary, the router re-keys the affected devices and the cluster runs
its edge-exchange protocol: recorded edge vectors incident to moved
devices are extracted from their old shards and re-inserted on the new
owner, observation order preserved, and the devices' stale namespaced
answers are cleared.  Residual *cut* edges (only reachable through
pathological coarse fallbacks that place a device outside its own
observed coverage) stay best-effort: a shard consulting an edge it
never recorded treats it as unseen.  Under any *other* router, per-
shard caches warm like N independent paper deployments — run those
configurations with the caching engine off when bitwise equality to a
lone system matters.

Ingest fans out through the same routers: one merge into the
authoritative table stamps ids and re-estimates δ exactly like a lone
engine, the router observes the stamped batch (binding first-seen
devices and reporting re-keyed ones for migration), each shard's slice
of the dirty stream is persisted under its storage namespace, and
shards invalidate surgically via the existing
:meth:`Locater.on_ingest` path (replica shards merge the stamped batch
themselves, reproducing identical ids).

Typical use::

    from repro import ShardedLocater, ThreadShardExecutor

    cluster = ShardedLocater(building, metadata, table, shard_count=4,
                             executor=ThreadShardExecutor())
    answers = cluster.locate_batch(queries)     # partition → merge
    cluster.ingest(new_events)                  # merge once, fan out
    cluster.close()

``locate_batch``/``ingest`` are the synchronous surface.  To serve the
cluster to *concurrent* callers — coalescing individual ``locate``
calls into per-shard micro-batches behind a bounded admission queue —
front it with :class:`~repro.serve.AsyncGateway` from
:mod:`repro.serve`; the gateway reuses :meth:`ShardedLocater.locate_slice
<repro.cluster.sharded.ShardedLocater.locate_slice>` and
:meth:`shard_of <repro.cluster.sharded.ShardedLocater.shard_of>` so
its windows land on the owning shard with warm state, and its journal
replays bitwise against this package's equivalence oracles (see the
"Serving architecture" section of :mod:`repro`).

Operating a cluster under failure
---------------------------------

Pass ``recovery=RecoveryPolicy()`` to :class:`ShardedLocater
<repro.cluster.sharded.ShardedLocater>` and the cluster serves through
worker crashes instead of surfacing them:

* **Detection** (:mod:`repro.cluster.executor`) — every pipe failure is
  typed: a dead worker raises
  :class:`~repro.errors.ShardUnavailableError` (with exit-code
  forensics: ``killed by SIGKILL``, ``exit code 1``...), a silent one
  raises :class:`~repro.errors.ShardTimeoutError` once the executor's
  ``call_timeout`` elapses (a timed-out pipe is desynchronized, so the
  shard is marked dead until restarted), and fan-out failures aggregate
  into one :class:`~repro.errors.ClusterCallError` naming every failed
  shard while keeping the survivors' results.
* **Recovery** (:mod:`repro.cluster.supervision`) — the
  :class:`~repro.cluster.supervision.ShardSupervisor` retries transient
  failures under the policy's restart budget with deterministic
  backoff, resurrects the shard from its factory, and restores the §5
  cache from the last post-operation checkpoint.  Shard state outside
  the cache is a pure function of the replicated log, so a resurrected
  shard answers **bitwise identically** to one that never died — cache
  contents and hit/miss counters included — as long as the crash fell
  between operations (the checkpoint granularity; a crash *inside* an
  operation loses at most that operation's cache delta, never answer
  correctness).  Every restart is recorded as a
  :class:`~repro.cluster.supervision.RecoveryEvent`.
* **Degradation** — a shard that exhausts its restart budget is
  quarantined.  ``RecoveryPolicy(degraded="error")`` (default) raises
  :class:`~repro.errors.ShardQuarantinedError` for queries routed to
  it; ``degraded="fallback"`` answers them from an in-process
  caching-off ``Locater`` over the authoritative table — correct
  answers, reduced throughput.  Surviving shards are untouched either
  way (their answers stay bitwise identical).
* **Chaos harness** (:mod:`repro.cluster.faults`) — a
  :class:`~repro.cluster.faults.FaultPlan` scripts kill/hang/corrupt
  faults at exact dispatch indices and the
  :class:`~repro.cluster.faults.FaultInjectingExecutor` wraps any real
  executor to fire them deterministically, which is what lets the test
  suite assert *bitwise* recovery rather than probabilistic survival.
* **Crash-safe shared memory** — segment names embed the owner pid, so
  :func:`repro.events.purge_orphan_segments` can reclaim segments
  orphaned by a hard-killed owner.

``examples/fault_tolerant_cluster.py`` scripts a mid-workload worker
kill and shows the cluster recovering to bitwise-identical answers;
``benchmarks/test_bench_cluster_recovery.py`` measures recovery latency
and degraded-mode availability.

Typical use::

    from repro import RecoveryPolicy, ShardedLocater

    cluster = ShardedLocater(building, metadata, table, shard_count=4,
                             executor=ProcessShardExecutor(),
                             recovery=RecoveryPolicy(max_restarts=2))
    answers = cluster.locate_batch(queries)   # survives worker crashes
    cluster.recovery_events                   # what happened, when

``examples/campus_cluster.py`` walks a 3-building campus on a 4-shard
cluster with streaming ingest; ``examples/cluster_caching.py`` shows
caching-on cluster serving under the component router;
``benchmarks/test_bench_cluster.py`` tracks throughput versus shard
count and executor choice, and
``benchmarks/test_bench_cluster_caching.py`` tracks the Fig. 9/12
cache effect (hit rate, on/off serving ratio) at cluster scale.
"""

from repro.cluster.executor import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
)
from repro.cluster.faults import (
    Fault,
    FaultInjectingExecutor,
    FaultPlan,
)
from repro.cluster.router import (
    BuildingAffinityRouter,
    ComponentAffinityRouter,
    HashRouter,
    ShardRouter,
    partition_events,
    stable_hash,
)
from repro.cluster.shard import Shard
from repro.cluster.sharded import (
    ClusterBatchState,
    ClusterCacheStats,
    ClusterIngestReport,
    ShardedLocater,
)
from repro.cluster.supervision import (
    RecoveryEvent,
    RecoveryPolicy,
    ShardSupervisor,
)

__all__ = [
    "BuildingAffinityRouter",
    "ClusterBatchState",
    "ClusterCacheStats",
    "ClusterIngestReport",
    "ComponentAffinityRouter",
    "Fault",
    "FaultInjectingExecutor",
    "FaultPlan",
    "HashRouter",
    "ProcessShardExecutor",
    "RecoveryEvent",
    "RecoveryPolicy",
    "SerialShardExecutor",
    "Shard",
    "ShardExecutor",
    "ShardRouter",
    "ShardSupervisor",
    "ShardedLocater",
    "ThreadShardExecutor",
    "partition_events",
    "stable_hash",
]
