"""One shard of a cluster: a full ``Locater`` serving its owned devices.

A shard wraps everything one serving slice needs — the cleaning system,
optionally its own ingestion engine — behind the small method surface
the executors dispatch to (see :mod:`repro.cluster.executor`).  Shards
come in two wirings, chosen by the cluster from the executor's
placement:

* **shared-table** (in-process executors): every shard's ``Locater``
  reads the *same* :class:`~repro.events.table.EventTable` object.  The
  cluster merges each ingest batch once and fans the resulting
  :class:`~repro.system.ingestion.IngestReport` out to
  :meth:`Shard.on_ingest`, which invalidates that shard's models.
* **replica** (process executor): the shard lives in a forked worker
  with a private copy of the table and owns a
  :class:`~repro.system.streaming.StreamingSession` over it, so
  :meth:`Shard.ingest_events` merges the stamped batch into the replica
  and prunes the shard's persistent memos, exactly like a single-node
  streaming deployment would.  Event ids arrive already stamped by the
  cluster and the replica engine re-derives identical ids (same seed,
  same order), keeping replicas bitwise interchangeable.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.errors import ClusterError
from repro.events.event import ConnectivityEvent
from repro.system.ingestion import IngestionEngine, IngestReport
from repro.system.locater import (
    BatchState,
    InvalidationSummary,
    Locater,
    LocationAnswer,
)
from repro.system.planner import DEFAULT_BUCKET_SECONDS
from repro.system.query import LocationQuery
from repro.system.streaming import StreamingSession


class Shard:
    """One slice of a :class:`~repro.cluster.sharded.ShardedLocater`.

    Args:
        shard_id: Position in the cluster (also the storage namespace
            the cluster derived for this shard).
        locater: The cleaning system; shares the cluster's table in
            shared-table wiring, owns a replica in worker processes.
        engine: In replica wiring, the shard's own ingestion engine over
            its table; the shard then runs a persistent
            :class:`StreamingSession` so repeated bursts share memos and
            every ingest prunes them.  None in shared-table wiring.
    """

    def __init__(self, shard_id: int, locater: Locater,
                 engine: "IngestionEngine | None" = None) -> None:
        self.shard_id = shard_id
        self.locater = locater
        self._session = StreamingSession(locater, engine) \
            if engine is not None else None

    @property
    def is_replica(self) -> bool:
        """Whether this shard owns a private table replica."""
        return self._session is not None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def locate_query(self, query: LocationQuery) -> LocationAnswer:
        """Answer one query (the cluster routed it here)."""
        return self.locater.locate_query(query)

    def locate_batch(self, queries: Sequence[LocationQuery],
                     bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                     collect_timings: bool = False,
                     share_computation: bool = True,
                     state: "BatchState | None" = None
                     ) -> "tuple[list[LocationAnswer], list[tuple[int, float]] | None]":
        """Answer this shard's slice of a batch.

        Returns the answers in slice order plus, when requested, the
        per-query timings as (slice index, seconds) pairs — the cluster
        maps both back to the caller's input indices.  A replica shard
        substitutes its session's persistent state when none is given,
        so streaming bursts keep their memos warm worker-side.
        """
        timings: "list[tuple[int, float]] | None" = \
            [] if collect_timings else None
        if state is None and self._session is not None and share_computation:
            state = self._session.state
        answers = self.locater.locate_batch(
            queries, bucket_seconds=bucket_seconds, timings=timings,
            share_computation=share_computation, state=state)
        return answers, timings

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def on_ingest(self, report: IngestReport) -> InvalidationSummary:
        """Shared-table wiring: the cluster merged; invalidate locally."""
        if self._session is not None:
            raise ClusterError(
                "replica shards merge events themselves; send the batch "
                "via ingest_events")
        return self.locater.on_ingest(report)

    def ingest_events(self, events: Sequence[ConnectivityEvent]
                      ) -> IngestReport:
        """Replica wiring: merge a stamped batch into the private table."""
        if self._session is None:
            raise ClusterError(
                "shared-table shards do not merge events; the cluster "
                "ingests once and fans out on_ingest")
        return self._session.ingest(events)

    def apply_table_sync(self, payload, report: IngestReport
                         ) -> InvalidationSummary:
        """Attached wiring: advance the shared-memory view, invalidate.

        The authoritative process merged the batch and published new
        segments; ``payload`` (:class:`~repro.events.table.TableSync`)
        swaps them into this shard's attached table and ``report`` — the
        owner's merge report, bitwise what a local engine would have
        produced — then drives the same invalidation + memo pruning a
        replica's own merge would.
        """
        table = self.locater.table
        if self._session is None or not table.store.is_attached:
            raise ClusterError(
                "apply_table_sync targets shards serving an attached "
                "shared-memory table view")
        table.apply_sync(payload)
        return self._session.observe_report(report)

    # ------------------------------------------------------------------
    # Cache edge exchange
    # ------------------------------------------------------------------
    def export_cache_edges(self, macs: Sequence[str]
                           ) -> "list[tuple[str, str, list[tuple[float, float]]]]":
        """Extract every recorded affinity edge incident to ``macs``.

        One half of the cluster's edge-exchange protocol (see
        :meth:`GlobalAffinityGraph.extract_edges
        <repro.cache.global_graph.GlobalAffinityGraph.extract_edges>`):
        when the router re-keys devices, the cluster pulls their edge
        vectors from whichever shard recorded them.  Plain-tuple
        payload, so it crosses process executors' pickled pipes.
        Empty when this shard runs with caching off.
        """
        cache = self.locater.cache
        if cache is None or not macs:
            return []
        return cache.graph.extract_edges(macs)

    def import_cache_edges(self, edges: "Sequence[tuple[str, str, list[tuple[float, float]]]]"
                           ) -> int:
        """Insert extracted edge vectors; the protocol's other half."""
        cache = self.locater.cache
        if cache is None or not edges:
            return 0
        return cache.graph.insert_edges(edges)

    def export_cache_state(self) -> "dict | None":
        """Snapshot the full caching state (non-destructive checkpoint).

        The supervision layer calls this after successful operations;
        :meth:`import_cache_state` on a freshly resurrected shard
        restores the snapshot, making post-recovery cache contents *and*
        hit/miss counters bitwise-identical to a shard that never died.
        ``None`` when caching is off (nothing to restore).  Plain-tuple
        edges payload, so it crosses process executors' pickled pipes.
        """
        cache = self.locater.cache
        if cache is None:
            return None
        return {
            "edges": cache.graph.snapshot_edges(),
            "hits": cache.hits,
            "misses": cache.misses,
        }

    def import_cache_state(self, state: "dict | None") -> None:
        """Restore a :meth:`export_cache_state` snapshot after restart."""
        cache = self.locater.cache
        if cache is None or state is None:
            return
        cache.graph.clear()
        cache.graph.insert_edges(state["edges"])
        cache.hits = state["hits"]
        cache.misses = state["misses"]

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def ping(self) -> int:
        """Liveness probe: answers with the shard id (supervision)."""
        return self.shard_id

    def cache_stats(self) -> "dict[str, int] | None":
        """The shard's caching-engine counters (None when caching off)."""
        cache = self.locater.cache
        return cache.stats() if cache is not None else None

    def stats(self) -> dict[str, int]:
        """Serving counters: table size plus session ingest counts."""
        out = {
            "shard_id": self.shard_id,
            "events": len(self.locater.table),
            "devices": self.locater.table.device_count,
        }
        if self._session is not None:
            out["ingests"] = self._session.ingests
            out["full_invalidations"] = self._session.full_invalidations
        return out

    def table_memory(self) -> dict:
        """This shard's event-table memory accounting (benchmarks).

        Combines the column store's logical byte accounting (exact — the
        quantity the shared-vs-replicated comparison is judged on) with
        the process's ``VmRSS`` as an auxiliary physical signal; RSS
        alone is dishonest under fork, where copy-on-write pages are
        counted in every child until written.
        """
        out = self.locater.table.memory_stats()
        out["pid"] = os.getpid()
        try:
            with open("/proc/self/status", encoding="ascii") as status:
                for line in status:
                    if line.startswith("VmRSS:"):
                        out["rss_kb"] = int(line.split()[1])
                        break
        except OSError:
            pass
        return out

    def close(self) -> None:
        """Detach the session; unmap an attached table view.  Idempotent.

        Never touches a shared-table (in-process) or replica table's
        store — those belong to the cluster / die with the worker — but
        an attached view's mappings are explicitly closed so worker
        shutdown never depends on GC ordering against live segments.
        """
        if self._session is not None:
            self._session.close()
        if self.locater.table.store.is_attached:
            self.locater.table.close()
