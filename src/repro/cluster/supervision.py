"""Shard supervision: failure detection, recovery, quarantine.

The executor layer (:mod:`repro.cluster.executor`) *detects* failures —
a dead worker surfaces as :class:`~repro.errors.ShardUnavailableError`,
a hung one as :class:`~repro.errors.ShardTimeoutError`, a fan-out with
failures as one :class:`~repro.errors.ClusterCallError` carrying the
partial results.  This module *reacts*: the
:class:`ShardSupervisor` wraps an executor's dispatch surface and turns
transient shard deaths into deterministic resurrections.

Why recovery can be exact here: every shard's serving state is a pure
function of the replicated event log (the bitwise-equivalence invariant
PRs 1–8 enforce), except the §5 cache, whose contents depend on query
*history*.  So resurrection is: rebuild the shard from the factory (a
re-fork inherits the current merged table; an attached worker maps the
owner's current segments; models retrain lazily on the next batch
pre-pass), restore the cache from the supervisor's last checkpoint, and
re-dispatch *only the failed shard's slice* of the interrupted call —
never the survivors', which would double-count their cache counters.
The chaos suite proves post-recovery answers and summed cache counters
bitwise-identical to an uninterrupted cluster.

The determinism caveat, stated honestly: checkpoints are taken at
operation boundaries, so the exactness proof covers crashes *between*
operations and crashes that destroy a worker mid-call before it mutated
anything the parent can see (always true for process shards — their
state is private and dies with them).  A crash landing exactly between
an operation completing and its checkpoint being taken loses that one
operation's cache delta: answers stay correct (the cache is an
optimization), but counters may drift from the uninterrupted run.

No wall-clock enters any answer path (RL002): backoff delays come from
a fixed, configured schedule, and recovery latency is *measured* with
``time.perf_counter`` for observability only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.cluster.executor import ShardExecutor, ShardFactory
from repro.errors import (
    ClusterCallError,
    ClusterError,
    ConfigurationError,
    ShardQuarantinedError,
    ShardTimeoutError,
    ShardUnavailableError,
)

#: Failures that mean "the worker is gone / wedged" rather than "the
#: shard code raised" — the only failures recovery may absorb.  A
#: shard-side exception (a bug) must surface, not be retried.
TRANSIENT_ERRORS = (ShardUnavailableError, ShardTimeoutError)

#: Methods that must *not* be re-dispatched to a freshly resurrected
#: shard: its factory already rebuilt it from the merged authoritative
#: table (re-fork inherits it; an attached worker maps the current
#: segments), so replaying the ingest-time invalidation would be
#: redundant at best and a double-merge at worst.  The cluster ignores
#: these fan-outs' per-shard results, so the skipped slot is safe.
SKIP_AFTER_RESTART = frozenset(
    {"on_ingest", "ingest_events", "apply_table_sync"})


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """How a cluster responds to shard failures.

    Attributes:
        max_restarts: Restart budget *per shard*; a shard that fails
            after exhausting it is quarantined (its devices degrade per
            ``degraded``; every other shard keeps serving untouched).
        backoff: Deterministic delay schedule in seconds: restart k of a
            shard sleeps ``backoff[min(k, len-1)]`` first.  A fixed
            schedule, not jittered wall-clock — answer paths stay
            deterministic (RL002).
        call_timeout: Seconds a process-shard call may take before the
            worker is declared hung (None: wait forever).  Applied to
            the cluster's :class:`ProcessShardExecutor` at construction.
        checkpoint_cache: Snapshot each shard's §5 cache state after
            successful operations so resurrection restores contents and
            hit/miss counters bitwise (costs one extra round-trip per
            shard per operation; irrelevant when caching is off).
        degraded: What a quarantined shard's devices get —
            ``"error"`` raises :class:`~repro.errors.ShardQuarantinedError`
            per query; ``"fallback"`` serves them from a parent-side
            cache-less ``Locater`` over the authoritative table (full
            answer quality, no warm state).
    """

    max_restarts: int = 2
    backoff: tuple[float, ...] = (0.0, 0.05, 0.2)
    call_timeout: "float | None" = None
    checkpoint_cache: bool = True
    degraded: str = "error"

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        if any(delay < 0 for delay in self.backoff):
            raise ConfigurationError(
                f"backoff delays must be >= 0, got {self.backoff}")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ConfigurationError(
                f"call_timeout must be positive, got {self.call_timeout}")
        if self.degraded not in ("error", "fallback"):
            raise ConfigurationError(
                f"degraded must be 'error' or 'fallback', "
                f"got {self.degraded!r}")

    def delay_for(self, restart_index: int) -> float:
        """Backoff before restart number ``restart_index`` (0-based)."""
        if not self.backoff:
            return 0.0
        return self.backoff[min(restart_index, len(self.backoff) - 1)]


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """One recovery episode, for observability and the recovery bench.

    Attributes:
        shard_id: The shard that failed.
        method: The dispatch that surfaced the failure.
        error: The failure, rendered (the exception object may hold
            unpicklable context).
        restarts: The shard's cumulative restart count after this
            episode.
        outcome: ``"recovered"`` or ``"quarantined"``.
        duration_seconds: Wall time of the episode (detection to
            recovered shard), measured with ``perf_counter`` —
            observability only, never an answer-path input.
    """

    shard_id: int
    method: str
    error: str
    restarts: int
    outcome: str
    duration_seconds: float


class ShardSupervisor:
    """Retry/restart/quarantine loop over an executor's dispatch surface.

    Args:
        executor: The started executor to supervise.  The supervisor
            never owns its lifecycle — the cluster still closes it.
        policy: The :class:`RecoveryPolicy` (default: defaults).
        factory_provider: Called at each restart for a *fresh* shard
            factory (None: the executor reuses the factory it was
            started with).  The attached-table cluster needs this — a
            resurrection must map the table's *current* segments, not
            the ones described at start time.
        checkpoints: Enable cache checkpointing (the cluster turns this
            off when caching is off; the export round-trips would all
            answer None).
        on_restart: Called with the shard id after each successful
            resurrection (the cluster uses it to keep parent-side
            wiring in step).
    """

    def __init__(self, executor: ShardExecutor,
                 policy: "RecoveryPolicy | None" = None,
                 factory_provider: "Callable[[], ShardFactory] | None" = None,
                 checkpoints: bool = True,
                 on_restart: "Callable[[int], None] | None" = None) -> None:
        self._executor = executor
        self._policy = policy if policy is not None else RecoveryPolicy()
        self._factory_provider = factory_provider
        self._checkpoints_enabled = checkpoints and \
            self._policy.checkpoint_cache
        self._on_restart = on_restart
        self._restarts: dict[int, int] = {}
        self._quarantined: set[int] = set()
        self._checkpoints: dict[int, Any] = {}
        #: Every recovery episode, in order (the recovery bench reads
        #: latency stats straight off this).
        self.events: list[RecoveryEvent] = []

    # ------------------------------------------------------------------
    @property
    def policy(self) -> RecoveryPolicy:
        """The active recovery policy."""
        return self._policy

    @property
    def quarantined(self) -> frozenset[int]:
        """Shards whose restart budget is exhausted (devices offline)."""
        return frozenset(self._quarantined)

    @property
    def restarts(self) -> dict[int, int]:
        """Cumulative restart count per shard (only shards that failed)."""
        return dict(self._restarts)

    def ping(self) -> list[bool]:
        """Liveness per shard: can it answer a call right now?

        A probe, not a recovery trigger — a dead shard reads ``False``
        here and is resurrected by the next supervised call that needs
        it.  Quarantined shards read ``False`` forever.
        """
        alive = []
        for shard_id in range(self._executor.shard_count):
            if shard_id in self._quarantined:
                alive.append(False)
                continue
            try:
                self._executor.call_one(shard_id, "ping")
                alive.append(True)
            except TRANSIENT_ERRORS:
                alive.append(False)
        return alive

    # ------------------------------------------------------------------
    # Supervised dispatch
    # ------------------------------------------------------------------
    def call_one(self, shard_id: int, method: str, *args: Any) -> Any:
        """Dispatch to one shard, recovering it across transient faults.

        Raises :class:`~repro.errors.ShardQuarantinedError` when the
        shard is (or becomes) quarantined.  For
        :data:`SKIP_AFTER_RESTART` methods a successful recovery returns
        None instead of re-dispatching (see that constant's rationale).
        """
        if shard_id in self._quarantined:
            raise ShardQuarantinedError(
                shard_id, f"shard {shard_id} is quarantined "
                f"(restart budget of {self._policy.max_restarts} exhausted)")
        while True:
            try:
                return self._executor.call_one(shard_id, method, *args)
            except TRANSIENT_ERRORS as exc:
                if not self._recover(shard_id, method, exc):
                    raise ShardQuarantinedError(
                        shard_id,
                        f"shard {shard_id} quarantined after "
                        f"{self._policy.max_restarts} restart(s): {exc}"
                    ) from exc
                if method in SKIP_AFTER_RESTART:
                    return None

    def call_all(self, method: str,
                 args_per_shard: "Sequence[tuple] | None" = None
                 ) -> list[Any]:
        """Fan out to every non-quarantined shard, recovering failures.

        Returns one slot per shard in shard order.  A slot is None when
        its shard is quarantined (before or during the call) or when
        the method is in :data:`SKIP_AFTER_RESTART` and the shard had to
        be resurrected mid-call.  Survivor slots are computed exactly
        once — failed shards are retried *alone*, so survivors' cache
        counters never double-count.
        """
        count = self._executor.shard_count
        if args_per_shard is None:
            args_per_shard = [()] * count
        if len(args_per_shard) != count:
            raise ConfigurationError(
                f"need {count} argument tuples, got {len(args_per_shard)}")
        results: list[Any] = [None] * count
        pending = [(shard_id, args)
                   for shard_id, args in enumerate(args_per_shard)
                   if shard_id not in self._quarantined]
        while pending:
            ids = [shard_id for shard_id, _ in pending]
            try:
                out = self._executor.call_some(
                    ids, method, [args for _, args in pending])
            except ClusterCallError as exc:
                args_by_id = dict(pending)
                for shard_id, result in zip(exc.shard_ids, exc.results):
                    if shard_id not in exc.failures:
                        results[shard_id] = result
                retry = []
                for shard_id in sorted(exc.failures):
                    error = exc.failures[shard_id]
                    if not isinstance(error, TRANSIENT_ERRORS):
                        # A shard-side exception is a bug, not an
                        # outage; the aggregate (with partial results)
                        # surfaces to the caller.
                        raise
                    if self._recover(shard_id, method, error) and \
                            method not in SKIP_AFTER_RESTART:
                        retry.append((shard_id, args_by_id[shard_id]))
                pending = retry
            else:
                for shard_id, result in zip(ids, out):
                    results[shard_id] = result
                pending = []
        return results

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, shard_ids: "Iterable[int] | None" = None) -> None:
        """Snapshot shards' cache state (post-operation).

        Called by the cluster after each successful cache-mutating
        operation, scoped to the shards that operation could have
        mutated (default: all).  A shard found dead here is resurrected
        first (its previous checkpoint still describes its restored
        state, so re-exporting after recovery stays consistent).
        """
        if not self._checkpoints_enabled:
            return
        targets = sorted(shard_ids) if shard_ids is not None \
            else range(self._executor.shard_count)
        for shard_id in targets:
            if shard_id in self._quarantined:
                continue
            try:
                state = self.call_one(shard_id, "export_cache_state")
            except ShardQuarantinedError:
                continue
            if state is not None:
                self._checkpoints[shard_id] = state

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, shard_id: int, method: str,
                 error: Exception) -> bool:
        """Resurrect one shard; False (and quarantine) on budget exhaust.

        Deterministic sequence: deterministic backoff sleep → rebuild
        the worker/shard from the factory → restore the last cache
        checkpoint → notify ``on_restart``.  A restart that itself
        fails (e.g. the replacement dies during handshake) consumes
        budget and loops.
        """
        started = time.perf_counter()
        while True:
            done = self._restarts.get(shard_id, 0)
            if done >= self._policy.max_restarts:
                self._quarantined.add(shard_id)
                self.events.append(RecoveryEvent(
                    shard_id=shard_id, method=method, error=str(error),
                    restarts=done, outcome="quarantined",
                    duration_seconds=time.perf_counter() - started))
                return False
            delay = self._policy.delay_for(done)
            if delay > 0:
                time.sleep(delay)
            self._restarts[shard_id] = done + 1
            try:
                factory = self._factory_provider() \
                    if self._factory_provider is not None else None
                self._executor.restart_shard(shard_id, factory)
                state = self._checkpoints.get(shard_id)
                if state is not None:
                    self._executor.call_one(
                        shard_id, "import_cache_state", state)
                if self._on_restart is not None:
                    self._on_restart(shard_id)
            except ClusterError as exc:
                error = exc
                continue
            self.events.append(RecoveryEvent(
                shard_id=shard_id, method=method, error=str(error),
                restarts=self._restarts[shard_id], outcome="recovered",
                duration_seconds=time.perf_counter() - started))
            return True

    def __repr__(self) -> str:
        return (f"ShardSupervisor(policy={self._policy!r}, "
                f"quarantined={sorted(self._quarantined)!r})")
