"""Deterministic fault injection for the cluster layer.

Chaos testing is only convincing when it is *reproducible*: a fault
that fires "sometime during the workload" proves nothing bitwise.  This
module injects failures at **scripted dispatch indices** instead — a
:class:`FaultPlan` lists exactly which shard dies (or hangs, or
corrupts its reply) on exactly which call, and the
:class:`FaultInjectingExecutor` wrapper fires each fault at the dispatch
boundary, *before* the command reaches the shard.  Both sides of a
chaos-equivalence test therefore see identical operation sequences: the
faulted cluster performs the same merges, the same query slices and the
same cache mutations as the uninterrupted control — plus the injected
deaths — so "recovery restored bitwise-identical state" is a checkable
equality, not a statistical claim.

Fault kinds:

* ``"kill"`` — process shards: the worker is SIGKILLed and reaped
  before the dispatch, so the executor observes a deterministic dead
  pipe.  In-process shards: the shard is marked *simulated-dead*; every
  dispatch raises :class:`~repro.errors.ShardUnavailableError` until
  :meth:`FaultInjectingExecutor.restart_shard` rebuilds the shard object
  from the factory — faithfully losing its warm state, like a real
  crash.
* ``"hang"`` — process shards: the worker is SIGSTOPped; the dispatch
  then times out (the inner executor must have ``call_timeout`` set).
  In-process shards: the dispatch raises
  :class:`~repro.errors.ShardTimeoutError` directly and the shard is
  marked dead (a timed-out pipe may never be reused — same contract as
  the real executor).
* ``"corrupt"`` — the shard's reply is discarded and replaced with a
  plain :class:`~repro.errors.ClusterError`: a *non-transient* failure,
  which supervision must propagate rather than retry (retrying
  corruption would launder wrong bytes into the serving path).
"""

from __future__ import annotations

import contextlib
import os
import signal
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Any

from repro.cluster.executor import ShardExecutor, ShardFactory
from repro.errors import (
    ClusterCallError,
    ClusterError,
    ConfigurationError,
    ShardTimeoutError,
    ShardUnavailableError,
)

FAULT_KINDS = ("kill", "hang", "corrupt")


@dataclass(frozen=True, slots=True)
class Fault:
    """One scripted failure.

    Attributes:
        shard_id: The shard the fault targets.
        kind: ``"kill"``, ``"hang"`` or ``"corrupt"`` (see module docs).
        method: Only dispatches of this method count (None: any method).
        call_index: Fire on the ``call_index``-th *matching* dispatch to
            that shard (0-based), counted from plan construction; every
            matching dispatch — including ones where another fault fired
            — advances the count.
    """

    shard_id: int
    kind: str = "kill"
    method: "str | None" = None
    call_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, "
                f"got {self.kind!r}")
        if self.shard_id < 0:
            raise ConfigurationError(
                f"shard_id must be >= 0, got {self.shard_id}")
        if self.call_index < 0:
            raise ConfigurationError(
                f"call_index must be >= 0, got {self.call_index}")


class FaultPlan:
    """An ordered script of faults, consumed as dispatches match.

    Deterministic by construction: matching is a pure function of the
    dispatch sequence (shard id + method name), never of timing.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._pending: list[list] = [
            [fault, fault.call_index] for fault in faults]
        #: Faults that have fired, in firing order.
        self.fired: list[Fault] = []

    @property
    def pending(self) -> list[Fault]:
        """Faults not yet fired, in plan order."""
        return [fault for fault, _ in self._pending]

    @property
    def exhausted(self) -> bool:
        """Whether every scripted fault has fired."""
        return not self._pending

    def take(self, shard_id: int, method: str) -> "Fault | None":
        """The fault firing on this dispatch, if any (consumes it)."""
        hit: "Fault | None" = None
        for entry in self._pending:
            fault, remaining = entry
            if fault.shard_id != shard_id:
                continue
            if fault.method is not None and fault.method != method:
                continue
            if remaining == 0 and hit is None:
                hit = fault
                entry[1] = -1  # consumed
            else:
                entry[1] = remaining - 1 if remaining > 0 else 0
        if hit is not None:
            self._pending = [entry for entry in self._pending
                             if entry[1] >= 0]
            self.fired.append(hit)
        return hit

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (f"FaultPlan(pending={len(self._pending)}, "
                f"fired={len(self.fired)})")


class FaultInjectingExecutor:
    """Wraps any executor, firing a :class:`FaultPlan` at its boundary.

    Exposes the full :class:`~repro.cluster.executor.ShardExecutor`
    dispatch surface by delegation, so it drops into
    ``ShardedLocater(executor=...)`` (and under a
    :class:`~repro.cluster.supervision.ShardSupervisor`) unchanged.
    Failures are reported with the real executor's types and — for
    fan-outs — the real aggregation contract
    (:class:`~repro.errors.ClusterCallError` with partial results), so
    supervision cannot tell injected faults from genuine ones.
    """

    def __init__(self, inner: ShardExecutor, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        if not inner.in_process and \
                getattr(inner, "call_timeout", None) is None and \
                any(fault.kind == "hang" for fault in plan.pending):
            raise ConfigurationError(
                "hang faults against a process executor need "
                "call_timeout set on it, or the hung dispatch would "
                "block forever")
        self._sim_dead: set[int] = set()

    # -- delegated surface ---------------------------------------------
    @property
    def in_process(self) -> bool:
        return self.inner.in_process

    @property
    def shard_count(self) -> int:
        return self.inner.shard_count

    @property
    def shards(self) -> list[Any]:
        return self.inner.shards

    def start(self, factory: ShardFactory, shard_count: int) -> None:
        self.inner.start(factory, shard_count)

    def close(self) -> None:
        self.inner.close()

    def alive(self, shard_id: int) -> bool:
        return shard_id not in self._sim_dead and self.inner.alive(shard_id)

    def restart_shard(self, shard_id: int,
                      factory: "ShardFactory | None" = None) -> None:
        # Rebuilding the shard object (in-process) / worker (process)
        # from the factory loses its warm state exactly like a real
        # crash would; clearing the simulated-death mark afterwards
        # mirrors the real executor clearing its dead set.
        self.inner.restart_shard(shard_id, factory)
        self._sim_dead.discard(shard_id)

    def __getattr__(self, name: str) -> Any:
        # Everything else (start_method, call_timeout, repr helpers...)
        # reads through to the wrapped executor.
        return getattr(self.inner, name)

    # -- fault application ---------------------------------------------
    def _unavailable(self, shard_id: int) -> ShardUnavailableError:
        return ShardUnavailableError(
            shard_id, f"shard worker {shard_id} died (injected kill)")

    def _fire(self, fault: Fault) -> "Exception | None":
        """Apply one fault; the error to report, or None (process kill /
        hang, where the *inner* executor detects the dead or silent
        worker and reports with its own exit-code inspection)."""
        if fault.kind == "corrupt":
            return ClusterError(
                f"shard {fault.shard_id} returned a corrupted reply "
                f"(injected fault)")
        if self.inner.in_process:
            self._sim_dead.add(fault.shard_id)
            if fault.kind == "hang":
                return ShardTimeoutError(
                    fault.shard_id,
                    f"shard worker {fault.shard_id} did not answer "
                    f"(injected hang; restart required)")
            return self._unavailable(fault.shard_id)
        worker = self.inner._workers[fault.shard_id]
        if fault.kind == "kill":
            with contextlib.suppress(ProcessLookupError):
                os.kill(worker.pid, signal.SIGKILL)
            worker.join(timeout=5.0)  # reaped → deterministic dead pipe
        else:  # hang
            with contextlib.suppress(ProcessLookupError):
                os.kill(worker.pid, signal.SIGSTOP)
        return None

    def _emulated_failure(self, shard_id: int) -> "Exception | None":
        """The standing failure of a simulated-dead in-process shard."""
        if shard_id in self._sim_dead:
            return ShardUnavailableError(
                shard_id, f"shard worker {shard_id} is dead "
                f"(awaiting restart)")
        return None

    # -- dispatch ------------------------------------------------------
    def call_one(self, shard_id: int, method: str, *args: Any) -> Any:
        error = self._emulated_failure(shard_id)
        if error is None:
            fault = self.plan.take(shard_id, method)
            if fault is not None:
                error = self._fire(fault)
        if error is not None:
            raise error
        return self.inner.call_one(shard_id, method, *args)

    def call_all(self, method: str,
                 args_per_shard: "Sequence[tuple] | None" = None
                 ) -> list[Any]:
        count = self.inner.shard_count
        if args_per_shard is None:
            args_per_shard = [()] * count
        return self.call_some(list(range(count)), method, args_per_shard)

    def call_some(self, shard_ids: Iterable[int], method: str,
                  args_per_shard: "Sequence[tuple] | None" = None
                  ) -> list[Any]:
        shard_ids = list(shard_ids)
        if args_per_shard is None:
            args_per_shard = [()] * len(shard_ids)
        # Decide and apply every firing fault before any dispatch, so
        # the pattern of failures in one fan-out is a pure function of
        # the plan (matching the real executor's send-all-then-collect
        # shape, where a kill before the fan-out fails that shard's
        # send deterministically).
        failures: dict[int, Exception] = {}
        for shard_id in shard_ids:
            error = self._emulated_failure(shard_id)
            if error is None:
                fault = self.plan.take(shard_id, method)
                if fault is not None:
                    error = self._fire(fault)
            if error is not None:
                failures[shard_id] = error
        live = [(shard_id, args)
                for shard_id, args in zip(shard_ids, args_per_shard)
                if shard_id not in failures]
        results_by_id: dict[int, Any] = {}
        if self.inner.in_process:
            # Emulate the process executor's aggregation contract over
            # the in-process inner, shard-side exceptions included.
            for shard_id, args in live:
                try:
                    results_by_id[shard_id] = self.inner.call_one(
                        shard_id, method, *args)
                except Exception as exc:
                    failures[shard_id] = exc
        elif live:
            try:
                out = self.inner.call_some(
                    [shard_id for shard_id, _ in live], method,
                    [args for _, args in live])
                results_by_id = {shard_id: result for (shard_id, _), result
                                 in zip(live, out)}
            except ClusterCallError as exc:
                for shard_id, result in zip(exc.shard_ids, exc.results):
                    if shard_id in exc.failures:
                        failures[shard_id] = exc.failures[shard_id]
                    else:
                        results_by_id[shard_id] = result
        results = [results_by_id.get(shard_id) for shard_id in shard_ids]
        if failures:
            raise ClusterCallError(method, shard_ids, results, failures)
        return results

    def __enter__(self) -> "FaultInjectingExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"FaultInjectingExecutor({self.inner!r}, plan={self.plan!r})"
