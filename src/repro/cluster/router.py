"""Shard routing: which shard owns which device.

A :class:`~repro.cluster.sharded.ShardedLocater` replicates the event
log to every shard (cleaning couples devices through co-location, so a
shard answering queries from a partial log would change answers) and
partitions *serving ownership*: each device's queries, trained coarse
models, cleaned-answer storage and cache warm state live on exactly one
shard.  The router decides that assignment.

Routers must be **deterministic and stable**: ``shard_of`` may never
depend on query order, process identity or Python's salted ``hash``,
and a *bound* device never moves (a moved device strands its trained
models and stored answers on the old shard).  Binding itself may
upgrade a route exactly once: a device the affinity router has not yet
bound serves from its hash-fallback shard, and its first observation
at a mapped AP — always during an ingest, never during a query — binds
it to its building's shard from then on.  The upgrade strands only the
fallback shard's warm state (models and memos are pure functions of
the replicated log, so answers are unaffected); pinning the fallback
forever would instead require remembering query history, making
placement depend on query order — the thing this contract forbids.
Two routers ship:

* :class:`HashRouter` — a stable CRC32 of the MAC, modulo the shard
  count.  Uniform, metadata-free, the right default.
* :class:`BuildingAffinityRouter` — for multi-building campuses whose
  AP ids map to buildings: a device is assigned to the shard of the
  building where it was *first observed* (sticky thereafter), so
  co-located populations land on the same shard and the shard's
  shared-computation memos (neighbor snapshots, pair affinities) hit
  across its whole query stream.  Devices never observed at a mapped AP
  fall back to the hash route.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Iterable, Mapping, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.events.event import ConnectivityEvent
from repro.events.table import EventTable

T = TypeVar("T")


def stable_hash(mac: str) -> int:
    """A process-independent, salt-free hash of a device id."""
    return zlib.crc32(mac.encode("utf-8"))


class ShardRouter(ABC):
    """Maps a device id to the shard that owns it."""

    @abstractmethod
    def shard_of(self, mac: str, shard_count: int) -> int:
        """The owning shard of ``mac``, in ``range(shard_count)``.

        Must be a pure function of (mac, shard_count) and the
        assignment state accumulated through the observe hooks — which
        only ever run during ingests — never of query order (see the
        module docstring for the one-time bind upgrade this allows).
        """

    def observe(self, events: Iterable[ConnectivityEvent]) -> None:
        """Feed routing-relevant events (default: routers are stateless).

        Assignment-learning routers (building affinity) bind first-seen
        devices here.  Implementations must keep already-assigned
        devices where they are.
        """

    def observe_table(self, table: EventTable,
                      macs: Iterable[str]) -> None:
        """Bind ``macs`` from their merged logs (default: stateless).

        The cluster calls this on *every* ingest path — including
        ``on_ingest``, which carries only a change report, no events —
        so devices are bound no matter which entry point their first
        events arrived through.  Binding reads each device's log in
        chronological order; implementations must keep already-assigned
        devices where they are.
        """

    def partition(self, items: Sequence[T], macs: Sequence[str],
                  shard_count: int) -> "list[list[T]]":
        """Split ``items`` (with parallel ``macs``) into per-shard lists.

        Order within each shard preserves input order — which is what
        keeps duplicate (mac, timestamp) queries short-circuiting
        through storage exactly as the single-system path does.
        """
        if len(items) != len(macs):
            raise ConfigurationError(
                f"items and macs must align, got {len(items)} vs "
                f"{len(macs)}")
        out: "list[list[T]]" = [[] for _ in range(shard_count)]
        for item, mac in zip(items, macs):
            out[self.shard_of(mac, shard_count)].append(item)
        return out


class HashRouter(ShardRouter):
    """Uniform device-hash routing (stable CRC32, no metadata needed)."""

    def shard_of(self, mac: str, shard_count: int) -> int:
        return stable_hash(mac) % shard_count

    def __repr__(self) -> str:
        return "HashRouter()"


class BuildingAffinityRouter(ShardRouter):
    """Route by the building a device was first observed in.

    Args:
        ap_buildings: AP id → building key (e.g. from
            :func:`repro.space.blueprints.campus_ap_buildings`).  APs
            absent from the map contribute nothing to assignment.
        fallback: Router consulted for devices with no building
            assignment (never observed, or only at unmapped APs).

    Buildings are mapped to shards round-robin over the sorted distinct
    building keys, so a 3-building campus on 4 shards uses 3 of them
    and a 6-building campus doubles buildings up deterministically.
    Assignments are *sticky*: commuter devices that later roam to other
    buildings keep their first shard, because moving them would strand
    trained models and stored answers.  Until a device is bound it
    serves from its fallback (hash) shard; the binding upgrade happens
    at most once, at its first mapped-AP observation during an ingest
    (see the module docstring for why this beats pinning the fallback).
    """

    def __init__(self, ap_buildings: Mapping[str, str],
                 fallback: "ShardRouter | None" = None) -> None:
        if not ap_buildings:
            raise ConfigurationError(
                "building-affinity routing needs at least one AP→building "
                "mapping")
        self._ap_buildings = dict(ap_buildings)
        self._building_index = {
            building: index for index, building in
            enumerate(sorted(set(self._ap_buildings.values())))}
        self._assigned: dict[str, int] = {}
        self._fallback = fallback if fallback is not None else HashRouter()

    @classmethod
    def from_table(cls, table: EventTable,
                   ap_buildings: Mapping[str, str],
                   fallback: "ShardRouter | None" = None
                   ) -> "BuildingAffinityRouter":
        """Bind every device already in ``table`` to its first-seen building.

        The scan is chronological per device (each log is sorted), so
        the assignment equals what observing the original stream would
        have produced.
        """
        router = cls(ap_buildings, fallback=fallback)
        router.observe_table(table, table.macs())
        return router

    def _assign(self, mac: str, ap_id: str) -> bool:
        """Bind ``mac`` to ``ap_id``'s building; True when now assigned."""
        if mac in self._assigned:
            return True
        building = self._ap_buildings.get(ap_id)
        if building is None:
            return False
        self._assigned[mac] = self._building_index[building]
        return True

    def observe(self, events: Iterable[ConnectivityEvent]) -> None:
        """Bind devices appearing in ``events`` to their first mapped AP."""
        for event in events:
            self._assign(event.mac, event.ap_id)

    def observe_table(self, table: EventTable,
                      macs: Iterable[str]) -> None:
        """Bind each unassigned device from its merged, sorted log.

        A full chronological scan per still-unassigned device: merges
        may insert late-arriving rows anywhere in the log, so a resume
        offset could skip a mapped AP.  The scan usually stops at the
        first event; only devices that never touch a mapped AP pay the
        full log length, and only while they stay unassigned.
        """
        for mac in sorted(set(macs)):
            if mac in self._assigned or mac not in table.registry:
                continue
            log = table.log(mac)
            for position in range(len(log)):
                if self._assign(mac, log.ap_at(position)):
                    break

    def building_of(self, mac: str) -> "str | None":
        """The building key ``mac`` is bound to, or None (fallback route)."""
        index = self._assigned.get(mac)
        if index is None:
            return None
        for building, candidate in self._building_index.items():
            if candidate == index:
                return building
        return None

    def shard_of(self, mac: str, shard_count: int) -> int:
        index = self._assigned.get(mac)
        if index is None:
            return self._fallback.shard_of(mac, shard_count)
        return index % shard_count

    def __repr__(self) -> str:
        return (f"BuildingAffinityRouter({len(self._building_index)} "
                f"buildings, {len(self._assigned)} devices bound)")


def partition_events(events: Sequence[ConnectivityEvent],
                     router: ShardRouter,
                     shard_count: int) -> "list[list[ConnectivityEvent]]":
    """Split an event batch into per-shard sub-batches by owner device.

    The union of the partitions is the input batch exactly once — the
    split a cluster uses to persist each shard's slice of the dirty
    stream to its storage namespace without duplicating rows.
    """
    return router.partition(events, [e.mac for e in events], shard_count)
