"""Shard routing: which shard owns which device.

A :class:`~repro.cluster.sharded.ShardedLocater` replicates the event
log to every shard (cleaning couples devices through co-location, so a
shard answering queries from a partial log would change answers) and
partitions *serving ownership*: each device's queries, trained coarse
models, cleaned-answer storage and cache warm state live on exactly one
shard.  The router decides that assignment.

Routers must be **deterministic and ingest-bound**: ``shard_of`` may
never depend on query order, process identity or Python's salted
``hash`` — assignment state changes only through the observe hooks,
which run during ingests, never during queries.  Routes may *upgrade*
at those ingest boundaries: a device the affinity router has not yet
bound serves from its hash-fallback shard until its first observation
at a mapped AP binds it, and a component router re-binds whole device
groups when their components merge.  Every upgrade is accounted for —
``observe_table`` returns the set of devices whose route changed, and
the cluster migrates what a move would otherwise strand: stored
answers are cleared from the old shard's namespace (so a re-query can
never serve a stale namespaced answer) and recorded cache edges are
exchanged to the new owning shard (so its affinity reads stay exactly
what a lone deployment would see).  Trained models and memos are pure
functions of the replicated log and need no migration — the old shard
merely keeps warm state it will no longer use.  Three routers ship:

* :class:`HashRouter` — a stable CRC32 of the MAC, modulo the shard
  count.  Uniform, metadata-free, the right default.
* :class:`BuildingAffinityRouter` — for multi-building campuses whose
  AP ids map to buildings: a device is assigned to the shard of the
  building where it was *first observed* (sticky thereafter), so
  co-located populations land on the same shard and the shard's
  shared-computation memos (neighbor snapshots, pair affinities) hit
  across its whole query stream.  Devices never observed at a mapped AP
  fall back to the hash route.
* :class:`ComponentAffinityRouter` — routes by connected component of
  the *potential co-presence graph* (two devices couple if the rooms
  their observed APs cover intersect — the precondition for ever being
  neighbors, and hence for ever sharing an affinity edge).  Every
  device of a component lands on one shard, which is what makes
  per-shard §5 caching **exact**: see
  :mod:`repro.cache.components` and the cluster package docstring.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping, Sequence
from typing import TypeVar

import numpy as np

from repro.cache.components import AffinityComponents
from repro.errors import ConfigurationError
from repro.events.event import ConnectivityEvent
from repro.events.table import EventTable
from repro.space.building import Building

T = TypeVar("T")


def stable_hash(mac: str) -> int:
    """A process-independent, salt-free hash of a device id."""
    return zlib.crc32(mac.encode("utf-8"))


class ShardRouter(ABC):
    """Maps a device id to the shard that owns it."""

    @abstractmethod
    def shard_of(self, mac: str, shard_count: int) -> int:
        """The owning shard of ``mac``, in ``range(shard_count)``.

        Must be a pure function of (mac, shard_count) and the
        assignment state accumulated through the observe hooks — which
        only ever run during ingests — never of query order (see the
        module docstring for the one-time bind upgrade this allows).
        """

    def observe(self, events: Iterable[ConnectivityEvent]) -> None:
        """Feed routing-relevant events (default: routers are stateless).

        Assignment-learning routers (building affinity) bind first-seen
        devices here.  Implementations must keep already-assigned
        devices where they are.
        """

    def observe_table(self, table: EventTable,
                      macs: Iterable[str]) -> frozenset[str]:
        """Bind ``macs`` from their merged logs (default: stateless).

        The cluster calls this on *every* ingest path — including
        ``on_ingest``, which carries only a change report, no events —
        so devices are bound no matter which entry point their first
        events arrived through.  Binding reads each device's log in
        chronological order.

        Returns:
            The devices whose route may have changed (a superset is
            fine — the cluster's migration of a device that did not
            actually move is a no-op).  A component router may return
            devices *outside* ``macs``: a merge triggered by one
            device's new events can re-key a whole component.
        """
        return frozenset()

    def partition(self, items: Sequence[T], macs: Sequence[str],
                  shard_count: int) -> "list[list[T]]":
        """Split ``items`` (with parallel ``macs``) into per-shard lists.

        Order within each shard preserves input order — which is what
        keeps duplicate (mac, timestamp) queries short-circuiting
        through storage exactly as the single-system path does.
        """
        if len(items) != len(macs):
            raise ConfigurationError(
                f"items and macs must align, got {len(items)} vs "
                f"{len(macs)}")
        out: "list[list[T]]" = [[] for _ in range(shard_count)]
        for item, mac in zip(items, macs):
            out[self.shard_of(mac, shard_count)].append(item)
        return out


class HashRouter(ShardRouter):
    """Uniform device-hash routing (stable CRC32, no metadata needed)."""

    def shard_of(self, mac: str, shard_count: int) -> int:
        return stable_hash(mac) % shard_count

    def __repr__(self) -> str:
        return "HashRouter()"


class BuildingAffinityRouter(ShardRouter):
    """Route by the building a device was first observed in.

    Args:
        ap_buildings: AP id → building key (e.g. from
            :func:`repro.space.blueprints.campus_ap_buildings`).  APs
            absent from the map contribute nothing to assignment.
        fallback: Router consulted for devices with no building
            assignment (never observed, or only at unmapped APs).

    Buildings are mapped to shards round-robin over the sorted distinct
    building keys, so a 3-building campus on 4 shards uses 3 of them
    and a 6-building campus doubles buildings up deterministically.
    Assignments are *sticky*: commuter devices that later roam to other
    buildings keep their first shard, because moving them would strand
    trained models and stored answers.  Until a device is bound it
    serves from its fallback (hash) shard; the binding upgrade happens
    at most once, at its first mapped-AP observation during an ingest
    (see the module docstring for why this beats pinning the fallback).
    """

    def __init__(self, ap_buildings: Mapping[str, str],
                 fallback: "ShardRouter | None" = None) -> None:
        if not ap_buildings:
            raise ConfigurationError(
                "building-affinity routing needs at least one AP→building "
                "mapping")
        self._ap_buildings = dict(ap_buildings)
        self._building_index = {
            building: index for index, building in
            enumerate(sorted(set(self._ap_buildings.values())))}
        self._assigned: dict[str, int] = {}
        self._fallback = fallback if fallback is not None else HashRouter()

    @classmethod
    def from_table(cls, table: EventTable,
                   ap_buildings: Mapping[str, str],
                   fallback: "ShardRouter | None" = None
                   ) -> "BuildingAffinityRouter":
        """Bind every device already in ``table`` to its first-seen building.

        The scan is chronological per device (each log is sorted), so
        the assignment equals what observing the original stream would
        have produced.
        """
        router = cls(ap_buildings, fallback=fallback)
        router.observe_table(table, table.macs())
        return router

    def _assign(self, mac: str, ap_id: str) -> bool:
        """Bind ``mac`` to ``ap_id``'s building; True when now assigned."""
        if mac in self._assigned:
            return True
        building = self._ap_buildings.get(ap_id)
        if building is None:
            return False
        self._assigned[mac] = self._building_index[building]
        return True

    def observe(self, events: Iterable[ConnectivityEvent]) -> None:
        """Bind devices appearing in ``events`` to their first mapped AP."""
        for event in events:
            self._assign(event.mac, event.ap_id)

    def observe_table(self, table: EventTable,
                      macs: Iterable[str]) -> frozenset[str]:
        """Bind each unassigned device from its merged, sorted log.

        A full chronological scan per still-unassigned device: merges
        may insert late-arriving rows anywhere in the log, so a resume
        offset could skip a mapped AP.  The scan usually stops at the
        first event; only devices that never touch a mapped AP pay the
        full log length, and only while they stay unassigned.

        Returns the devices bound by *this* call — each just upgraded
        off its hash-fallback shard, so the cluster clears their
        answers from the fallback namespace (see the module docstring).
        """
        bound: set[str] = set()
        for mac in sorted(set(macs)):
            if mac in self._assigned or mac not in table.registry:
                continue
            log = table.log(mac)
            for position in range(len(log)):
                if self._assign(mac, log.ap_at(position)):
                    bound.add(mac)
                    break
        return frozenset(bound)

    def building_of(self, mac: str) -> "str | None":
        """The building key ``mac`` is bound to, or None (fallback route)."""
        index = self._assigned.get(mac)
        if index is None:
            return None
        for building, candidate in self._building_index.items():
            if candidate == index:
                return building
        return None

    def shard_of(self, mac: str, shard_count: int) -> int:
        index = self._assigned.get(mac)
        if index is None:
            return self._fallback.shard_of(mac, shard_count)
        return index % shard_count

    def __repr__(self) -> str:
        return (f"BuildingAffinityRouter({len(self._building_index)} "
                f"buildings, {len(self._assigned)} devices bound)")


#: Node tags of the router's bipartite device↔room union-find.  Devices
#: sort before rooms, so a component's minimum member is always a device
#: node and the routing representative is the smallest device MAC.
_DEVICE_TAG = "0:"
_ROOM_TAG = "1:"


class ComponentAffinityRouter(ShardRouter):
    """Route by connected component of the potential co-presence graph.

    Two devices can ever become fine-inference neighbors — and hence
    ever share a §5 affinity edge — only if the rooms covered by their
    observed APs' regions intersect.  This router maintains exactly
    that reachability as a bipartite device↔room union-find: observing
    a device at an AP unions the device with every room of the AP's
    region, so two devices share a component iff their room sets are
    connected (possibly transitively, through other devices).  Every
    device of a component routes to ``stable_hash(representative) %
    shard_count`` with the representative the component's smallest
    device MAC — a pure function of the component's member set,
    invariant to event order.

    Because the query path only ever touches affinity edges between a
    queried device and its neighbors, co-locating whole components
    makes each shard's cache **exact**: it performs the same edge reads
    and writes, in the same order, as a lone deployment (see
    :mod:`repro.cache.components`).  A singleton component hashes to
    the device's own MAC — identical to the :class:`HashRouter`
    fallback used before the device is first bound, so binding a
    loner never moves it.

    Components merge as logs grow; a merge re-keys the smaller-MAC
    side's devices, and :meth:`observe_table` reports every re-keyed
    device so the cluster can migrate its cache edges and clear its
    stale namespaced answers (see the module docstring).

    Args:
        building: The space model (a single building or merged campus);
            only its AP → region-rooms covering map is retained.
        fallback: Router for devices never observed at a known AP
            (default :class:`HashRouter` — keep it: the component
            route deliberately degenerates to the same hash).
    """

    def __init__(self, building: Building,
                 fallback: "ShardRouter | None" = None) -> None:
        self._rooms_of_ap: dict[str, frozenset[str]] = {
            region.ap_id: region.rooms for region in building.regions}
        if not self._rooms_of_ap:
            raise ConfigurationError(
                "component-affinity routing needs a building with at "
                "least one AP region")
        self._components = AffinityComponents()
        self._seen_aps: dict[str, set[str]] = {}
        self._fallback = fallback if fallback is not None else HashRouter()
        self._hash_fallback = isinstance(self._fallback, HashRouter)

    @classmethod
    def from_table(cls, table: EventTable, building: Building,
                   fallback: "ShardRouter | None" = None
                   ) -> "ComponentAffinityRouter":
        """Bind every device already in ``table`` to its component."""
        router = cls(building, fallback=fallback)
        router.observe_table(table, table.macs())
        return router

    # ------------------------------------------------------------------
    def observe(self, events: Iterable[ConnectivityEvent]) -> None:
        """Absorb routing-relevant events directly (no table needed)."""
        moved: set[str] = set()
        for event in events:
            self._absorb(event.mac, (event.ap_id,), moved)

    def observe_table(self, table: EventTable,
                      macs: Iterable[str]) -> frozenset[str]:
        """Union each changed device with its newly observed APs' rooms.

        Scans only the *distinct* APs of each device's log (a vectorized
        unique over its AP index column), skipping APs already
        absorbed, so repeated observation of a busy device costs one
        ``np.unique`` plus O(new APs) union work.

        Returns every device whose routing key changed: devices whose
        component merged into one with a smaller representative —
        including devices far outside ``macs`` — plus, under a
        non-hash fallback, devices bound for the first time.
        """
        moved: set[str] = set()
        for mac in sorted(set(macs)):
            if mac not in table.registry:
                continue
            log = table.log(mac)
            distinct = (log.resolve_ap(int(index))
                        for index in np.unique(log.ap_indices))
            self._absorb(mac, distinct, moved)
        return frozenset(moved)

    def _absorb(self, mac: str, ap_ids: Iterable[str],
                moved: "set[str]") -> None:
        """Union ``mac`` with the rooms of its not-yet-seen APs.

        Collects into ``moved`` the device MACs whose component
        representative changed: on every merge, the member devices of
        the side whose representative lost (the larger one).
        """
        seen = self._seen_aps.setdefault(mac, set())
        node = _DEVICE_TAG + mac
        was_bound = node in self._components
        for ap_id in ap_ids:
            if ap_id in seen:
                continue
            seen.add(ap_id)
            rooms = self._rooms_of_ap.get(ap_id)
            if rooms is None:
                continue
            self._components.add_node(node)
            for room in sorted(rooms):
                room_node = _ROOM_TAG + room
                self._components.add_node(room_node)
                rep_device = self._components.representative(node)
                rep_room = self._components.representative(room_node)
                if rep_device == rep_room:
                    continue
                loser = max(rep_device, rep_room)
                moved.update(
                    member[len(_DEVICE_TAG):]
                    for member in self._components.component(loser)
                    if member.startswith(_DEVICE_TAG))
                self._components.add_edge(node, room_node)
        if not was_bound and node in self._components \
                and not self._hash_fallback:
            # First binding flips the route off a non-hash fallback even
            # when the component hash alone would not move the device.
            moved.add(mac)

    # ------------------------------------------------------------------
    def representative(self, mac: str) -> "str | None":
        """The routing key of ``mac``'s component, or None (unbound)."""
        node = _DEVICE_TAG + mac
        if node not in self._components:
            return None
        return self._components.representative(node)[len(_DEVICE_TAG):]

    def component_of(self, mac: str) -> frozenset[str]:
        """The device MACs sharing ``mac``'s component (empty: unbound)."""
        node = _DEVICE_TAG + mac
        if node not in self._components:
            return frozenset()
        return frozenset(
            member[len(_DEVICE_TAG):]
            for member in self._components.component(node)
            if member.startswith(_DEVICE_TAG))

    def shard_of(self, mac: str, shard_count: int) -> int:
        representative = self.representative(mac)
        if representative is None:
            return self._fallback.shard_of(mac, shard_count)
        return stable_hash(representative) % shard_count

    def __repr__(self) -> str:
        return (f"ComponentAffinityRouter({len(self._seen_aps)} devices "
                f"observed, {self._components.component_count} components)")


def partition_events(events: Sequence[ConnectivityEvent],
                     router: ShardRouter,
                     shard_count: int) -> "list[list[ConnectivityEvent]]":
    """Split an event batch into per-shard sub-batches by owner device.

    The union of the partitions is the input batch exactly once — the
    split a cluster uses to persist each shard's slice of the dirty
    stream to its storage namespace without duplicating rows.
    """
    return router.partition(events, [e.mac for e in events], shard_count)
