"""JSON-lines connectivity logs: one event object per line."""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.errors import EventTableError
from repro.events.event import ConnectivityEvent


def write_jsonl_events(path: "str | Path",
                       events: Iterable[ConnectivityEvent]) -> int:
    """Write events as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps({
                "timestamp": event.timestamp,
                "mac": event.mac,
                "ap_id": event.ap_id,
            }, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl_events(path: "str | Path") -> Iterator[ConnectivityEvent]:
    """Read events from a JSON-lines file.

    Unknown extra keys are ignored (forward compatibility); missing
    required keys or malformed JSON raise :class:`EventTableError` with
    the offending line number.
    """
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventTableError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from None
            try:
                yield ConnectivityEvent(timestamp=float(doc["timestamp"]),
                                        mac=str(doc["mac"]),
                                        ap_id=str(doc["ap_id"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise EventTableError(
                    f"{path}:{line_number}: bad event record: {exc}"
                ) from None
