"""CSV connectivity logs: ``timestamp,mac,ap_id`` rows with a header."""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.errors import EventTableError
from repro.events.event import ConnectivityEvent

HEADER = ("timestamp", "mac", "ap_id")


def write_csv_events(path: "str | Path",
                     events: Iterable[ConnectivityEvent]) -> int:
    """Write events as CSV; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for event in events:
            writer.writerow([repr(event.timestamp), event.mac, event.ap_id])
            count += 1
    return count


def read_csv_events(path: "str | Path") -> Iterator[ConnectivityEvent]:
    """Read events from CSV written by :func:`write_csv_events`.

    Validates the header and every row; malformed rows raise
    :class:`EventTableError` with the offending line number.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise EventTableError(f"{path}: empty CSV file") from None
        if tuple(header) != HEADER:
            raise EventTableError(
                f"{path}: unexpected header {header!r}, want {HEADER}")
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise EventTableError(
                    f"{path}:{line_number}: expected 3 columns, got {row!r}")
            try:
                timestamp = float(row[0])
            except ValueError:
                raise EventTableError(
                    f"{path}:{line_number}: bad timestamp {row[0]!r}"
                ) from None
            yield ConnectivityEvent(timestamp=timestamp, mac=row[1],
                                    ap_id=row[2])
