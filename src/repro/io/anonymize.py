"""Salted MAC-address anonymization.

The paper's data comes from the TIPPERS privacy-cognizant IoT testbed;
deployments typically pseudonymize MAC addresses before analysis.  A
keyed hash preserves exactly what LOCATER needs — the ability to link
events of the same device — while removing the hardware identifier.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Iterable, Iterator

from repro.events.event import ConnectivityEvent


class MacAnonymizer:
    """Deterministic, salted MAC pseudonymization.

    The same (salt, mac) always maps to the same pseudonym, so device
    linkage — and therefore every LOCATER algorithm — survives
    anonymization; without the salt the mapping is not invertible.

    Args:
        salt: Secret key for the HMAC; deployments rotate it per
            retention period.
        prefix: Prefix of generated pseudonyms (cosmetic).
        digest_chars: Length of the hex digest kept (collision risk is
            ~2^(-4·chars/2); the default 12 is ample for building scale).
    """

    def __init__(self, salt: str, prefix: str = "anon-",
                 digest_chars: int = 12) -> None:
        if not salt:
            raise ValueError("salt must be non-empty")
        if digest_chars < 8:
            raise ValueError("digest_chars must be >= 8")
        self._key = salt.encode("utf-8")
        self.prefix = prefix
        self.digest_chars = digest_chars
        self._memo: dict[str, str] = {}

    def pseudonym(self, mac: str) -> str:
        """The stable pseudonym of one MAC address."""
        cached = self._memo.get(mac)
        if cached is None:
            digest = hmac.new(self._key, mac.encode("utf-8"),
                              hashlib.sha256).hexdigest()
            cached = self.prefix + digest[: self.digest_chars]
            self._memo[mac] = cached
        return cached

    def anonymize(self, events: Iterable[ConnectivityEvent]
                  ) -> Iterator[ConnectivityEvent]:
        """Stream events with MACs replaced by pseudonyms."""
        for event in events:
            yield ConnectivityEvent(timestamp=event.timestamp,
                                    mac=self.pseudonym(event.mac),
                                    ap_id=event.ap_id,
                                    event_id=event.event_id)

    def mapping_size(self) -> int:
        """Number of distinct MACs pseudonymized so far."""
        return len(self._memo)
