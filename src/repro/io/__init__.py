"""Dataset I/O: connectivity-log file formats and MAC anonymization.

Real deployments receive association logs from wireless controllers and
archive them as flat files; this package reads/writes the two common
shapes (CSV and JSON-lines) and provides the salted MAC hashing that
privacy-conscious deployments (like the paper's TIPPERS testbed) apply
before analysis.
"""

from repro.io.csvlog import read_csv_events, write_csv_events
from repro.io.jsonl import read_jsonl_events, write_jsonl_events
from repro.io.anonymize import MacAnonymizer

__all__ = [
    "MacAnonymizer",
    "read_csv_events",
    "read_jsonl_events",
    "write_csv_events",
    "write_jsonl_events",
]
