"""Cleaned trajectory reconstruction (tracking workload, §1)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.system.locater import Locater
from repro.system.query import LocationQuery
from repro.util.timeutil import TimeInterval
from repro.util.validation import check_positive


@dataclass(frozen=True, slots=True)
class TrajectorySegment:
    """A maximal run of consecutive samples with the same location."""

    location: str           # room id or "outside"
    interval: TimeInterval
    samples: int

    @property
    def is_inside(self) -> bool:
        return self.location != "outside"


@dataclass(slots=True)
class CleanedTrajectory:
    """The cleaned room-level trajectory of one device.

    Attributes:
        mac: The device.
        step: Sampling step in seconds.
        segments: Run-length-encoded location sequence.
    """

    mac: str
    step: float
    segments: list[TrajectorySegment]

    def __iter__(self) -> Iterator[TrajectorySegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def rooms_visited(self) -> list[str]:
        """Distinct rooms in visit order (excluding outside runs)."""
        seen: list[str] = []
        for segment in self.segments:
            if segment.is_inside and segment.location not in seen:
                seen.append(segment.location)
        return seen

    def time_inside(self) -> float:
        """Total seconds of in-building runs."""
        return sum(s.interval.duration for s in self.segments
                   if s.is_inside)

    def location_at(self, timestamp: float) -> "str | None":
        """Location of the segment containing ``timestamp``, if any."""
        for segment in self.segments:
            if segment.interval.contains(timestamp):
                return segment.location
        return None


def reconstruct_trajectory(locater: Locater, mac: str,
                           window: TimeInterval,
                           step: float = 1800.0) -> CleanedTrajectory:
    """Sample the device every ``step`` seconds and run-length encode.

    The sampling grid is answered in one ``locate_batch`` call: samples
    of the same device landing in the same connectivity gap share the
    coarse feature extraction and classifier decisions.
    """
    check_positive("step", step)
    grid: list[float] = []
    cursor = window.start
    while cursor < window.end:
        grid.append(cursor)
        cursor += step
    answers = locater.locate_batch(
        [LocationQuery(mac=mac, timestamp=t) for t in grid])
    samples: list[tuple[float, str]] = [
        (t, answer.location_label) for t, answer in zip(grid, answers)]

    segments: list[TrajectorySegment] = []
    run_start = 0
    for i in range(1, len(samples) + 1):
        if i == len(samples) or samples[i][1] != samples[run_start][1]:
            start_t = samples[run_start][0]
            end_t = samples[i - 1][0] + step
            segments.append(TrajectorySegment(
                location=samples[run_start][1],
                interval=TimeInterval(start_t, min(end_t, window.end)),
                samples=i - run_start))
            run_start = i
    return CleanedTrajectory(mac=mac, step=step, segments=segments)
