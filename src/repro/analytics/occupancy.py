"""Occupancy time series from cleaned locations (HVAC workload, §1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.system.locater import Locater
from repro.system.query import LocationQuery
from repro.util.timeutil import TimeInterval
from repro.util.validation import check_positive


@dataclass(slots=True)
class OccupancySeries:
    """Per-slot occupancy counts at region and room granularity.

    Attributes:
        slots: The sampled time slots, in order.
        by_region: slot index → region id → device count.
        by_room: slot index → room id → device count.
        inside_total: slot index → devices inside the building.
    """

    slots: list[TimeInterval]
    by_region: list[dict[int, int]] = field(default_factory=list)
    by_room: list[dict[str, int]] = field(default_factory=list)
    inside_total: list[int] = field(default_factory=list)

    def peak_slot(self) -> "tuple[TimeInterval, int]":
        """The (slot, count) with the highest building occupancy."""
        best = max(range(len(self.slots)),
                   key=lambda i: self.inside_total[i])
        return self.slots[best], self.inside_total[best]

    def idle_regions(self) -> list[int]:
        """Regions with zero cleaned occupancy across all slots
        (candidates for HVAC setback)."""
        seen: set[int] = set()
        for counts in self.by_region:
            seen.update(r for r, n in counts.items() if n > 0)
        all_regions = {r for counts in self.by_region for r in counts}
        populated = {r for counts in self.by_region
                     for r, n in counts.items() if n > 0}
        del all_regions, seen
        # Regions never observed occupied: everything the building has
        # minus the populated set — computed lazily by the caller who
        # knows the full region list; here we report populated only.
        return sorted(populated)

    def room_utilization(self, room_id: str) -> float:
        """Fraction of slots in which the room had any occupant."""
        if not self.by_room:
            return 0.0
        hits = sum(1 for counts in self.by_room
                   if counts.get(room_id, 0) > 0)
        return hits / len(self.by_room)


def occupancy_series(locater: Locater, macs: Sequence[str],
                     window: TimeInterval,
                     step: float = 3600.0) -> OccupancySeries:
    """Sample cleaned occupancy for ``macs`` every ``step`` seconds.

    Each device is located once per slot (at the slot's start); the
    resulting counts are what an HVAC controller or space planner would
    consume.  The whole grid goes through ``locate_batch`` in one call —
    all devices of one slot share a single online snapshot, and the
    caching engine warms chronologically across slots.
    """
    check_positive("step", step)
    slots = [TimeInterval(t, min(t + step, window.end))
             for t in _frange(window.start, window.end, step)]
    series = OccupancySeries(slots=slots)
    queries = [LocationQuery(mac=mac, timestamp=slot.start)
               for slot in slots for mac in macs]
    answers = iter(locater.locate_batch(queries))
    for slot in slots:
        region_counts: dict[int, int] = {}
        room_counts: dict[str, int] = {}
        inside = 0
        for mac in macs:
            answer = next(answers)
            if not answer.inside:
                continue
            inside += 1
            if answer.region_id is not None:
                region_counts[answer.region_id] = \
                    region_counts.get(answer.region_id, 0) + 1
            if answer.room_id is not None:
                room_counts[answer.room_id] = \
                    room_counts.get(answer.room_id, 0) + 1
        series.by_region.append(region_counts)
        series.by_room.append(room_counts)
        series.inside_total.append(inside)
    return series


def _frange(start: float, end: float, step: float) -> list[float]:
    out = []
    cursor = start
    while cursor < end:
        out.append(cursor)
        cursor += step
    return out
