"""Application-level analytics over cleaned locations.

The paper motivates LOCATER with three downstream workloads (§1):
occupancy for HVAC control, space-usage analysis, and COVID-style contact
tracing.  This package provides library-grade implementations of those
workloads on top of the :class:`~repro.system.locater.Locater` query
interface: occupancy time series, cleaned trajectory reconstruction, and
room-level co-location (exposure) analysis.
"""

from repro.analytics.occupancy import OccupancySeries, occupancy_series
from repro.analytics.trajectory import CleanedTrajectory, reconstruct_trajectory
from repro.analytics.colocation import Exposure, exposure_report

__all__ = [
    "CleanedTrajectory",
    "Exposure",
    "OccupancySeries",
    "exposure_report",
    "occupancy_series",
    "reconstruct_trajectory",
]
