"""Room-level co-location / exposure analysis (contact-tracing workload, §1)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.analytics.trajectory import reconstruct_trajectory
from repro.system.locater import Locater
from repro.system.query import LocationQuery
from repro.util.timeutil import TimeInterval
from repro.util.validation import check_positive


@dataclass(frozen=True, slots=True)
class Exposure:
    """Shared-room time between the index device and one contact.

    Attributes:
        mac: The contact device.
        shared_seconds: Total seconds both cleaned trajectories agree on
            the same room.
        rooms: Rooms in which the contact occurred.
    """

    mac: str
    shared_seconds: float
    rooms: tuple[str, ...]


def exposure_report(locater: Locater, index_mac: str,
                    candidates: Sequence[str], window: TimeInterval,
                    step: float = 1800.0,
                    min_shared_seconds: float = 0.0) -> list[Exposure]:
    """Find devices co-located (same cleaned room) with ``index_mac``.

    Both the index device and every candidate are sampled on the same
    grid; a slot counts as exposure when both are inside and in the same
    room.  Results are sorted by descending shared time.

    Args:
        min_shared_seconds: Drop contacts below this total (e.g. require
            at least 15 minutes of shared-room time).
    """
    check_positive("step", step)
    index_traj = reconstruct_trajectory(locater, index_mac, window, step)

    # Slots where the index device was inside — the only ones where
    # exposure is possible.  Every candidate is sampled on exactly these
    # slots in one batch; slots shared across candidates reuse one
    # online snapshot inside the batch engine.
    inside_slots: list[tuple[float, str]] = []
    cursor = window.start
    while cursor < window.end:
        index_loc = index_traj.location_at(cursor)
        if index_loc is not None and index_loc != "outside":
            inside_slots.append((cursor, index_loc))
        cursor += step

    contacts = [mac for mac in candidates if mac != index_mac]
    answers = iter(locater.locate_batch(
        [LocationQuery(mac=mac, timestamp=t)
         for mac in contacts for t, _ in inside_slots]))

    exposures: list[Exposure] = []
    for mac in contacts:
        shared = 0.0
        rooms: list[str] = []
        for _, index_loc in inside_slots:
            answer = next(answers)
            if answer.inside and answer.room_id == index_loc:
                shared += step
                if index_loc not in rooms:
                    rooms.append(index_loc)
        if shared > 0 and shared >= min_shared_seconds:
            exposures.append(Exposure(mac=mac, shared_seconds=shared,
                                      rooms=tuple(rooms)))
    exposures.sort(key=lambda e: (-e.shared_seconds, e.mac))
    return exposures
