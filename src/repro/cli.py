"""Command-line interface: simulate datasets, answer queries, run experiments.

Examples::

    locater simulate --scenario dbh --days 7 --population 20 --out events.db
    locater locate --scenario dbh --days 7 --mac dbh-mac0001 --time 180000
    locater experiment table3 --days 7 --population 16
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.sim.scenarios import ScenarioSpec
from repro.sim.simulator import Simulator
from repro.system.config import LocaterConfig
from repro.system.locater import Locater
from repro.system.query import LocationQuery
from repro.system.storage import SqliteStorage

#: Experiment registry: name → module path (imported lazily).
EXPERIMENTS = {
    "fig7": "repro.eval.experiments.fig7_thresholds",
    "table2": "repro.eval.experiments.table2_weights",
    "fig8": "repro.eval.experiments.fig8_history",
    "fig9": "repro.eval.experiments.fig9_caching",
    "table3": "repro.eval.experiments.table3_baselines",
    "table4": "repro.eval.experiments.table4_scenarios",
    "fig10": "repro.eval.experiments.fig10_efficiency",
    "fig11": "repro.eval.experiments.fig11_stopcond",
    "fig12": "repro.eval.experiments.fig12_scalability",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="locater",
        description="LOCATER reproduction: semantic WiFi localization.")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic dataset")
    sim.add_argument("--scenario", default="dbh",
                     choices=["dbh", "office", "university", "mall",
                              "airport"])
    sim.add_argument("--days", type=int, default=7)
    sim.add_argument("--population", type=int, default=20)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out", default="",
                     help="optional SQLite file to persist raw events")

    loc = sub.add_parser("locate", help="answer one location query")
    loc.add_argument("--scenario", default="dbh",
                     choices=["dbh", "office", "university", "mall",
                              "airport"])
    loc.add_argument("--days", type=int, default=7)
    loc.add_argument("--population", type=int, default=20)
    loc.add_argument("--seed", type=int, default=0)
    loc.add_argument("--mac", required=True)
    loc.add_argument("--time", type=float, required=True, action="append",
                     help="query timestamp in seconds since epoch 0; "
                          "repeat the flag to answer several times in "
                          "one batched pass")
    loc.add_argument("--mode", default="dependent",
                     choices=["independent", "dependent"])

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--days", type=int, default=None)
    exp.add_argument("--population", type=int, default=None)
    exp.add_argument("--seed", type=int, default=None)
    return parser


def _make_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.scenario == "dbh":
        return ScenarioSpec.dbh_like(seed=args.seed,
                                     population=args.population)
    return ScenarioSpec.by_name(args.scenario, seed=args.seed)


def _cmd_simulate(args: argparse.Namespace) -> int:
    dataset = Simulator(_make_spec(args)).run(days=args.days)
    print(f"scenario={args.scenario} days={args.days} "
          f"devices={len(dataset.macs())} events={dataset.event_count()}")
    if args.out:
        with SqliteStorage(args.out) as storage:
            for mac in dataset.table.macs():
                storage.store_events(dataset.table.events_of(mac))
            print(f"persisted {storage.event_count()} events to {args.out}")
    return 0


def _cmd_locate(args: argparse.Namespace) -> int:
    dataset = Simulator(_make_spec(args)).run(days=args.days)
    config = (LocaterConfig.independent() if args.mode == "independent"
              else LocaterConfig.dependent())
    locater = Locater(dataset.building, dataset.metadata, dataset.table,
                      config=config)
    if args.mac not in dataset.table.registry:
        print(f"unknown device {args.mac!r}; known devices: "
              f"{', '.join(dataset.macs()[:5])} ...", file=sys.stderr)
        return 2
    queries = [LocationQuery(mac=args.mac, timestamp=t) for t in args.time]
    answers = locater.locate_batch(queries)
    for query, answer in zip(queries, answers):
        print(answer)
        truth = dataset.true_room_at(query.mac, query.timestamp)
        print(f"ground truth: {truth if truth is not None else 'outside'}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(EXPERIMENTS[args.name])
    kwargs = {}
    for key in ("days", "population", "seed"):
        value = getattr(args, key)
        if value is not None:
            kwargs[key] = value
    result = module.run(**kwargs)
    print(result.render())
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "locate":
        return _cmd_locate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
