"""The coarse-grained localizer: query answering over gaps (paper §3).

Wiring: a query (device, t_q) first checks whether t_q lies inside some
event's validity window — if so the answer is that event's region with no
cleaning needed.  Otherwise the query falls in a gap and two per-device
self-trained classifiers decide (1) inside vs outside the building and
(2) the region if inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import ClassVar

import numpy as np

from repro.coarse.aggregate import PopulationAggregate
from repro.coarse.bootstrap import (
    BootstrapLabeler,
    LABEL_INSIDE,
    LABEL_OUTSIDE,
)
from repro.coarse.features import (
    GapFeatureExtractor,
    RegionCodeResolver,
)
from repro.coarse.semi_supervised import SelfTrainingClassifier
from repro.events.gaps import extract_gaps, find_gap_at
from repro.events.table import EventTable
from repro.events.validity import valid_event_at
from repro.ml.pipeline import FeaturePipeline
from repro.space.building import Building
from repro.util.timeutil import TimeInterval

#: Building-level answers.
INSIDE = "inside"
OUTSIDE = "outside"


@dataclass(frozen=True, slots=True)
class CoarseResult:
    """Answer of the coarse-grained localizer for one query.

    Attributes:
        mac: Queried device.
        timestamp: Query time.
        inside: Whether the device was inside the building.
        region_id: Region the device was in (None when outside).
        from_event: True when t_q hit a validity interval directly (no
            cleaning was needed); False when a gap was classified.
    """

    mac: str
    timestamp: float
    inside: bool
    region_id: "int | None"
    from_event: bool

    def __str__(self) -> str:
        where = f"region g{self.region_id}" if self.inside else "outside"
        via = "event" if self.from_event else "gap"
        return f"{self.mac} @ {self.timestamp:.0f}s → {where} (via {via})"


@dataclass(slots=True)
class CoarseSharedState:
    """Cross-query memo of per-gap work (batch engine).

    Queries landing in the same gap of the same device (trajectory
    sampling, dense occupancy grids) need identical feature rows, and the
    classifiers' decisions are pure functions of those rows — so feature
    extraction and predictions are shared per (mac, gap).  The aggregate
    fallbacks stay unmemoized (they depend on the query time, not the
    gap).  Values are exactly what the sequential path computes, so
    sharing never changes an answer.
    """

    #: The memo-dict attributes of this state — the single list the
    #: trim/reset/fanout plumbing iterates (add new memos here too).
    MEMO_ATTRS: ClassVar[tuple[str, ...]] = (
        "features", "building_labels", "region_ids")

    features: "dict[tuple[str, float, float], np.ndarray]" = field(
        default_factory=dict)
    building_labels: "dict[tuple[str, float, float], str]" = field(
        default_factory=dict)
    region_ids: "dict[tuple[str, float, float], int]" = field(
        default_factory=dict)

    def drop_device(self, mac: str) -> None:
        """Forget every memo of one device (its gaps/models changed)."""
        self.drop_devices({mac})

    def drop_devices(self, macs: "set[str]") -> None:
        """Forget the memos of many devices.

        Each memo is partitioned in a single pass — the survivors are
        rebuilt into a fresh dict — instead of collecting a doomed-key
        list and deleting entry by entry.
        """
        if not macs:
            return
        self.features = {key: value for key, value in self.features.items()
                         if key[0] not in macs}
        self.building_labels = {key: value for key, value
                                in self.building_labels.items()
                                if key[0] not in macs}
        self.region_ids = {key: value for key, value
                           in self.region_ids.items()
                           if key[0] not in macs}


@dataclass(slots=True)
class _DeviceModels:
    """Trained per-device classifiers plus the feature pipeline."""

    pipeline: FeaturePipeline
    building_clf: "SelfTrainingClassifier | None"
    region_clf: "SelfTrainingClassifier | None"
    fallback_inside: bool
    fallback_region: "int | None"


class CoarseLocalizer:
    """Missing-value detection and repair for one building.

    Args:
        building: The space model.
        table: The connectivity events table (history source).
        bootstrap: Threshold labeler; defaults per the paper's best values.
        history: Training window T (defaults to the table's full span).
        batch_size: Promotions per self-training round (1 = paper-literal).

    Models are trained lazily per device and cached; :meth:`invalidate`
    drops the cache (e.g. after ingesting new events).
    """

    def __init__(self, building: Building, table: EventTable,
                 bootstrap: "BootstrapLabeler | None" = None,
                 history: "TimeInterval | None" = None,
                 batch_size: int = 1) -> None:
        self._building = building
        self._table = table
        self._bootstrap = bootstrap or BootstrapLabeler(building)
        self._history = history
        self._batch_size = batch_size
        self._extractor = GapFeatureExtractor(building)
        # Template pipeline: per-device pipelines spawn from it, sharing
        # the fixed categorical vocabularies and encoder instances.
        self._pipeline_template = FeaturePipeline(
            self._extractor.numeric_columns,
            self._extractor.categorical_vocab)
        self._region_codes = RegionCodeResolver(building)
        self._models: dict[str, _DeviceModels] = {}
        self._aggregate = PopulationAggregate(building, table,
                                              bootstrap=self._bootstrap,
                                              history=history)
        # Optional memory-budget hookup (repro.system.memory): trained
        # models become one-shot LRU entries — evicting one pops it from
        # the cache, and the deterministic retrain on next use
        # reproduces it (and every answer) bit for bit.
        self._memory = None
        self._memory_entries: dict = {}

    # ------------------------------------------------------------------
    @property
    def history(self) -> TimeInterval:
        """The training window actually in use."""
        if self._history is None:
            self._history = self._table.span()
        return self._history

    def set_history(self, history: "TimeInterval | None") -> None:
        """Change the training window and drop cached models.

        The population aggregate follows the same window, so it is
        re-pointed (and rebuilt lazily) as well.
        """
        self._history = history
        self._aggregate.set_history(history)
        self.invalidate()

    def advance_history(self, history: "TimeInterval | None") -> None:
        """Update the training window *without* dropping cached models.

        For the online-ingestion path only: when the window merely
        extends (same first/last day indices, superset of the old
        window), an unchanged device's gaps, features and bootstrap
        labels are provably identical under either window — its event
        times all lie inside both, and the density feature depends on
        the window only through its day range — so retraining would
        reproduce the cached models bit for bit.  Callers that cannot
        guarantee that invariant must use :meth:`set_history` instead.
        """
        self._history = history

    def set_memory_manager(self, manager) -> None:
        """Let ``manager`` evict trained models under memory pressure."""
        self._memory = manager
        for mac, models in self._models.items():
            self._charge_models(mac, models)

    def _charge_models(self, mac: str, models: _DeviceModels) -> None:
        from repro.system.memory import approx_nbytes
        old = self._memory_entries.pop(mac, None)
        if old is not None:
            self._memory.release(old)
        size = approx_nbytes(models)
        self._memory_entries[mac] = self._memory.charge(
            "coarse-model", ("coarse-model", mac),
            size_fn=lambda: size,
            evictor=lambda m=mac: self._evict_models(m))

    def _evict_models(self, mac: str) -> None:
        """LRU evictor: drop one device's trained models (retrain on
        next use reproduces them — training is deterministic)."""
        self._models.pop(mac, None)
        self._memory_entries.pop(mac, None)

    def _release_entry(self, mac: str) -> None:
        entry = self._memory_entries.pop(mac, None)
        if entry is not None:
            self._memory.release(entry)

    def invalidate(self) -> None:
        """Forget all trained per-device models and the aggregate."""
        if self._memory is not None:
            for mac in list(self._memory_entries):
                self._release_entry(mac)
        self._models.clear()
        self._aggregate.invalidate()

    def invalidate_device(self, mac: str) -> None:
        """Forget one device's trained models (e.g. after it ingested
        new events), plus the population aggregate if that device —
        or a shift in the sampled population — fed it."""
        self.invalidate_devices((mac,))

    def invalidate_devices(self, macs: "Iterable[str]") -> None:
        """Surgically forget the trained models of the given devices.

        Unlike :meth:`invalidate`, models of other devices survive: a
        device's classifiers are functions of its own log, its δ and the
        training window, none of which changed for the others.  The
        population aggregate is dropped only if it was built from one of
        the changed devices (or its device sample itself shifted).
        """
        macs = list(macs)
        for mac in macs:
            if self._models.pop(mac, None) is not None and \
                    self._memory is not None:
                self._release_entry(mac)
        self._aggregate.invalidate_if_affected(macs)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _train_device(self, mac: str) -> _DeviceModels:
        log = self._table.log(mac)
        history = self.history
        gaps = extract_gaps(log, window=history)

        pipeline = self._pipeline_template.spawn()

        if not gaps:
            # No gap history: the paper (§3 fn. 5) labels such devices by
            # aggregated location — the most common label among other
            # devices (resolved per query time via PopulationAggregate);
            # the device's own modal region, when it has events, wins.
            return _DeviceModels(
                pipeline=pipeline, building_clf=None, region_clf=None,
                fallback_inside=True,
                fallback_region=self._modal_region(mac))

        features = self._extractor.matrix(gaps, log, history)
        pipeline.fit_arrays(features.numeric)
        matrix = pipeline.transform_arrays(features.numeric,
                                           features.categorical_codes)
        row_of_gap = {id(gap): i for i, gap in enumerate(gaps)}

        # ---- building level ------------------------------------------
        split = self._bootstrap.label_building_level(gaps)
        building_clf: "SelfTrainingClassifier | None" = None
        if split.labeled:
            labeled_idx = [row_of_gap[id(g)] for g, _ in split.labeled]
            labels = [label for _, label in split.labeled]
            unlabeled_idx = [row_of_gap[id(g)] for g in split.unlabeled]
            building_clf = SelfTrainingClassifier(
                classes=[LABEL_INSIDE, LABEL_OUTSIDE],
                batch_size=self._batch_size)
            building_clf.fit(matrix[labeled_idx], labels,
                             matrix[unlabeled_idx]
                             if unlabeled_idx else np.zeros((0, matrix.shape[1])))

        # ---- region level ---------------------------------------------
        inside_gaps = [g for g, label in split.labeled if label == LABEL_INSIDE]
        region_clf: "SelfTrainingClassifier | None" = None
        if inside_gaps:
            region_split = self._bootstrap.label_region_level(
                inside_gaps, log, history)
            if region_split.labeled:
                region_classes = [str(r.region_id)
                                  for r in self._building.regions]
                labeled_idx = [row_of_gap[id(g)]
                               for g, _ in region_split.labeled]
                labels = [label for _, label in region_split.labeled]
                unlabeled_idx = [row_of_gap[id(g)]
                                 for g in region_split.unlabeled]
                region_clf = SelfTrainingClassifier(
                    classes=region_classes, batch_size=self._batch_size)
                region_clf.fit(matrix[labeled_idx], labels,
                               matrix[unlabeled_idx]
                               if unlabeled_idx
                               else np.zeros((0, matrix.shape[1])))

        return _DeviceModels(
            pipeline=pipeline,
            building_clf=building_clf,
            region_clf=region_clf,
            fallback_inside=True,
            fallback_region=self._modal_region(mac))

    def _modal_region(self, mac: str) -> "int | None":
        """The device's most-visited region over the history, if any."""
        log = self._table.log(mac)
        times, ap_indices = log.slice_interval(self.history)
        if times.size == 0:
            return None
        regions = self._region_codes.regions_of(log, ap_indices)
        counts = np.bincount(regions)
        # Ties break to the lowest region id, as the historical
        # max-over-sorted-dict-keys did.
        return int(np.flatnonzero(counts == counts.max())[0])

    def models_for(self, mac: str) -> _DeviceModels:
        """Trained models for a device, training on first use."""
        models = self._models.get(mac)
        if models is None:
            models = self._train_device(mac)
            self._models[mac] = models
            if self._memory is not None:
                self._charge_models(mac, models)
        elif self._memory is not None:
            entry = self._memory_entries.get(mac)
            if entry is not None:
                self._memory.touch(entry)
        return models

    def needs_model(self, mac: str, timestamp: float) -> bool:
        """Whether answering (mac, timestamp) consults trained models.

        True exactly when the lazy per-query path would train: the
        device is known, non-empty, the timestamp misses every validity
        window, and an enclosing gap exists.  Two binary searches — the
        batch pre-pass uses this to bulk-train precisely the devices a
        plan will need, no more (a query answered straight from an event
        never touches a model).
        """
        if mac not in self._table.registry:
            return False
        log = self._table.log(mac)
        if log.is_empty:
            return False
        if valid_event_at(log, timestamp) is not None:
            return False
        return find_gap_at(log, timestamp) is not None

    def train_devices(self, macs: Iterable[str]
                      ) -> dict[str, _DeviceModels]:
        """Train many devices in one bulk pass (the batch/streaming entry).

        Devices are trained in sorted order for determinism, reusing the
        shared extractor state and spawning per-device pipelines from one
        template (fixed vocabularies and encoders are built once, not per
        device).  Already-trained devices are returned from cache, and
        MACs the table has never observed are skipped — a batch plan may
        legitimately mention them, and the per-query path raises for them
        at their own turn.  Training is a pure function of the table and
        the history window, so eager bulk training never changes an
        answer; it only moves the cost out of the first query per device.
        """
        out: dict[str, _DeviceModels] = {}
        registry = self._table.registry
        for mac in sorted(set(macs)):
            if mac not in registry:
                continue
            out[mac] = self.models_for(mac)
        return out

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def locate(self, mac: str, timestamp: float,
               shared: "CoarseSharedState | None" = None) -> CoarseResult:
        """Answer Q = (d, t_q) at the coarse level.

        A device with no connectivity history at all is answered as
        outside: with zero association events there is no evidence the
        device ever entered the building.

        Args:
            shared: Optional batch memo; queries hitting the same gap
                reuse its transformed feature row.  The answer is
                identical with or without it.
        """
        log = self._table.log(mac)
        if log.is_empty:
            return CoarseResult(mac=mac, timestamp=timestamp, inside=False,
                                region_id=None, from_event=False)

        hit = valid_event_at(log, timestamp)
        if hit is not None:
            region = self._building.region_of_ap(hit.ap_id)
            return CoarseResult(mac=mac, timestamp=timestamp, inside=True,
                                region_id=region.region_id, from_event=True)

        gap = find_gap_at(log, timestamp)
        if gap is None:
            # Before the first or after the last event: no enclosing gap
            # features exist, so the device is considered outside.
            return CoarseResult(mac=mac, timestamp=timestamp, inside=False,
                                region_id=None, from_event=False)

        models = self.models_for(mac)
        key = (mac, gap.interval.start, gap.interval.end)
        features = None

        def gap_features() -> np.ndarray:
            nonlocal features
            if features is None:
                features = self._gap_features(mac, gap, log, models, shared)
            return features

        if models.building_clf is not None:
            label = shared.building_labels.get(key) \
                if shared is not None else None
            if label is None:
                _, label = models.building_clf.predict_one(gap_features())
                if shared is not None:
                    shared.building_labels[key] = label
        else:
            # Aggregate fallback (§3 fn. 5): most common label among
            # other devices at this time of day.
            label = (LABEL_INSIDE if self._aggregate.modal_inside(timestamp)
                     else LABEL_OUTSIDE)
        if label == LABEL_OUTSIDE:
            return CoarseResult(mac=mac, timestamp=timestamp, inside=False,
                                region_id=None, from_event=False)

        if models.region_clf is not None:
            region_id = shared.region_ids.get(key) \
                if shared is not None else None
            if region_id is None:
                _, region_label = models.region_clf.predict_one(
                    gap_features())
                region_id = int(region_label)
                if shared is not None:
                    shared.region_ids[key] = region_id
        else:
            fallback = models.fallback_region
            if fallback is None:
                fallback = self._aggregate.modal_region(timestamp)
            region_id = (fallback if fallback is not None else
                         self._building.region_of_ap(gap.ap_before).region_id)
        return CoarseResult(mac=mac, timestamp=timestamp, inside=True,
                            region_id=region_id, from_event=False)

    def locate_many(self, mac: str, timestamps: Sequence[float],
                    shared: "CoarseSharedState | None" = None
                    ) -> list[CoarseResult]:
        """Answer many queries of one device, sharing gap feature rows.

        Results are identical to calling :meth:`locate` per timestamp in
        the same order; only the repeated feature extraction for
        timestamps falling in the same gap is shared.
        """
        if shared is None:
            shared = CoarseSharedState()
        return [self.locate(mac, timestamp, shared=shared)
                for timestamp in timestamps]

    def _gap_features(self, mac: str, gap, log,
                      models: _DeviceModels,
                      shared: "CoarseSharedState | None") -> np.ndarray:
        """The transformed feature row of one gap, memoized per batch."""
        if shared is None:
            return self._transform_gap(gap, log, models)
        key = (mac, gap.interval.start, gap.interval.end)
        features = shared.features.get(key)
        if features is None:
            features = self._transform_gap(gap, log, models)
            shared.features[key] = features
        return features

    def _transform_gap(self, gap, log, models: _DeviceModels) -> np.ndarray:
        """One gap's design row through the device's fitted pipeline."""
        batch = self._extractor.matrix([gap], log, self.history)
        return models.pipeline.transform_arrays(
            batch.numeric, batch.categorical_codes)[0]
