"""Bootstrapping heuristics that seed the semi-supervised learner (§3).

Building level: a gap shorter than τl is labeled *inside*, longer than τh
*outside*; in-between gaps stay unlabeled.  Region level, for gaps labeled
inside: if the gap's start and end regions agree, that region is the label;
otherwise the label is the device's most-visited region among events that
overlap the gap's time-of-day window across the history.  A second
threshold pair (τ′l, τ′h) controls which inside gaps receive a confident
region label versus staying unlabeled for the region classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.coarse.features import RegionCodeResolver
from repro.events.gaps import Gap
from repro.events.table import DeviceLog
from repro.space.building import Building
from repro.util.timeutil import (
    SECONDS_PER_DAY,
    TimeInterval,
    day_span,
    minutes,
    seconds_of_day,
)
from repro.util.validation import check_positive

#: Building-level labels produced by the bootstrapper.
GapLabel = str
LABEL_INSIDE: GapLabel = "inside"
LABEL_OUTSIDE: GapLabel = "outside"


@dataclass(slots=True)
class BootstrapResult:
    """Partition of a device's gaps into labeled and unlabeled sets.

    Attributes:
        labeled: (gap, label) pairs — S_labeled of Algorithm 1.
        unlabeled: gaps the heuristics could not label — S_unlabeled.
    """

    labeled: list[tuple[Gap, GapLabel]] = field(default_factory=list)
    unlabeled: list[Gap] = field(default_factory=list)


class BootstrapLabeler:
    """Threshold-based gap labeling (paper §3 "Bootstrapping").

    Args:
        building: Space model, for AP → region resolution.
        tau_low: Gaps with duration ≤ τl are labeled inside (default 20 min,
            the paper's best value from Fig. 7).
        tau_high: Gaps with duration ≥ τh are labeled outside (default
            170 min; paper's Pc levels off beyond 170).
        tau_region_low / tau_region_high: The τ′ pair for region labels
            (paper: τ′l=20, τ′h=40 best).  Inside gaps shorter than τ′l
            always take a region label; inside gaps longer than τ′h whose
            endpoint regions disagree stay unlabeled for the region
            classifier.
    """

    def __init__(self, building: Building,
                 tau_low: float = minutes(20),
                 tau_high: float = minutes(170),
                 tau_region_low: float = minutes(20),
                 tau_region_high: float = minutes(40)) -> None:
        check_positive("tau_low", tau_low)
        check_positive("tau_high", tau_high)
        if tau_high <= tau_low:
            raise ValueError(
                f"tau_high ({tau_high}) must exceed tau_low ({tau_low})")
        check_positive("tau_region_low", tau_region_low)
        check_positive("tau_region_high", tau_region_high)
        if tau_region_high < tau_region_low:
            raise ValueError("tau_region_high must be >= tau_region_low")
        self._building = building
        self.tau_low = tau_low
        self.tau_high = tau_high
        self.tau_region_low = tau_region_low
        self.tau_region_high = tau_region_high
        self._region_codes = RegionCodeResolver(building)

    # ------------------------------------------------------------------
    # Building level
    # ------------------------------------------------------------------
    def label_building_level(self, gaps: Sequence[Gap]) -> BootstrapResult:
        """Split gaps into inside / outside / unlabeled by duration."""
        result = BootstrapResult()
        for gap in gaps:
            if gap.duration <= self.tau_low:
                result.labeled.append((gap, LABEL_INSIDE))
            elif gap.duration >= self.tau_high:
                result.labeled.append((gap, LABEL_OUTSIDE))
            else:
                result.unlabeled.append(gap)
        return result

    # ------------------------------------------------------------------
    # Region level
    # ------------------------------------------------------------------
    def region_heuristic(self, gap: Gap, log: DeviceLog,
                         history: TimeInterval) -> int:
        """Heuristic region for an inside gap.

        Same start/end region → that region; otherwise the most-visited
        region among the device's events overlapping the gap's time-of-day
        window across the history period (ties break to the start region,
        then to the lowest region id, deterministically).
        """
        start_region = self._building.region_of_ap(gap.ap_before).region_id
        end_region = self._building.region_of_ap(gap.ap_after).region_id
        if start_region == end_region:
            return start_region
        counts = self._region_visit_counts(gap, log, history)
        if not counts:
            return start_region
        best = max(sorted(counts), key=lambda rid: (counts[rid],
                                                    rid == start_region))
        return best

    def _region_visit_counts(self, gap: Gap, log: DeviceLog,
                             history: TimeInterval) -> dict[int, int]:
        """Event counts per region within the gap's time-of-day window.

        Vectorized: one ``searchsorted`` pair finds every day's window
        slice, the slices' AP codes are gathered in bulk, and each
        distinct AP resolves to its region once (instead of once per
        event per day).
        """
        window_start = seconds_of_day(gap.interval.start)
        window_end = seconds_of_day(gap.interval.end)
        if window_end <= window_start:
            window_end = SECONDS_PER_DAY
        first_day, last_day = day_span(history)
        base = np.arange(first_day, last_day + 1) * SECONDS_PER_DAY
        lo, hi = log.window_bounds(base + window_start, base + window_end)
        segments = [log.ap_indices[int(a):int(b)]
                    for a, b in zip(lo, hi) if b > a]
        if not segments:
            return {}
        codes = np.concatenate(segments)
        regions = self._region_codes.regions_of(log, codes)
        counts = np.bincount(regions)
        return {int(region_id): int(count)
                for region_id, count in enumerate(counts) if count}

    def label_region_level(self, inside_gaps: Sequence[Gap], log: DeviceLog,
                           history: TimeInterval) -> BootstrapResult:
        """Split inside gaps into region-labeled and unlabeled sets.

        Short gaps (≤ τ′l) and gaps whose endpoints agree get a confident
        heuristic label; long gaps (≥ τ′h) with disagreeing endpoints stay
        unlabeled for the semi-supervised region classifier; mid-length
        disagreeing gaps take the most-visited-region heuristic.
        """
        result = BootstrapResult()
        for gap in inside_gaps:
            start_region = self._building.region_of_ap(gap.ap_before).region_id
            end_region = self._building.region_of_ap(gap.ap_after).region_id
            if start_region == end_region or gap.duration <= self.tau_region_low:
                label = str(self.region_heuristic(gap, log, history))
                result.labeled.append((gap, label))
            elif gap.duration >= self.tau_region_high:
                result.unlabeled.append(gap)
            else:
                label = str(self.region_heuristic(gap, log, history))
                result.labeled.append((gap, label))
        return result
