"""Population-level fallback for first-time devices (paper §3, fn. 5).

The paper assumes historical events exist for a queried device, noting:
"If data for the device does not exist, e.g., if a person enters the
building for the first time, then, we can label such devices based on
aggregated location, e.g., most common label for other devices."

This module builds that aggregate: per hour-of-day counts of bootstrap
gap labels across (a sample of) the population, yielding the modal
inside/outside label and modal region for any time of day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.coarse.bootstrap import BootstrapLabeler, LABEL_INSIDE
from repro.events.gaps import extract_gaps
from repro.events.table import EventTable
from repro.space.building import Building
from repro.util.timeutil import SECONDS_PER_HOUR, TimeInterval, seconds_of_day


@dataclass(slots=True)
class _HourAggregate:
    """Label counts for one hour-of-day bucket."""

    inside: int = 0
    outside: int = 0
    region_counts: dict[int, int] = field(default_factory=dict)

    def modal_inside(self) -> bool:
        """Whether inside gaps outnumber outside gaps this hour."""
        return self.inside >= self.outside

    def modal_region(self) -> "int | None":
        """Most common region label this hour, or None."""
        if not self.region_counts:
            return None
        return max(sorted(self.region_counts), key=self.region_counts.get)


class PopulationAggregate:
    """Hour-of-day aggregate of bootstrap gap labels across devices.

    Args:
        building: Space model.
        table: Events table to aggregate over.
        bootstrap: The same threshold labeler the coarse localizer uses,
            so aggregate labels are consistent with per-device ones.
        history: Window to aggregate (defaults to the table's span).
        max_devices: Sample cap — the aggregate needs the population's
            *shape*, not every device (keeps construction cheap on large
            tables).

    The sampling pass rides the array-native coarse machinery: gap
    extraction is the vectorized :func:`~repro.events.gaps
    .extract_gap_arrays` core and each inside gap's region heuristic
    resolves through the bootstrapper's bulk ``searchsorted``/``bincount``
    visit counts, so building the aggregate costs a few array ops per
    sampled device rather than per-gap-per-day Python loops.
    """

    def __init__(self, building: Building, table: EventTable,
                 bootstrap: "BootstrapLabeler | None" = None,
                 history: "TimeInterval | None" = None,
                 max_devices: int = 64) -> None:
        self._building = building
        self._table = table
        self._bootstrap = bootstrap or BootstrapLabeler(building)
        self._history = history
        self._max_devices = max_devices
        self._hours: "list[_HourAggregate] | None" = None
        self._built_sample: "tuple[str, ...] | None" = None

    def _sample(self) -> tuple[str, ...]:
        """The device sample the aggregate is (or would be) built from."""
        return tuple(sorted(self._table.macs())[: self._max_devices])

    def _build(self) -> list[_HourAggregate]:
        hours = [_HourAggregate() for _ in range(24)]
        macs = self._sample()
        self._built_sample = macs
        try:
            history = self._history or self._table.span()
        except Exception:
            return hours  # empty table: a flat aggregate
        for mac in macs:
            log = self._table.log(mac)
            gaps = extract_gaps(log, window=history)
            if not gaps:
                continue
            split = self._bootstrap.label_building_level(gaps)
            for gap, label in split.labeled:
                region = (self._bootstrap.region_heuristic(gap, log,
                                                           history)
                          if label == LABEL_INSIDE else None)
                # Credit the label to every hour-of-day the gap covers
                # (an overnight gap is evidence of absence for all the
                # hours it spans, not just the hour it started in).
                for hour in self._covered_hours(gap.interval.start,
                                                gap.interval.end):
                    bucket = hours[hour]
                    if label == LABEL_INSIDE:
                        bucket.inside += 1
                        assert region is not None
                        bucket.region_counts[region] = \
                            bucket.region_counts.get(region, 0) + 1
                    else:
                        bucket.outside += 1
        return hours

    @staticmethod
    def _covered_hours(start: float, end: float) -> list[int]:
        """Hour-of-day buckets intersecting [start, end) (≤ 24 entries)."""
        first = int(start // SECONDS_PER_HOUR)
        last = int(max(start, end - 1e-9) // SECONDS_PER_HOUR)
        count = min(last - first + 1, 24)
        return [(first + k) % 24 for k in range(count)]

    def _bucket(self, timestamp: float) -> _HourAggregate:
        if self._hours is None:
            self._hours = self._build()
        hour = int(seconds_of_day(timestamp) // SECONDS_PER_HOUR) % 24
        return self._hours[hour]

    # ------------------------------------------------------------------
    def modal_inside(self, timestamp: float) -> bool:
        """Most common building-level label at this time of day."""
        return self._bucket(timestamp).modal_inside()

    def modal_region(self, timestamp: float) -> "int | None":
        """Most common region label at this time of day, if any."""
        return self._bucket(timestamp).modal_region()

    def invalidate(self) -> None:
        """Drop the aggregate (e.g. after ingesting new data)."""
        self._hours = None
        self._built_sample = None

    def set_history(self, history: "TimeInterval | None") -> None:
        """Change the aggregation window and drop the cached hours."""
        self._history = history
        self.invalidate()

    def invalidate_if_affected(self, macs: "Iterable[str]") -> bool:
        """Drop the aggregate only if the given changed devices fed it.

        The aggregate is built from a deterministic device sample; a
        rebuild can only differ when (a) a changed device is in that
        sample, or (b) new devices shifted the sample itself.  Devices
        outside the sample contribute nothing, so changes to them leave
        the aggregate bit-identical and the cached hours survive.
        Returns whether the aggregate was dropped.
        """
        if self._hours is None:
            return False
        sample = self._sample()
        sampled = set(sample)
        if sample != self._built_sample or any(mac in sampled
                                               for mac in macs):
            self.invalidate()
            return True
        return False
