"""Algorithm 1: the semi-supervised self-training loop (paper §3).

Train a logistic-regression classifier on the bootstrapped labels, predict
every unlabeled gap, promote the prediction with the highest confidence —
the *variance* of its class-probability array — into the labeled set, and
retrain.  Terminate when no unlabeled gaps remain and return the last
classifier.

Cost note: promoting one gap per round is the paper's literal algorithm and
is O(U) retrains for U unlabeled gaps.  ``batch_size`` promotes the top-k
per round instead, which cuts retrains ~k× with negligible quality impact;
the default of 1 follows the paper, and warm starts keep each retrain
cheap either way.

The loop runs on preallocated pools: one (n+m) × f training matrix filled
once, a boolean remaining mask over the unlabeled pool, integer label
codes, and warm-start retrains reading growing *views* of that matrix —
no per-promotion ``np.vstack`` (O(U²·f) copying) and no ``list.remove``
(O(U²) shifts).  Everything observable is bit-identical to the historical
loop retained in :mod:`repro.coarse.reference`, which the property suite
``tests/property/test_prop_coarse_core.py`` enforces.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.ml.logistic import LogisticRegression
from repro.util.stats import prediction_confidence


class SelfTrainingClassifier:
    """Self-training wrapper over :class:`LogisticRegression`.

    Args:
        classes: Fixed label vocabulary L (e.g. ``["inside", "outside"]`` or
            the region ids), so probability columns stay aligned between
            rounds even when the labeled pool lacks a class.
        batch_size: Number of highest-confidence gaps promoted per round.
        l2 / learning_rate / max_iter: Forwarded to the underlying model.
    """

    def __init__(self, classes: Sequence[Hashable], batch_size: int = 1,
                 l2: float = 1e-3, learning_rate: float = 0.5,
                 max_iter: int = 150) -> None:
        if not classes:
            raise TrainingError("self-training needs a non-empty class set")
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.classes = list(classes)
        self.batch_size = batch_size
        self._model = LogisticRegression(l2=l2, learning_rate=learning_rate,
                                         max_iter=max_iter,
                                         classes=self.classes)
        self.rounds_: int = 0
        self.promotions_: list[tuple[int, Hashable, float]] = []

    @property
    def model(self) -> LogisticRegression:
        """The classifier trained in the final round."""
        return self._model

    def fit(self, labeled: np.ndarray, labels: Sequence[Hashable],
            unlabeled: np.ndarray) -> "SelfTrainingClassifier":
        """Run Algorithm 1.

        Args:
            labeled: Design matrix of S_labeled (n × f).
            labels: Their bootstrap labels.
            unlabeled: Design matrix of S_unlabeled (m × f); may be empty.

        Records every promotion as ``(original_row, label, confidence)`` in
        :attr:`promotions_` for inspection/testing.
        """
        work_x = np.asarray(labeled, dtype=float)
        pool = np.asarray(unlabeled, dtype=float)
        if pool.ndim == 1 and pool.size:
            pool = pool.reshape(1, -1)
        m = pool.shape[0] if pool.size else 0
        if work_x.size == 0:
            raise TrainingError("self-training needs at least one labeled gap")

        distinct = set(labels)
        if len(distinct) < 2:
            # Degenerate but common: every bootstrapped gap got one label
            # (e.g. a device never away long enough to look "outside").
            # A constant classifier is the honest answer; record it and
            # label the whole pool with the single class.
            only = next(iter(distinct))
            self._constant_label = only
            self.rounds_ = 0
            for row in range(m):
                self.promotions_.append((row, only, 1.0))
            return self

        self._constant_label = None
        label_codes = self._model.encode(labels)
        self._model.fit_encoded(work_x, label_codes)
        self.rounds_ = 1
        if not m:
            return self
        # Preallocated pools: the training matrix holds the labeled rows
        # followed by promoted pool rows in promotion order; each retrain
        # reads a growing view — one O(f) row copy per promotion total.
        n = work_x.shape[0]
        codes = np.empty(n + m, dtype=int)
        codes[:n] = label_codes
        train = np.empty((n + m, work_x.shape[1]))
        train[:n] = work_x
        remaining = np.ones(m, dtype=bool)
        promoted = 0
        while promoted < m:
            # flatnonzero keeps ascending pool order — exactly the order
            # the historical remaining-list walked.
            active = np.flatnonzero(remaining)
            probs = self._model.predict_proba(pool[active])
            confidences = probs.var(axis=1)
            order = np.argsort(-confidences, kind="stable")
            for k in order[: self.batch_size]:
                row = int(active[int(k)])
                row_probs = probs[int(k)]
                code = int(row_probs.argmax())
                self.promotions_.append(
                    (row, self.classes[code],
                     prediction_confidence(row_probs)))
                train[n + promoted] = pool[row]
                codes[n + promoted] = code
                promoted += 1
                remaining[row] = False
            self._model.fit_encoded(train[: n + promoted],
                                    codes[: n + promoted], warm_start=True)
            self.rounds_ += 1
        return self

    # ------------------------------------------------------------------
    def predict_one(self, features: np.ndarray) -> "tuple[np.ndarray, Hashable]":
        """(probability array, best label) for one gap's features."""
        if getattr(self, "_constant_label", None) is not None:
            probs = np.array([1.0 if c == self._constant_label else 0.0
                              for c in self.classes])
            return probs, self._constant_label
        return self._model.predict_one(features)

    def predict(self, matrix: np.ndarray) -> list[Hashable]:
        """Best label per row."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if getattr(self, "_constant_label", None) is not None:
            return [self._constant_label] * data.shape[0]
        return self._model.predict(data)
