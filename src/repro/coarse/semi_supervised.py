"""Algorithm 1: the semi-supervised self-training loop (paper §3).

Train a logistic-regression classifier on the bootstrapped labels, predict
every unlabeled gap, promote the prediction with the highest confidence —
the *variance* of its class-probability array — into the labeled set, and
retrain.  Terminate when no unlabeled gaps remain and return the last
classifier.

Cost note: promoting one gap per round is the paper's literal algorithm and
is O(U) retrains for U unlabeled gaps.  ``batch_size`` promotes the top-k
per round instead, which cuts retrains ~k× with negligible quality impact;
the default of 1 follows the paper, and warm starts keep each retrain
cheap either way.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.ml.logistic import LogisticRegression
from repro.util.stats import prediction_confidence


class SelfTrainingClassifier:
    """Self-training wrapper over :class:`LogisticRegression`.

    Args:
        classes: Fixed label vocabulary L (e.g. ``["inside", "outside"]`` or
            the region ids), so probability columns stay aligned between
            rounds even when the labeled pool lacks a class.
        batch_size: Number of highest-confidence gaps promoted per round.
        l2 / learning_rate / max_iter: Forwarded to the underlying model.
    """

    def __init__(self, classes: Sequence[Hashable], batch_size: int = 1,
                 l2: float = 1e-3, learning_rate: float = 0.5,
                 max_iter: int = 150) -> None:
        if not classes:
            raise TrainingError("self-training needs a non-empty class set")
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.classes = list(classes)
        self.batch_size = batch_size
        self._model = LogisticRegression(l2=l2, learning_rate=learning_rate,
                                         max_iter=max_iter,
                                         classes=self.classes)
        self.rounds_: int = 0
        self.promotions_: list[tuple[int, Hashable, float]] = []

    @property
    def model(self) -> LogisticRegression:
        """The classifier trained in the final round."""
        return self._model

    def fit(self, labeled: np.ndarray, labels: Sequence[Hashable],
            unlabeled: np.ndarray) -> "SelfTrainingClassifier":
        """Run Algorithm 1.

        Args:
            labeled: Design matrix of S_labeled (n × f).
            labels: Their bootstrap labels.
            unlabeled: Design matrix of S_unlabeled (m × f); may be empty.

        Records every promotion as ``(original_row, label, confidence)`` in
        :attr:`promotions_` for inspection/testing.
        """
        work_x = np.asarray(labeled, dtype=float)
        work_y = list(labels)
        pool = np.asarray(unlabeled, dtype=float)
        if pool.ndim == 1 and pool.size:
            pool = pool.reshape(1, -1)
        remaining = list(range(pool.shape[0])) if pool.size else []
        if work_x.size == 0:
            raise TrainingError("self-training needs at least one labeled gap")

        distinct = set(work_y)
        if len(distinct) < 2:
            # Degenerate but common: every bootstrapped gap got one label
            # (e.g. a device never away long enough to look "outside").
            # A constant classifier is the honest answer; record it and
            # label the whole pool with the single class.
            only = next(iter(distinct))
            self._constant_label = only
            self.rounds_ = 0
            for row in remaining:
                self.promotions_.append((row, only, 1.0))
            return self

        self._constant_label = None
        self._model.fit(work_x, work_y)
        self.rounds_ = 1
        while remaining:
            probs = self._model.predict_proba(pool[remaining])
            confidences = probs.var(axis=1)
            order = np.argsort(-confidences, kind="stable")
            take = order[: self.batch_size]
            promoted_rows: list[int] = []
            for k in take:
                row = remaining[int(k)]
                row_probs = probs[int(k)]
                label = self.classes[int(row_probs.argmax())]
                self.promotions_.append(
                    (row, label, prediction_confidence(row_probs)))
                work_x = np.vstack([work_x, pool[row]])
                work_y.append(label)
                promoted_rows.append(row)
            for row in promoted_rows:
                remaining.remove(row)
            self._model.fit(work_x, work_y, warm_start=True)
            self.rounds_ += 1
        return self

    # ------------------------------------------------------------------
    def predict_one(self, features: np.ndarray) -> "tuple[np.ndarray, Hashable]":
        """(probability array, best label) for one gap's features."""
        if getattr(self, "_constant_label", None) is not None:
            probs = np.array([1.0 if c == self._constant_label else 0.0
                              for c in self.classes])
            return probs, self._constant_label
        return self._model.predict_one(features)

    def predict(self, matrix: np.ndarray) -> list[Hashable]:
        """Best label per row."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if getattr(self, "_constant_label", None) is not None:
            return [self._constant_label] * data.shape[0]
        return self._model.predict(data)
