"""Coarse-grained localization: missing-value detection and repair (§3).

Given a query (device, time) that falls in a gap of the device's log, the
coarse localizer decides (1) whether the device was inside or outside the
building and (2) if inside, which region it was in.  Labels for training
come from a threshold-based bootstrapper; the rest are filled in by the
self-training loop of Algorithm 1 over per-device logistic-regression
classifiers.
"""

from repro.coarse.aggregate import PopulationAggregate
from repro.coarse.features import GapFeatureExtractor, gap_feature_row
from repro.coarse.bootstrap import BootstrapLabeler, BootstrapResult, GapLabel
from repro.coarse.semi_supervised import SelfTrainingClassifier
from repro.coarse.localizer import (
    CoarseLocalizer,
    CoarseResult,
    CoarseSharedState,
    INSIDE,
    OUTSIDE,
)

__all__ = [
    "INSIDE",
    "OUTSIDE",
    "BootstrapLabeler",
    "BootstrapResult",
    "CoarseLocalizer",
    "CoarseResult",
    "CoarseSharedState",
    "GapFeatureExtractor",
    "GapLabel",
    "PopulationAggregate",
    "SelfTrainingClassifier",
    "gap_feature_row",
]
