"""Coarse-grained localization: missing-value detection and repair (§3).

Given a query (device, time) that falls in a gap of the device's log, the
coarse localizer decides (1) whether the device was inside or outside the
building and (2) if inside, which region it was in.  Labels for training
come from a threshold-based bootstrapper; the rest are filled in by the
self-training loop of Algorithm 1 over per-device logistic-regression
classifiers.

Architecture — array path vs reference oracle
---------------------------------------------

Training is array-native end to end, mirroring the fine core's layout:

* gap extraction is one vectorized diff/mask pass
  (:func:`~repro.events.gaps.extract_gap_arrays`; the classic
  :class:`~repro.events.gaps.Gap` records are materialized from it);
* :meth:`GapFeatureExtractor.matrix` emits the whole feature batch in one
  shot — time-of-day/duration/day-of-week as array transforms of the gap
  bound arrays, and the density ω of *all* gaps over *all* history days
  via two bulk binary searches
  (:meth:`~repro.events.table.DeviceLog.count_in_windows`);
* the design matrix assembles through
  :meth:`~repro.ml.pipeline.FeaturePipeline.transform_arrays` (scaled
  numerics + fancy-indexed one-hot codes);
* :meth:`SelfTrainingClassifier.fit` runs Algorithm 1 on preallocated
  pools — a boolean remaining mask, integer label codes, and warm-start
  retrains over growing matrix views — O(U·f) data movement instead of
  the historical per-promotion ``vstack``/``list.remove`` O(U²).

The pre-vectorization dict/loop implementations live in
:mod:`repro.coarse.reference` as the property-suite oracle
(``tests/property/test_prop_coarse_core.py``) and the baseline of
``benchmarks/test_bench_coarse_train.py``; nothing in the production
pipeline imports them.

Bulk-training contract
----------------------

:meth:`CoarseLocalizer.train_devices` trains any iterable of MACs in one
sorted sweep, reusing the shared extractor and spawning per-device
pipelines from a single vocab/encoder template.  It is the entry the
batch planner pre-pass calls: ``Locater.locate_batch`` bulk-trains, up
front, exactly the devices whose queries will consult models
(:meth:`CoarseLocalizer.needs_model` — gap queries; event hits never
train).  The same pre-pass is the post-ingest retrain path:
``Locater.on_ingest`` only *invalidates* the changed devices, and the
next burst bulk-trains the ones it actually queries — never inside the
ingest tick, where repeatedly-changing devices would be retrained
without ever being asked about.  Training is
a pure function of the table and history window, so the pre-pass never
changes an answer — it only moves cost off the per-query path.  Unknown
MACs are skipped (the per-query path still raises for them), and cached
devices are returned as-is.
"""

from repro.coarse.aggregate import PopulationAggregate
from repro.coarse.features import (
    GapFeatureExtractor,
    GapFeatureMatrix,
    gap_feature_row,
)
from repro.coarse.bootstrap import BootstrapLabeler, BootstrapResult, GapLabel
from repro.coarse.semi_supervised import SelfTrainingClassifier
from repro.coarse.localizer import (
    CoarseLocalizer,
    CoarseResult,
    CoarseSharedState,
    INSIDE,
    OUTSIDE,
)

__all__ = [
    "INSIDE",
    "OUTSIDE",
    "BootstrapLabeler",
    "BootstrapResult",
    "CoarseLocalizer",
    "CoarseResult",
    "CoarseSharedState",
    "GapFeatureExtractor",
    "GapFeatureMatrix",
    "GapLabel",
    "PopulationAggregate",
    "SelfTrainingClassifier",
    "gap_feature_row",
]
