"""Gap feature extraction (paper §3).

For each gap the paper extracts: start/end time-of-day, duration, start/end
day-of-week, start/end region, and the *connection density* ω — the average
number of the device's connectivity events during the same time-of-day
window per day of the history period T.
"""

from __future__ import annotations

from typing import Sequence

from repro.events.gaps import Gap
from repro.events.table import DeviceLog
from repro.space.building import Building
from repro.util.timeutil import (
    SECONDS_PER_DAY,
    TimeInterval,
    day_index,
    day_of_week,
    seconds_of_day,
)

#: Column names of the numeric gap features, in design-matrix order.
NUMERIC_COLUMNS = ("start_time", "end_time", "duration", "density")

#: Column names of the categorical gap features.
CATEGORICAL_COLUMNS = ("start_day", "end_day", "start_region", "end_region")


def gap_feature_row(gap: Gap, building: Building, log: DeviceLog,
                    history: TimeInterval) -> dict:
    """Build the feature dict of one gap.

    The connection density ω averages the device's event count inside the
    gap's time-of-day window over each day of ``history``, matching the
    paper's "average number of logged connectivity events for the device
    during the same time period of a gap for each day in T".
    """
    start_region = building.region_of_ap(gap.ap_before).region_id
    end_region = building.region_of_ap(gap.ap_after).region_id
    return {
        "start_time": seconds_of_day(gap.interval.start),
        "end_time": seconds_of_day(gap.interval.end),
        "duration": gap.duration,
        "density": _connection_density(gap, log, history),
        "start_day": day_of_week(gap.interval.start),
        "end_day": day_of_week(gap.interval.end),
        "start_region": start_region,
        "end_region": end_region,
    }


def _connection_density(gap: Gap, log: DeviceLog,
                        history: TimeInterval) -> float:
    """ω: mean daily event count within the gap's time-of-day window."""
    window_start = seconds_of_day(gap.interval.start)
    window_end = seconds_of_day(gap.interval.end)
    if window_end <= window_start:
        # Gap wraps past midnight; use the start-to-midnight slice, which
        # keeps the window well-defined (the paper assumes gaps do not span
        # multiple days).
        window_end = SECONDS_PER_DAY
    first_day = day_index(history.start)
    last_day = day_index(max(history.start, history.end - 1e-9))
    n_days = max(1, last_day - first_day + 1)
    total = 0
    for day in range(first_day, last_day + 1):
        base = day * SECONDS_PER_DAY
        total += log.count_in(TimeInterval(base + window_start,
                                           base + window_end))
    return total / n_days


class GapFeatureExtractor:
    """Vectorizes gaps for one building.

    Keeps the building handy and exposes the fixed categorical vocabularies
    (7 days of week; all region ids) so every device's design matrix has
    identical width.
    """

    def __init__(self, building: Building) -> None:
        self._building = building
        region_ids = [region.region_id for region in building.regions]
        self.categorical_vocab: list[tuple[str, Sequence[int]]] = [
            ("start_day", list(range(7))),
            ("end_day", list(range(7))),
            ("start_region", region_ids),
            ("end_region", region_ids),
        ]
        self.numeric_columns = list(NUMERIC_COLUMNS)

    def rows(self, gaps: Sequence[Gap], log: DeviceLog,
             history: TimeInterval) -> list[dict]:
        """Feature rows for a batch of gaps of the same device."""
        return [gap_feature_row(gap, self._building, log, history)
                for gap in gaps]
