"""Gap feature extraction (paper §3), array-native.

For each gap the paper extracts: start/end time-of-day, duration, start/end
day-of-week, start/end region, and the *connection density* ω — the average
number of the device's connectivity events during the same time-of-day
window per day of the history period T.

The extractor emits the whole batch as one :class:`GapFeatureMatrix` —
numeric columns as a dense float64 matrix and categoricals as one-hot
*column codes* — so training builds the design matrix with array ops only.
The density of every gap is computed in one shot: a (gaps × days) grid of
absolute window bounds fed to :meth:`~repro.events.table.DeviceLog
.count_in_windows`, two vectorized binary searches total instead of
gaps × days ``count_in`` calls.  The historical one-dict-per-gap path is
retained in :mod:`repro.coarse.reference` as the property-suite oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.events.gaps import Gap
from repro.events.table import DeviceLog
from repro.space.building import Building
from repro.util.timeutil import (
    DAYS_PER_WEEK,
    SECONDS_PER_DAY,
    TimeInterval,
    day_span,
)

#: Column names of the numeric gap features, in design-matrix order.
NUMERIC_COLUMNS = ("start_time", "end_time", "duration", "density")

#: Column names of the categorical gap features.
CATEGORICAL_COLUMNS = ("start_day", "end_day", "start_region", "end_region")


class RegionCodeResolver:
    """Memoized AP-vocabulary-code → region-id resolution for one building.

    The single implementation behind every code-indexed region lookup
    (bootstrap visit counts, the modal-region count): a lookup array the
    size of the AP vocabulary, grown lazily as the (append-only,
    table-wide) vocabulary grows, with each distinct code resolved
    through ``building.region_of_ap`` exactly once on first sight — so
    unknown APs never referenced by any event stay unresolved, matching
    the historical per-event behavior.
    """

    def __init__(self, building: Building) -> None:
        self._building = building
        self._vocab: "Sequence[str] | None" = None
        self._lookup: "np.ndarray | None" = None

    def regions_of(self, log: DeviceLog, codes: np.ndarray) -> np.ndarray:
        """Region id per entry of ``codes`` (AP vocabulary indices)."""
        vocab = log.ap_vocab
        lookup = self._lookup
        if self._vocab is not vocab or lookup is None:
            lookup = np.full(len(vocab), -1, dtype=np.int64)
        elif lookup.size < len(vocab):  # vocabulary grew since caching
            lookup = np.concatenate(
                [lookup, np.full(len(vocab) - lookup.size, -1,
                                 dtype=np.int64)])
        for code in np.unique(codes[lookup[codes] < 0]):
            lookup[int(code)] = self._building.region_of_ap(
                log.resolve_ap(int(code))).region_id
        # Cache vocab and lookup together only once fully resolved, so a
        # failed resolution can never pair a new vocab with stale codes.
        self._vocab = vocab
        self._lookup = lookup
        return lookup[codes]


@dataclass(frozen=True, slots=True)
class GapFeatureMatrix:
    """One device's gap features in array form.

    Attributes:
        numeric: (gaps × 4) float64 matrix in :data:`NUMERIC_COLUMNS`
            order — raw (unscaled) values, fed to the pipeline's scaler.
        categorical_codes: Per categorical column, the one-hot *column
            code* of each gap (−1 would encode as all zeros, matching the
            encoder's unseen-category contract, though the extractor's
            fixed vocabularies always resolve).
    """

    numeric: np.ndarray
    categorical_codes: "dict[str, np.ndarray]"

    def __len__(self) -> int:
        return int(self.numeric.shape[0])


class GapFeatureExtractor:
    """Vectorizes gaps for one building.

    Keeps the building handy and exposes the fixed categorical vocabularies
    (7 days of week; all region ids) so every device's design matrix has
    identical width.
    """

    def __init__(self, building: Building) -> None:
        self._building = building
        region_ids = [region.region_id for region in building.regions]
        self.categorical_vocab: list[tuple[str, Sequence[int]]] = [
            ("start_day", list(range(DAYS_PER_WEEK))),
            ("end_day", list(range(DAYS_PER_WEEK))),
            ("start_region", region_ids),
            ("end_region", region_ids),
        ]
        self.numeric_columns = list(NUMERIC_COLUMNS)
        # One-hot column of each region id (region ids are dense ints, so
        # an array lookup beats a dict in the vectorized path).
        size = max(region_ids, default=-1) + 1
        self._region_code = np.full(size, -1, dtype=np.int64)
        for column, region_id in enumerate(region_ids):
            self._region_code[region_id] = column
        # AP id → region id, resolved on first use per AP.
        self._ap_region: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _region_of_ap(self, ap_id: str) -> int:
        region_id = self._ap_region.get(ap_id)
        if region_id is None:
            region_id = self._building.region_of_ap(ap_id).region_id
            self._ap_region[ap_id] = region_id
        return region_id

    def matrix(self, gaps: Sequence[Gap], log: DeviceLog,
               history: TimeInterval) -> GapFeatureMatrix:
        """The full feature batch of one device's gaps, in one shot.

        Gap bounds and endpoint regions are gathered into arrays with a
        single cheap pass over ``gaps``; every feature — including the
        density ω of all gaps over all history days — is then a
        vectorized transform.  Values are bit-identical to the reference
        one-dict-per-gap path.
        """
        count = len(gaps)
        starts = np.empty(count)
        ends = np.empty(count)
        start_regions = np.empty(count, dtype=np.int64)
        end_regions = np.empty(count, dtype=np.int64)
        for i, gap in enumerate(gaps):
            starts[i] = gap.interval.start
            ends[i] = gap.interval.end
            start_regions[i] = self._region_of_ap(gap.ap_before)
            end_regions[i] = self._region_of_ap(gap.ap_after)

        numeric = np.empty((count, len(NUMERIC_COLUMNS)))
        numeric[:, 0] = starts % SECONDS_PER_DAY
        numeric[:, 1] = ends % SECONDS_PER_DAY
        numeric[:, 2] = ends - starts
        numeric[:, 3] = self._densities(starts, ends, log, history)

        days = (starts // SECONDS_PER_DAY).astype(np.int64)
        end_days = (ends // SECONDS_PER_DAY).astype(np.int64)
        codes = {
            "start_day": days % DAYS_PER_WEEK,
            "end_day": end_days % DAYS_PER_WEEK,
            "start_region": self._region_code[start_regions],
            "end_region": self._region_code[end_regions],
        }
        return GapFeatureMatrix(numeric=numeric, categorical_codes=codes)

    def _densities(self, starts: np.ndarray, ends: np.ndarray,
                   log: DeviceLog, history: TimeInterval) -> np.ndarray:
        """ω for every gap at once (mean daily count in each gap's window).

        Gaps wrapping past midnight use the start-to-midnight slice, which
        keeps the window well-defined (the paper assumes gaps do not span
        multiple days).
        """
        window_start = starts % SECONDS_PER_DAY
        window_end = ends % SECONDS_PER_DAY
        window_end = np.where(window_end <= window_start,
                              SECONDS_PER_DAY, window_end)
        first_day, last_day = day_span(history)
        n_days = max(1, last_day - first_day + 1)
        base = np.arange(first_day, last_day + 1) * SECONDS_PER_DAY
        counts = log.count_in_windows(base[None, :] + window_start[:, None],
                                      base[None, :] + window_end[:, None])
        return counts.sum(axis=1) / n_days

    def rows(self, gaps: Sequence[Gap], log: DeviceLog,
             history: TimeInterval) -> list[dict]:
        """Feature rows as dicts (introspection/boundary adapter).

        Values come from the same array path :meth:`matrix` runs; only the
        presentation differs.  Categorical entries hold the raw category
        values (day of week, region id), as the historical API did.
        """
        feature_matrix = self.matrix(gaps, log, history)
        vocab = dict(self.categorical_vocab)
        rows: list[dict] = []
        for i in range(len(gaps)):
            row = {name: float(feature_matrix.numeric[i, j])
                   for j, name in enumerate(NUMERIC_COLUMNS)}
            for name in CATEGORICAL_COLUMNS:
                code = int(feature_matrix.categorical_codes[name][i])
                row[name] = vocab[name][code]
            rows.append(row)
        return rows


def gap_feature_row(gap: Gap, building: Building, log: DeviceLog,
                    history: TimeInterval) -> dict:
    """Build the feature dict of one gap.

    The connection density ω averages the device's event count inside the
    gap's time-of-day window over each day of ``history``, matching the
    paper's "average number of logged connectivity events for the device
    during the same time period of a gap for each day in T".
    """
    return GapFeatureExtractor(building).rows([gap], log, history)[0]
