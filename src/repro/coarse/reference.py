"""Dict/loop reference implementations of the coarse training pipeline.

The production coarse trainer now runs array-native end to end:
vectorized gap extraction (:func:`repro.events.gaps.extract_gap_arrays`),
one-shot design matrices (:meth:`repro.coarse.features
.GapFeatureExtractor.matrix`), and a preallocated-pool self-training loop
(:class:`repro.coarse.semi_supervised.SelfTrainingClassifier`).  This
module retains the pre-vectorization implementations — per-gap feature
dicts, a per-day ``count_in`` density loop, and the literal
vstack/``list.remove`` Algorithm 1 — with two jobs:

* **oracle** for the property suite
  (``tests/property/test_prop_coarse_core.py``): on random logs and
  training sets the array path must reproduce these bit for bit —
  identical gaps, identical design matrices, identical promotion order
  and labels, identical final coefficients under warm start;
* **baseline** for ``benchmarks/test_bench_coarse_train.py``, which
  tracks the array path's cold-training and post-ingest retrain speedup.

Nothing in the production pipeline imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Sequence

import numpy as np

from repro.coarse.bootstrap import BootstrapLabeler, LABEL_INSIDE, LABEL_OUTSIDE
from repro.errors import TrainingError
from repro.events.gaps import Gap
from repro.events.table import DeviceLog, EventTable
from repro.ml.logistic import LogisticRegression
from repro.ml.pipeline import FeaturePipeline
from repro.space.building import Building
from repro.util.stats import prediction_confidence
from repro.util.timeutil import (
    SECONDS_PER_DAY,
    TimeInterval,
    day_index,
    day_of_week,
    seconds_of_day,
)

#: Column names of the numeric gap features, in design-matrix order.
NUMERIC_COLUMNS = ("start_time", "end_time", "duration", "density")


def reference_extract_gaps(log: DeviceLog, delta: "float | None" = None,
                           window: "TimeInterval | None" = None) -> list[Gap]:
    """The historical per-event-pair gap extraction loop."""
    if delta is None:
        delta = log.device.delta
    gaps: list[Gap] = []
    n = len(log)
    for i in range(n - 1):
        t0 = log.time_at(i)
        t1 = log.time_at(i + 1)
        if t1 - t0 <= 2 * delta:
            continue
        if window is not None and not window.contains(t0):
            continue
        gaps.append(Gap(
            mac=log.device.mac,
            interval=TimeInterval(t0 + delta, t1 - delta),
            before_position=i,
            after_position=i + 1,
            ap_before=log.ap_at(i),
            ap_after=log.ap_at(i + 1),
        ))
    return gaps


def connection_density(gap: Gap, log: DeviceLog,
                       history: TimeInterval) -> float:
    """ω via the historical one-``count_in``-per-day loop."""
    window_start = seconds_of_day(gap.interval.start)
    window_end = seconds_of_day(gap.interval.end)
    if window_end <= window_start:
        window_end = SECONDS_PER_DAY
    first_day = day_index(history.start)
    last_day = day_index(max(history.start, history.end - 1e-9))
    n_days = max(1, last_day - first_day + 1)
    total = 0
    for day in range(first_day, last_day + 1):
        base = day * SECONDS_PER_DAY
        total += log.count_in(TimeInterval(base + window_start,
                                           base + window_end))
    return total / n_days


def reference_region_visit_counts(building: Building, gap: Gap,
                                  log: DeviceLog,
                                  history: TimeInterval) -> dict[int, int]:
    """The historical per-event region-count loop of the bootstrapper."""
    window_start = seconds_of_day(gap.interval.start)
    window_end = seconds_of_day(gap.interval.end)
    if window_end <= window_start:
        window_end = SECONDS_PER_DAY
    counts: dict[int, int] = {}
    first_day = day_index(history.start)
    last_day = day_index(max(history.start, history.end - 1e-9))
    for day in range(first_day, last_day + 1):
        base = day * SECONDS_PER_DAY
        _, ap_indices = log.slice_interval(
            TimeInterval(base + window_start, base + window_end))
        for ap_index in ap_indices:
            ap_id = log.resolve_ap(int(ap_index))
            region_id = building.region_of_ap(ap_id).region_id
            counts[region_id] = counts.get(region_id, 0) + 1
    return counts


def gap_feature_row(gap: Gap, building: Building, log: DeviceLog,
                    history: TimeInterval) -> dict:
    """The historical one-dict-per-gap feature builder."""
    start_region = building.region_of_ap(gap.ap_before).region_id
    end_region = building.region_of_ap(gap.ap_after).region_id
    return {
        "start_time": seconds_of_day(gap.interval.start),
        "end_time": seconds_of_day(gap.interval.end),
        "duration": gap.duration,
        "density": connection_density(gap, log, history),
        "start_day": day_of_week(gap.interval.start),
        "end_day": day_of_week(gap.interval.end),
        "start_region": start_region,
        "end_region": end_region,
    }


class ReferenceGapFeatureExtractor:
    """Row-of-dicts extractor feeding :meth:`FeaturePipeline.transform`."""

    def __init__(self, building: Building) -> None:
        self._building = building
        region_ids = [region.region_id for region in building.regions]
        self.categorical_vocab: list[tuple[str, Sequence[int]]] = [
            ("start_day", list(range(7))),
            ("end_day", list(range(7))),
            ("start_region", region_ids),
            ("end_region", region_ids),
        ]
        self.numeric_columns = list(NUMERIC_COLUMNS)

    def rows(self, gaps: Sequence[Gap], log: DeviceLog,
             history: TimeInterval) -> list[dict]:
        """Feature rows for a batch of gaps of the same device."""
        return [gap_feature_row(gap, self._building, log, history)
                for gap in gaps]


class ReferenceSelfTrainingClassifier:
    """Algorithm 1 with per-promotion ``np.vstack`` and ``list.remove``.

    O(U²) data movement for U unlabeled gaps — the cost the preallocated
    production loop removes.  Everything observable (``promotions_``,
    ``rounds_``, predictions, final coefficients) must match the
    production :class:`~repro.coarse.semi_supervised
    .SelfTrainingClassifier` bit for bit.
    """

    def __init__(self, classes: Sequence[Hashable], batch_size: int = 1,
                 l2: float = 1e-3, learning_rate: float = 0.5,
                 max_iter: int = 150) -> None:
        if not classes:
            raise TrainingError("self-training needs a non-empty class set")
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.classes = list(classes)
        self.batch_size = batch_size
        self._model = LogisticRegression(l2=l2, learning_rate=learning_rate,
                                         max_iter=max_iter,
                                         classes=self.classes)
        self.rounds_: int = 0
        self.promotions_: list[tuple[int, Hashable, float]] = []

    @property
    def model(self) -> LogisticRegression:
        return self._model

    def fit(self, labeled: np.ndarray, labels: Sequence[Hashable],
            unlabeled: np.ndarray) -> "ReferenceSelfTrainingClassifier":
        work_x = np.asarray(labeled, dtype=float)
        work_y = list(labels)
        pool = np.asarray(unlabeled, dtype=float)
        if pool.ndim == 1 and pool.size:
            pool = pool.reshape(1, -1)
        remaining = list(range(pool.shape[0])) if pool.size else []
        if work_x.size == 0:
            raise TrainingError("self-training needs at least one labeled gap")

        distinct = set(work_y)
        if len(distinct) < 2:
            only = next(iter(distinct))
            self._constant_label = only
            self.rounds_ = 0
            for row in remaining:
                self.promotions_.append((row, only, 1.0))
            return self

        self._constant_label = None
        self._model.fit(work_x, work_y)
        self.rounds_ = 1
        while remaining:
            probs = self._model.predict_proba(pool[remaining])
            confidences = probs.var(axis=1)
            order = np.argsort(-confidences, kind="stable")
            take = order[: self.batch_size]
            promoted_rows: list[int] = []
            for k in take:
                row = remaining[int(k)]
                row_probs = probs[int(k)]
                label = self.classes[int(row_probs.argmax())]
                self.promotions_.append(
                    (row, label, prediction_confidence(row_probs)))
                work_x = np.vstack([work_x, pool[row]])
                work_y.append(label)
                promoted_rows.append(row)
            for row in promoted_rows:
                remaining.remove(row)
            self._model.fit(work_x, work_y, warm_start=True)
            self.rounds_ += 1
        return self

    def predict_one(self, features: np.ndarray
                    ) -> "tuple[np.ndarray, Hashable]":
        if getattr(self, "_constant_label", None) is not None:
            probs = np.array([1.0 if c == self._constant_label else 0.0
                              for c in self.classes])
            return probs, self._constant_label
        return self._model.predict_one(features)

    def predict(self, matrix: np.ndarray) -> list[Hashable]:
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if getattr(self, "_constant_label", None) is not None:
            return [self._constant_label] * data.shape[0]
        return self._model.predict(data)


@dataclass(slots=True)
class ReferenceDeviceModels:
    """What :func:`train_device_reference` produces for one device."""

    pipeline: FeaturePipeline
    building_clf: "ReferenceSelfTrainingClassifier | None"
    region_clf: "ReferenceSelfTrainingClassifier | None"
    fallback_region: "int | None"


def _modal_region_reference(building: Building, log: DeviceLog,
                            history: TimeInterval) -> "int | None":
    """The historical per-event dict-count modal region."""
    times, ap_indices = log.slice_interval(history)
    if times.size == 0:
        return None
    counts: dict[int, int] = {}
    for ap_index in ap_indices:
        region_id = building.region_of_ap(
            log.resolve_ap(int(ap_index))).region_id
        counts[region_id] = counts.get(region_id, 0) + 1
    return max(sorted(counts), key=counts.get)


def train_device_reference(building: Building, table: EventTable, mac: str,
                           bootstrap: "BootstrapLabeler | None" = None,
                           history: "TimeInterval | None" = None,
                           batch_size: int = 1) -> ReferenceDeviceModels:
    """The historical lazy one-device training path, end to end.

    Mirrors ``CoarseLocalizer._train_device`` as it stood before the
    array rewrite: dict feature rows through ``FeaturePipeline.fit`` /
    ``transform`` and the vstack self-training loop.  The property suite
    and the coarse-training benchmark drive this as the ground truth.
    """
    bootstrap = bootstrap or BootstrapLabeler(building)
    log = table.log(mac)
    if history is None:
        history = table.span()
    extractor = ReferenceGapFeatureExtractor(building)
    gaps = reference_extract_gaps(log, window=history)

    pipeline = FeaturePipeline(extractor.numeric_columns,
                               extractor.categorical_vocab)
    if not gaps:
        return ReferenceDeviceModels(
            pipeline=pipeline, building_clf=None, region_clf=None,
            fallback_region=_modal_region_reference(building, log, history))

    rows = extractor.rows(gaps, log, history)
    pipeline.fit(rows)
    matrix = pipeline.transform(rows)
    row_of_gap = {id(gap): i for i, gap in enumerate(gaps)}

    split = bootstrap.label_building_level(gaps)
    building_clf: "ReferenceSelfTrainingClassifier | None" = None
    if split.labeled:
        labeled_idx = [row_of_gap[id(g)] for g, _ in split.labeled]
        labels = [label for _, label in split.labeled]
        unlabeled_idx = [row_of_gap[id(g)] for g in split.unlabeled]
        building_clf = ReferenceSelfTrainingClassifier(
            classes=[LABEL_INSIDE, LABEL_OUTSIDE], batch_size=batch_size)
        building_clf.fit(matrix[labeled_idx], labels,
                         matrix[unlabeled_idx]
                         if unlabeled_idx else np.zeros((0, matrix.shape[1])))

    inside_gaps = [g for g, label in split.labeled if label == LABEL_INSIDE]
    region_clf: "ReferenceSelfTrainingClassifier | None" = None
    if inside_gaps:
        region_split = bootstrap.label_region_level(inside_gaps, log, history)
        if region_split.labeled:
            region_classes = [str(r.region_id) for r in building.regions]
            labeled_idx = [row_of_gap[id(g)] for g, _ in region_split.labeled]
            labels = [label for _, label in region_split.labeled]
            unlabeled_idx = [row_of_gap[id(g)]
                             for g in region_split.unlabeled]
            region_clf = ReferenceSelfTrainingClassifier(
                classes=region_classes, batch_size=batch_size)
            region_clf.fit(matrix[labeled_idx], labels,
                           matrix[unlabeled_idx]
                           if unlabeled_idx
                           else np.zeros((0, matrix.shape[1])))

    return ReferenceDeviceModels(
        pipeline=pipeline,
        building_clf=building_clf,
        region_clf=region_clf,
        fallback_region=_modal_region_reference(building, log, history))
