"""LOCATER reproduction: cleaning WiFi connectivity data for semantic localization.

A full reimplementation of the VLDB 2020 LOCATER system (Lin et al.):
coarse-grained localization as missing-value repair over connectivity
gaps, fine-grained room disambiguation via room/device/group affinities,
an affinity-graph caching engine, baselines, a SmartBench-style synthetic
data generator, and the paper's complete evaluation harness.

Typical use::

    from repro import ScenarioSpec, Simulator, Locater

    scenario = ScenarioSpec.dbh_like(seed=7)
    dataset = Simulator(scenario).run(days=14)
    locater = Locater(dataset.building, dataset.metadata, dataset.table)
    answer = locater.locate(dataset.macs()[0], timestamp=dataset.span.end - 3600)
    print(answer.location_label)

Batch API
---------

Experiments and analytics workloads (occupancy grids, trajectories,
contact tracing) ask many queries at once.  ``Locater.locate_batch``
answers a whole batch with shared computation: queries are grouped by
(device, time bucket) by :func:`repro.system.planner.plan_queries` and
executed front-to-back in timestamp order, so one online-device snapshot
serves every query of a timestamp, gap features and affinities are
memoized across the batch, and the caching engine warms chronologically.
Answers are bitwise identical to the sequential path (see the equivalence
suite under ``tests/integration/test_batch_equivalence.py``) and come
back in input order::

    from repro import Locater, LocationQuery, plan_queries

    queries = [LocationQuery(mac, t) for mac in dataset.macs()
               for t in sampling_grid]
    answers = locater.locate_batch(queries)      # one shared-work pass
    plan = plan_queries(queries)                 # inspect the grouping
    print(plan.stats())

``examples/batch_queries.py`` walks through the API end to end and
benchmarks it against the per-query loop
(``benchmarks/test_bench_batch_engine.py`` holds the tracked benchmark).

Streaming ingestion
-------------------

LOCATER is a live system (paper Fig. 5): events keep arriving while
queries are served.  ``EventTable.freeze`` merges new rows into the
sorted per-device logs in O(new) (``searchsorted``/``insert``, no
re-sort) and publishes a generation-keyed change feed
(``changed_since``); an :class:`~repro.system.IngestionEngine` reports
which devices changed over which interval and re-estimates δ only for
those; and ``Locater.on_ingest`` invalidates *surgically* — only the
changed devices' coarse models, affinity memos, stale neighbor
snapshots and (when they fed it) the population aggregate are dropped,
escalating to a full drop only when the training window itself moved.
:class:`~repro.system.StreamingSession` wires the three into a serve
loop::

    from repro import Locater, StreamingSession

    session = StreamingSession(locater)      # wraps locater.table
    session.ingest(new_events)               # O(new) merge + invalidate
    answers = session.query(burst)           # fresh, shared-work answers

Answers are bitwise identical to a system rebuilt from scratch over the
merged log (``tests/integration/test_streaming_equivalence.py``), at a
fraction of the cost (``benchmarks/test_bench_streaming.py``, archived
in ``results/bench_streaming.txt``).  ``examples/streaming_ingest.py``
walks the loop end to end.

Array numeric core
------------------

The fine-grained hot path — group affinities, posterior updates,
possible-world bounds — runs on dense numpy arrays over interned room
ids.  Every :class:`~repro.space.Building` owns a
:class:`~repro.space.RoomIndex` (room id ↔ dense int code, mirroring
the event table's AP vocabulary); candidate sets become int32 code
arrays and affinities become float64 vectors aligned to them.
``GroupAffinityModel.group_affinities`` evaluates α(D, r, t) for all
candidate rooms in one pass, and ``RoomPosterior`` folds whole affinity
vectors with one ``np.log`` per neighbor.  String-keyed dicts survive
only at the public boundary (``FineResult.posterior``, the CLI, the
eval harness) as thin adapters — see :mod:`repro.fine` for the
contract, :mod:`repro.fine.reference` for the retained scalar oracle,
and ``benchmarks/test_bench_fine_core.py`` for the tracked
sequential-path speedup.

Sharded cluster layer
---------------------

Past one process, :class:`~repro.cluster.ShardedLocater` serves the
same query surface from N shards.  The event log is *replicated* to
every shard (cleaning couples devices through co-location — neighbor
discovery, affinity mining and the population aggregate read the whole
log) while serving state is *partitioned* by a pluggable
:class:`~repro.cluster.ShardRouter`: each device's queries, trained
models, storage namespace (:meth:`StorageEngine.namespace
<repro.system.storage.StorageEngine.namespace>`) and cache warm state
live on exactly one shard.  A swappable
:class:`~repro.cluster.ShardExecutor` decides placement — serial and
thread-pool shards share the cluster's table in-process; the
process-pool executor runs one actor worker per shard, either with a
fork copy-on-write replica or (``shared_memory=True``) *attached* to
the one shared-memory table copy — see the memory architecture below.
Answers are bitwise identical to a lone
``Locater`` whenever they are pure functions of the table
(``tests/integration/test_cluster_equivalence.py``) — and with the §5
caching engine on as well, under the
:class:`~repro.cluster.ComponentAffinityRouter`: devices are routed by
connected component of their potential co-presence (affinity edges
never leave a component), so each shard's cache warms exactly like the
lone system's, aggregated hit/miss counters included, and component
merges migrate recorded edges between shards at ingest boundaries.
``ingest`` merges once, then fans invalidation out through the
existing ``on_ingest`` machinery, so ``StreamingSession``, the CLI,
analytics and the eval runner work unchanged against a cluster::

    from repro import ShardedLocater, ThreadShardExecutor

    cluster = ShardedLocater(building, metadata, table, shard_count=4,
                             executor=ThreadShardExecutor())
    answers = cluster.locate_batch(queries)   # route → execute → merge
    cluster.ingest(new_events)                # merge once, fan out
    cluster.close()

See :mod:`repro.cluster` for the architecture (router / executor /
shard lifecycle) and the component-routing contract,
``examples/campus_cluster.py`` for a 3-building campus on a 4-shard
cluster with streaming ingest, ``examples/cluster_caching.py`` for
caching-on cluster serving, and ``benchmarks/test_bench_cluster.py`` /
``benchmarks/test_bench_cluster_caching.py`` (archived in
``results/``) for throughput versus shard count and the cluster-scale
cache speedup.

Memory architecture
-------------------

The event table's hot numeric columns (per-device timestamps and AP
codes) live behind a pluggable :class:`~repro.events.ColumnStore`
rather than bare attributes.  The default
:class:`~repro.events.HeapColumnStore` keeps ordinary heap arrays and
can *spill* cold device logs to compressed temp files;
:class:`~repro.events.SharedMemoryColumnStore` places them in named
``multiprocessing.shared_memory`` segments, so a
``ShardedLocater(..., shared_memory=True)`` process cluster holds **one
physical copy** of the table regardless of shard count — workers attach
read-only views by segment name (``EventTable.describe()`` /
``EventTable.attach()``), and ingest fans out generation-keyed
``sync_payload`` diffs instead of replicating merged tables.  This also
lifts the fork-only restriction: attached workers run under ``spawn``
too.  Ownership rule: the process that built the store unlinks its
segments on ``close``; attached processes never do.

Above the stores sits an opt-in eviction tier.  Setting
``LocaterConfig(memory_budget_bytes=...)`` gives the ``Locater`` a
:class:`~repro.system.MemoryManager`: one LRU across per-device coarse
models, fine/coarse memo tables and cold device logs, with byte-level
accounting.  When the budget is exceeded, least-recently-used entries
are dropped (models, memos) or spilled (device logs) — and because
every evictable is a pure function of the event table, *any* eviction
schedule yields bitwise-identical answers, batch and streaming alike
(``tests/integration/test_memory_equivalence.py``,
``tests/property/test_prop_memory.py`` prove this; the zero-copy
memory claim is measured in ``benchmarks/test_bench_shared_memory.py``,
archived as ``results/BENCH_shared_memory.json``)::

    from repro import Locater, LocaterConfig

    budgeted = Locater(building, metadata, table,
                       config=LocaterConfig(memory_budget_bytes=64 << 20))
    answer = budgeted.locate(mac, t)      # identical to the unbudgeted answer
    print(budgeted.memory.stats())        # residency, evictions, by category

Serving architecture
--------------------

The batch engine answers many queries at once; the cluster spreads
them over shards; :class:`~repro.serve.AsyncGateway` turns *concurrency
itself* into batches.  Callers await ``gateway.locate(mac, t)`` as
single-query coroutines; the gateway admits each query past a bounded
pending queue (past the bound it sheds immediately with a typed
:class:`~repro.errors.GatewayOverloadedError` — rejections, not
unbounded latency; ``await gateway.ready()`` is the backpressure
signal), routes it to a per-shard submission lane, and each lane
coalesces whatever arrives within a batching window (``max_wait`` /
``max_batch``) into one planner batch executed off the event loop — so
one slow shard never stalls another's windows, and per-dispatch
overhead (a pipe round-trip, for process shards) is paid once per
window instead of once per query.  ``max_wait`` is the knob: longer
windows coalesce more (throughput) at a latency floor, ``max_wait=0``
still coalesces opportunistically under load.  Ingest ticks serialize
against in-flight windows through the streaming machinery that owns
the gateway's warm state, and the concurrent equivalence contract
extends the core invariant: any interleaving of gateway calls returns
bitwise the answers, storage writes and summed cache counters of the
same queries run through plain ``locate_batch``
(``tests/integration/test_gateway_equivalence.py`` — the realized
schedule is journaled and replayed).  The window/latency trade-off is
measured in ``benchmarks/test_bench_gateway.py`` (archived as
``results/BENCH_gateway.json``)::

    from repro import AsyncGateway

    async with AsyncGateway(cluster, max_wait=0.002, max_batch=64) as gw:
        answers = await asyncio.gather(*(gw.locate(mac, t)
                                         for mac, t in calls))

See :mod:`repro.serve` for the lane architecture and
``examples/async_gateway.py`` for a closed-loop serving walkthrough.

Contracts
---------

Every equivalence suite above asserts *bitwise* identical answers, and
that property rests on coding conventions the tests cannot see directly.
``repro-lint`` (:mod:`repro.tools.lint`; run with ``python -m
repro.tools.lint src/repro``) enforces them mechanically — each rule is
checked by the named module and exercised by seeded-mutation fixtures
in ``tests/lint/``:

* **RL001 invalidation-completeness**
  (:mod:`repro.tools.lint.checkers.invalidation`) — every memo/cache
  attribute of the shared-state classes (``CoarseSharedState``,
  ``FineSharedState``, ``BatchState``, ``NeighborIndex``,
  ``CachingEngine``) is reachable from a ``drop_*``/``invalidate_*``
  method, ``MEMO_ATTRS`` lists exactly the memo dicts, and the
  invalidation surface is invoked from the ingest path — so no cache
  can silently outlive the events it was computed from.
* **RL002 determinism**
  (:mod:`repro.tools.lint.checkers.determinism`) — answer-path modules
  (``repro/{fine,coarse,cache,system,cluster,events}``) never iterate
  sets or ``.keys()`` without ``sorted()``, never call ``time.time()``,
  the global ``random`` module, legacy ``np.random`` state, or an
  unseeded ``np.random.default_rng()``.
* **RL003 shared-memory-lifecycle**
  (:mod:`repro.tools.lint.checkers.lifecycle`) — classes that create
  ``SharedMemory`` segments reach both ``close()`` and ``unlink()``
  from a teardown path, and every unlink is ownership-gated (attached
  views never unlink — the rule stated under *Memory architecture*).
* **RL004 dtype-contracts**
  (:mod:`repro.tools.lint.checkers.dtypes`) — array constructors in the
  column-store and posterior modules always pin an explicit ``dtype=``
  (the byte-layout contracts ``TIMES_DTYPE``/``APS_DTYPE`` depend on
  declared widths, not numpy defaults).
* **RL005 reference-isolation**
  (:mod:`repro.tools.lint.checkers.isolation`) — nothing outside
  tests/benchmarks imports ``repro.{fine,coarse}.reference``; the
  oracles stay independent of the code they judge.
* **RL006 typed-pipe-failures**
  (:mod:`repro.tools.lint.checkers.supervision`) — cluster pipe
  send/recv always maps transport failures to the typed shard errors
  the supervisor's recovery policy dispatches on; a bare ``send``
  would turn a crashed worker into an untyped hang.
* **RL007 event-loop-hygiene**
  (:mod:`repro.tools.lint.checkers.eventloop`) — coroutine bodies in
  the serving layer (``repro/serve``) never call the blocking
  dispatch/ingest surfaces directly; every blocking step goes through
  ``loop.run_in_executor``, so one window's work can never stall the
  event loop that every other lane schedules on.
"""

from repro.cache import (
    AffinityComponents,
    CachingEngine,
    GlobalAffinityGraph,
    LocalAffinityGraph,
)
from repro.cluster import (
    BuildingAffinityRouter,
    ClusterCacheStats,
    ClusterIngestReport,
    ComponentAffinityRouter,
    Fault,
    FaultInjectingExecutor,
    FaultPlan,
    HashRouter,
    ProcessShardExecutor,
    RecoveryEvent,
    RecoveryPolicy,
    SerialShardExecutor,
    ShardExecutor,
    ShardRouter,
    ShardSupervisor,
    ShardedLocater,
    ThreadShardExecutor,
)
from repro.coarse import (
    BootstrapLabeler,
    CoarseLocalizer,
    CoarseResult,
    SelfTrainingClassifier,
)
from repro.errors import (
    ClusterError,
    ConfigurationError,
    GatewayClosedError,
    GatewayError,
    GatewayOverloadedError,
    LocalizationError,
    ReproError,
    ShardQuarantinedError,
    ShardTimeoutError,
    ShardUnavailableError,
    SimulationError,
    SpaceModelError,
    StorageError,
    TrainingError,
)
from repro.events import (
    ColumnStore,
    ConnectivityEvent,
    DeltaEstimator,
    Device,
    EventTable,
    Gap,
    HeapColumnStore,
    SharedMemoryColumnStore,
    extract_gaps,
    find_gap_at,
)
from repro.fine import (
    DeviceAffinityIndex,
    FineLocalizer,
    FineMode,
    FineResult,
    GroupAffinityModel,
    RoomAffinityModel,
    RoomAffinityWeights,
)
from repro.serve import AsyncGateway, GatewayStats
from repro.sim import Dataset, PersonProfile, ScenarioSpec, Simulator
from repro.space import (
    AccessPoint,
    Building,
    BuildingBuilder,
    Region,
    Room,
    RoomIndex,
    RoomType,
    SpaceMetadata,
    airport_blueprint,
    campus_ap_buildings,
    campus_blueprint,
    dbh_blueprint,
    mall_blueprint,
    office_blueprint,
    university_blueprint,
)
from repro.system import (
    Baseline1,
    Baseline2,
    IngestionEngine,
    IngestReport,
    InMemoryStorage,
    Locater,
    LocaterConfig,
    MemoryManager,
    LocationAnswer,
    LocationQuery,
    QueryGroup,
    QueryPlan,
    SqliteStorage,
    StreamingSession,
    plan_queries,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPoint",
    "AffinityComponents",
    "AsyncGateway",
    "Baseline1",
    "Baseline2",
    "BootstrapLabeler",
    "Building",
    "BuildingAffinityRouter",
    "BuildingBuilder",
    "CachingEngine",
    "ClusterCacheStats",
    "ClusterError",
    "ClusterIngestReport",
    "CoarseLocalizer",
    "ColumnStore",
    "ComponentAffinityRouter",
    "CoarseResult",
    "ConfigurationError",
    "ConnectivityEvent",
    "Dataset",
    "DeltaEstimator",
    "Device",
    "DeviceAffinityIndex",
    "EventTable",
    "Fault",
    "FaultInjectingExecutor",
    "FaultPlan",
    "FineLocalizer",
    "FineMode",
    "FineResult",
    "Gap",
    "GatewayClosedError",
    "GatewayError",
    "GatewayOverloadedError",
    "GatewayStats",
    "GlobalAffinityGraph",
    "GroupAffinityModel",
    "HashRouter",
    "HeapColumnStore",
    "IngestReport",
    "IngestionEngine",
    "InMemoryStorage",
    "LocalAffinityGraph",
    "LocalizationError",
    "Locater",
    "LocaterConfig",
    "LocationAnswer",
    "LocationQuery",
    "MemoryManager",
    "PersonProfile",
    "ProcessShardExecutor",
    "QueryGroup",
    "QueryPlan",
    "RecoveryEvent",
    "RecoveryPolicy",
    "Region",
    "ReproError",
    "Room",
    "RoomAffinityModel",
    "RoomAffinityWeights",
    "RoomIndex",
    "RoomType",
    "ScenarioSpec",
    "SelfTrainingClassifier",
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardQuarantinedError",
    "ShardRouter",
    "ShardSupervisor",
    "ShardTimeoutError",
    "ShardUnavailableError",
    "SharedMemoryColumnStore",
    "ShardedLocater",
    "SimulationError",
    "Simulator",
    "SpaceMetadata",
    "SpaceModelError",
    "SqliteStorage",
    "StorageError",
    "StreamingSession",
    "ThreadShardExecutor",
    "TrainingError",
    "airport_blueprint",
    "campus_ap_buildings",
    "campus_blueprint",
    "dbh_blueprint",
    "extract_gaps",
    "find_gap_at",
    "mall_blueprint",
    "office_blueprint",
    "plan_queries",
    "university_blueprint",
    "__version__",
]
