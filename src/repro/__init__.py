"""LOCATER reproduction: cleaning WiFi connectivity data for semantic localization.

A full reimplementation of the VLDB 2020 LOCATER system (Lin et al.):
coarse-grained localization as missing-value repair over connectivity
gaps, fine-grained room disambiguation via room/device/group affinities,
an affinity-graph caching engine, baselines, a SmartBench-style synthetic
data generator, and the paper's complete evaluation harness.

Typical use::

    from repro import ScenarioSpec, Simulator, Locater

    scenario = ScenarioSpec.dbh_like(seed=7)
    dataset = Simulator(scenario).run(days=14)
    locater = Locater(dataset.building, dataset.metadata, dataset.table)
    answer = locater.locate(dataset.macs()[0], timestamp=dataset.span.end - 3600)
    print(answer.location_label)
"""

from repro.cache import CachingEngine, GlobalAffinityGraph, LocalAffinityGraph
from repro.coarse import (
    BootstrapLabeler,
    CoarseLocalizer,
    CoarseResult,
    SelfTrainingClassifier,
)
from repro.errors import (
    ConfigurationError,
    LocalizationError,
    ReproError,
    SimulationError,
    SpaceModelError,
    StorageError,
    TrainingError,
)
from repro.events import (
    ConnectivityEvent,
    DeltaEstimator,
    Device,
    EventTable,
    Gap,
    extract_gaps,
    find_gap_at,
)
from repro.fine import (
    DeviceAffinityIndex,
    FineLocalizer,
    FineMode,
    FineResult,
    GroupAffinityModel,
    RoomAffinityModel,
    RoomAffinityWeights,
)
from repro.sim import Dataset, PersonProfile, ScenarioSpec, Simulator
from repro.space import (
    AccessPoint,
    Building,
    BuildingBuilder,
    Region,
    Room,
    RoomType,
    SpaceMetadata,
    airport_blueprint,
    dbh_blueprint,
    mall_blueprint,
    office_blueprint,
    university_blueprint,
)
from repro.system import (
    Baseline1,
    Baseline2,
    IngestionEngine,
    InMemoryStorage,
    Locater,
    LocaterConfig,
    LocationAnswer,
    LocationQuery,
    SqliteStorage,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPoint",
    "Baseline1",
    "Baseline2",
    "BootstrapLabeler",
    "Building",
    "BuildingBuilder",
    "CachingEngine",
    "CoarseLocalizer",
    "CoarseResult",
    "ConfigurationError",
    "ConnectivityEvent",
    "Dataset",
    "DeltaEstimator",
    "Device",
    "DeviceAffinityIndex",
    "EventTable",
    "FineLocalizer",
    "FineMode",
    "FineResult",
    "Gap",
    "GlobalAffinityGraph",
    "GroupAffinityModel",
    "IngestionEngine",
    "InMemoryStorage",
    "LocalAffinityGraph",
    "LocalizationError",
    "Locater",
    "LocaterConfig",
    "LocationAnswer",
    "LocationQuery",
    "PersonProfile",
    "Region",
    "ReproError",
    "Room",
    "RoomAffinityModel",
    "RoomAffinityWeights",
    "RoomType",
    "ScenarioSpec",
    "SelfTrainingClassifier",
    "SimulationError",
    "Simulator",
    "SpaceMetadata",
    "SpaceModelError",
    "SqliteStorage",
    "StorageError",
    "TrainingError",
    "airport_blueprint",
    "dbh_blueprint",
    "extract_gaps",
    "find_gap_at",
    "mall_blueprint",
    "office_blueprint",
    "university_blueprint",
    "__version__",
]
