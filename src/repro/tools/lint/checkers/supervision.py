"""RL006 — pipe failures in the cluster layer must surface typed.

The fault-tolerance contract (:mod:`repro.cluster.supervision`) hinges
on one property of the dispatch layer: **every way a pipe can fail maps
to a typed cluster error**.  The supervisor retries
:class:`~repro.errors.ShardUnavailableError` /
:class:`~repro.errors.ShardTimeoutError` and propagates everything
else; a raw ``BrokenPipeError`` / ``EOFError`` / ``OSError`` escaping
``connection.send`` or ``connection.recv`` would bypass recovery
entirely and kill the serving call with an untyped, shard-anonymous
error.  The executors establish the idiom (see
``ProcessShardExecutor._send`` / ``_receive`` and ``_worker_send`` in
:mod:`repro.cluster.executor`); this rule keeps every future pipe
touch point honest.

Mechanically, every ``*.send(...)`` / ``*.recv(...)`` call in a
``repro/cluster/`` module must sit in the body of a ``try`` with at
least one handler that catches pipe failures (``EOFError``,
``BrokenPipeError``, ``ConnectionError``, ``ConnectionResetError``,
``OSError``, or a bare/``Exception`` catch), and every such handler
must either

* raise a ``Cluster*``/``Shard*``-named error (the mapping), or
* contain no ``raise`` at all (deliberate swallow — the worker-side
  "parent is gone, exit quietly" path).

A handler that re-raises raw (bare ``raise``) or raises anything not
cluster-typed defeats the mapping and is flagged too.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator

from repro.tools.lint.checkers._astutil import build_parents, called_name
from repro.tools.lint.core import Checker, FileContext, Violation, register

#: Exception names that count as catching an OS-level pipe failure.
PIPE_ERRORS = frozenset({
    "EOFError", "BrokenPipeError", "ConnectionError",
    "ConnectionResetError", "OSError", "IOError",
    "Exception", "BaseException",
})

#: Error-name prefixes that count as the typed cluster mapping.
TYPED_PREFIXES = ("Cluster", "Shard")


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    """The exception names one ``except`` clause catches."""
    node = handler.type
    if node is None:  # bare except
        return {"BaseException"}
    items = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for item in items:
        if isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return names


def _raises_typed(handler: ast.ExceptHandler) -> bool:
    """Whether a handler maps to a Cluster*/Shard* error, or swallows.

    False exactly when the handler contains a ``raise`` that is *not* a
    cluster-typed error — a bare re-raise or a foreign exception type.
    """
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise):
            continue
        exc = node.exc
        if exc is None:
            return False  # bare re-raise: propagates the raw OSError
        name: "str | None" = None
        if isinstance(exc, ast.Call):
            name = called_name(exc)
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name is None or not name.startswith(TYPED_PREFIXES):
            return False
    return True


@register
class ClusterPipeFailures(Checker):
    """RL006: cluster pipe send/recv must map failures to typed errors."""

    code = "RL006"
    name = "cluster-pipe-failures"
    description = (
        "every connection.send/recv in repro/cluster/ sits in a try "
        "whose handler catches pipe failures and either raises a "
        "Cluster*/Shard* error or deliberately swallows — raw "
        "BrokenPipeError/EOFError escaping dispatch bypasses shard "
        "supervision")

    def applies_to(self, path: pathlib.Path) -> bool:
        return "cluster" in path.parts

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        parents = build_parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute) and
                    node.func.attr in ("send", "recv")):
                continue
            problem = self._diagnose(node, parents)
            if problem is not None:
                yield Violation(
                    path=ctx.posix_path, line=node.lineno,
                    col=node.col_offset, code=self.code,
                    message=f"{problem} — pipe failures must surface as "
                            f"Cluster*/Shard* errors so supervision can "
                            f"recover the shard (see "
                            f"repro.cluster.executor)")

    @staticmethod
    def _diagnose(node: ast.Call, parents: dict) -> "str | None":
        """Why this send/recv violates the rule, or None if guarded."""
        verb = node.func.attr  # type: ignore[union-attr]
        guarded = False
        saw_pipe_handler = False
        current: ast.AST = node
        parent = parents.get(node)
        while parent is not None:
            if isinstance(parent, ast.Try) and \
                    any(current is stmt for stmt in parent.body):
                pipe_handlers = [
                    handler for handler in parent.handlers
                    if _caught_names(handler) & PIPE_ERRORS]
                if pipe_handlers:
                    saw_pipe_handler = True
                    if all(_raises_typed(handler)
                           for handler in pipe_handlers):
                        guarded = True
                        break
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            current, parent = parent, parents.get(parent)
        if guarded:
            return None
        if saw_pipe_handler:
            return (f"pipe {verb}() whose failure handler re-raises a "
                    f"raw or foreign exception")
        return f"unguarded pipe {verb}()"
