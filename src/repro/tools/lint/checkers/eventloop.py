"""RL007 — event-loop hygiene in the serving layer.

The async gateway's latency story hinges on one discipline: **nothing
blocking ever runs on the event loop**.  A single ``time.sleep``, a
pipe ``recv`` or a direct planner-batch dispatch inside a coroutine
stalls *every* lane's windows at once — the p99 regression is global,
not per-shard, and invisible to unit tests that never run two lanes
concurrently.  The sanctioned pattern (established by
:mod:`repro.serve.gateway`) is the executor off-ramp: coroutines only
enqueue, coordinate and resolve futures; the blocking work — executor
dispatch, ``locate_batch``, ingest merges — runs in worker threads via
``loop.run_in_executor``.

Mechanically, inside any ``async def`` in a ``repro/serve/`` module,
these calls are violations:

* ``time.sleep(...)`` — blocks the loop (``asyncio.sleep`` is fine);
* any ``*.recv(...)`` — a pipe/socket read blocks until the peer
  answers;
* direct shard-executor dispatch — ``*.call_one/call_all/call_some``;
* direct serving or ingest dispatch — ``*.locate_batch``,
  ``*.locate_slice``, ``*.locate_query``;
* ``*.result(...)`` — a ``concurrent.futures`` result wait.

Function *references* passed to ``run_in_executor`` are not calls and
never match; sync helpers (``def`` bodies nested inside the coroutine)
and lambdas are skipped — they execute on the pool, not the loop.
``await``-ed calls are exempt too: ``await peer.locate_query(...)`` is
an async invocation that yields to the loop, not a block (its argument
expressions still execute inline and stay checked).
The wall-clock scheduling the gateway does (window deadlines off
``loop.time()``) is exempt by construction: RL002's determinism scope
deliberately excludes ``repro/serve/``, because batching windows are
wall-clock by nature and never enter an answer.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator

from repro.tools.lint.checkers._astutil import dotted_name
from repro.tools.lint.core import Checker, FileContext, Violation, register

#: Attribute-call names that block the calling thread: pipe reads,
#: shard-executor dispatch, planner-batch serving and future waits.
BLOCKING_ATTRS = frozenset({
    "recv", "call_one", "call_all", "call_some",
    "locate_batch", "locate_slice", "locate_query", "result",
})

#: Dotted call targets that block outright.
BLOCKING_DOTTED = frozenset({"time.sleep"})


def _coroutine_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Every call that executes *on the event loop* within ``func``.

    Nested ``def`` bodies and lambdas are excluded: defining them runs
    nothing, and the gateway's idiom is precisely to hand such helpers
    to ``run_in_executor``.  Nested ``async def`` bodies are excluded
    here too — the outer walk visits them as coroutines of their own.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Await) and \
                isinstance(node.value, ast.Call):
            # An awaited call is an async invocation — the coroutine
            # yields to the loop instead of blocking it.  Its argument
            # expressions still execute inline, so walk those.
            stack.extend(ast.iter_child_nodes(node.value))
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class EventLoopHygiene(Checker):
    """RL007: no blocking calls inside ``async def`` in repro/serve/."""

    code = "RL007"
    name = "event-loop-hygiene"
    description = (
        "coroutines in repro/serve/ must not block the event loop: "
        "time.sleep, pipe recv, shard-executor dispatch and direct "
        "locate_batch/ingest execution belong behind the gateway's "
        "run_in_executor off-ramp, or one lane's window stalls every "
        "lane's latency")

    def applies_to(self, path: pathlib.Path) -> bool:
        return "serve" in path.parts

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for call in _coroutine_calls(func):
                label = self._blocking_label(call)
                if label is not None:
                    yield Violation(
                        path=ctx.posix_path, line=call.lineno,
                        col=call.col_offset, code=self.code,
                        message=f"{label} blocks the event loop inside "
                                f"coroutine {func.name!r} — dispatch it "
                                f"through loop.run_in_executor so other "
                                f"lanes' windows keep flowing")

    @staticmethod
    def _blocking_label(call: ast.Call) -> "str | None":
        """The human name of a blocking call, or None when benign."""
        dotted = dotted_name(call.func)
        if dotted in BLOCKING_DOTTED:
            return f"{dotted}(...)"
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in BLOCKING_ATTRS:
            return f"*.{call.func.attr}(...)"
        return None
