"""Checker registry of ``repro-lint``.

Importing this package registers every built-in rule with
:data:`repro.tools.lint.core.REGISTRY`.  To add a rule, drop a module
here, subclass :class:`~repro.tools.lint.core.Checker`, decorate it with
:func:`~repro.tools.lint.core.register`, and import the module below —
see the package README for the contract a checker must satisfy.
"""

from __future__ import annotations

from repro.tools.lint.checkers import (  # noqa: F401  (registration imports)
    determinism,
    dtypes,
    eventloop,
    invalidation,
    isolation,
    lifecycle,
    supervision,
)
