"""RL005 — reference-implementation isolation.

``repro/fine/reference.py`` and ``repro/coarse/reference.py`` are the
deliberately naive oracles the equivalence suites compare the optimized
paths against.  The comparison is only meaningful while the two sides
share no code: the moment production modules import helpers from a
reference module, a bug can live on both sides of the ``==`` and the
suite goes green on wrong answers.

Rule: nothing outside tests/benchmarks may import
``repro.fine.reference`` or ``repro.coarse.reference`` (absolutely or
relatively).  The reference modules themselves are of course exempt.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator

from repro.tools.lint.core import Checker, FileContext, Violation, register

#: Module suffixes that are the sanctioned oracles.
REFERENCE_MODULES = ("fine.reference", "coarse.reference")

#: Path parts under which importing the oracles is the whole point.
EXEMPT_PARTS = frozenset({"tests", "test", "benchmarks", "bench"})


def _imported_reference(node: ast.AST) -> "str | None":
    """The oracle module an import statement pulls in, if any."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            for suffix in REFERENCE_MODULES:
                if alias.name.endswith(suffix):
                    return alias.name
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        for suffix in REFERENCE_MODULES:
            if module.endswith(suffix):
                return module or "." * node.level + module
        # from repro.fine import reference  /  from . import reference
        if module.endswith(("fine", "coarse")) or (node.level and not module):
            for alias in node.names:
                if alias.name == "reference":
                    return (module or "." * node.level) + ".reference"
    return None


@register
class ReferenceIsolation(Checker):
    """RL005: production code never imports the reference oracles."""

    code = "RL005"
    name = "reference-isolation"
    description = (
        "only tests/benchmarks may import repro.{fine,coarse}.reference; "
        "sharing oracle code with production voids the equivalence suites")

    def applies_to(self, path: pathlib.Path) -> bool:
        if path.name == "reference.py":
            return False
        return not EXEMPT_PARTS.intersection(path.parts)

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            module = _imported_reference(node)
            if module is None:
                continue
            yield Violation(
                path=ctx.posix_path, line=node.lineno, col=node.col_offset,
                code=self.code,
                message=(
                    f"import of reference oracle {module!r} outside "
                    f"tests/benchmarks — the equivalence suites are void "
                    f"if production shares code with the oracle"))
