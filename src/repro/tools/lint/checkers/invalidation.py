"""RL001 — invalidation completeness of the shared-state classes.

The bitwise-equivalence guarantees of the streaming and cluster layers
rest on one convention: every memo/cache container a shared-state class
accumulates must be reachable from that class's invalidation surface
(``drop_device(s)`` / ``invalidate_*`` / ``clear``-style methods), and
that surface must actually be invoked from the ingest path
(:meth:`Locater.on_ingest` and the ``prune_batch_state`` policy it fans
out through).  A memo dict added without a matching drop hook serves
stale values after the first ingest — silently, because every test that
does not interleave ingest with that exact memo still passes.

Three sub-rules, all reported under RL001:

* **unreachable memo** — a dict/set-valued instance attribute of a
  tracked class is never referenced from any method reachable from the
  class's invalidation surface.
* **MEMO_ATTRS drift** — a tracked dataclass declares the ``MEMO_ATTRS``
  registry (the single list the trim/reset/eviction plumbing iterates)
  but its dict-valued fields and the registry disagree.
* **dead invalidation surface** — a tracked class accumulates memos but
  none of its invalidation methods are called anywhere in the ingest
  surface functions.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.tools.lint.checkers._astutil import (
    called_name,
    self_attribute_name,
)
from repro.tools.lint.core import Checker, FileContext, Violation, register

#: The shared-state classes whose caches the ingest path must be able to
#: invalidate (matched by class *name* wherever they are defined).
TRACKED_CLASSES = frozenset({
    "CoarseSharedState", "FineSharedState", "BatchState",
    "NeighborIndex", "CachingEngine",
})

#: Method names that form a class's invalidation surface.
INVALIDATION_RE = re.compile(
    r"^(drop_|invalidate|clear|reset|prune|release|evict)")

#: Functions forming the ingest call surface (cross-check targets).
INGEST_SURFACE = frozenset({
    "on_ingest", "_on_ingest", "prune_batch_state", "observe_report",
})


def _is_container_default(node: ast.AST) -> bool:
    """Whether an assigned value creates a dict/set memo container."""
    if isinstance(node, (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("dict", "set", "defaultdict", "OrderedDict"):
            return True
        # dataclasses.field(default_factory=dict|set)
        if called_name(node) == "field":
            for keyword in node.keywords:
                if keyword.arg == "default_factory" and \
                        isinstance(keyword.value, ast.Name) and \
                        keyword.value.id in ("dict", "set", "defaultdict",
                                             "OrderedDict"):
                    return True
    return False


@dataclass
class _TrackedClass:
    """What RL001 learned about one tracked class definition."""

    name: str
    path: str
    line: int
    memo_attrs: dict[str, int] = field(default_factory=dict)  # name → line
    memo_attrs_registry: "list[str] | None" = None
    registry_line: int = 0
    invalidation_methods: set[str] = field(default_factory=set)


def _dataclass_fields(cls: ast.ClassDef) -> "dict[str, int]":
    """Dict/set-valued dataclass fields (name → line)."""
    out: dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.value is not None and _is_container_default(stmt.value):
            out[stmt.target.id] = stmt.lineno
    return out


def _init_memo_attrs(cls: ast.ClassDef) -> "dict[str, int]":
    """Dict/set-valued ``self.x = ...`` assignments in ``__init__``."""
    out: dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                if not _is_container_default(value):
                    continue
                for target in targets:
                    attr = self_attribute_name(target)
                    if attr is not None:
                        out[attr] = node.lineno
    return out


def _memo_attrs_registry(cls: ast.ClassDef
                         ) -> "tuple[list[str] | None, int]":
    """The declared ``MEMO_ATTRS`` tuple, when present."""
    for stmt in cls.body:
        target = None
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            target = stmt.target.id
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
        if target != "MEMO_ATTRS" or stmt.value is None:
            continue
        if isinstance(stmt.value, (ast.Tuple, ast.List)):
            names = [element.value for element in stmt.value.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str)]
            return names, stmt.lineno
    return None, 0


def _reachable_from_invalidation(cls: ast.ClassDef,
                                 invalidation: set[str]) -> set[str]:
    """Method names reachable from the invalidation surface via self calls."""
    calls: dict[str, set[str]] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef):
            out: set[str] = set()
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    attr = self_attribute_name(node.func)
                    if attr is not None:
                        out.add(attr)
            calls[stmt.name] = out
    reachable = set(invalidation)
    frontier = list(invalidation)
    while frontier:
        current = frontier.pop()
        for callee in calls.get(current, ()):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    return reachable


def _attrs_touched(cls: ast.ClassDef, methods: set[str]) -> set[str]:
    """Every ``self.<attr>`` referenced inside the given methods."""
    touched: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name in methods:
            for node in ast.walk(stmt):
                attr = self_attribute_name(node)
                if attr is not None:
                    touched.add(attr)
            # Dynamic access — setattr(self, name, {}) (the evictor
            # pattern) or getattr(self, attr) over MEMO_ATTRS (the trim
            # plumbing); treat either as touching every attribute.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Name) and \
                        node.func.id in ("setattr", "getattr"):
                    touched.add("*")
    return touched


@register
class InvalidationCompleteness(Checker):
    """RL001: every memo container must sit on the invalidation surface."""

    code = "RL001"
    name = "invalidation-completeness"
    description = (
        "memo/cache attributes of shared-state classes must be reachable "
        "from drop_device(s)/invalidate_* methods, MEMO_ATTRS must list "
        "exactly the memo dicts, and the invalidation surface must be "
        "invoked from the ingest path")

    def __init__(self) -> None:
        self._classes: list[_TrackedClass] = []
        self._ingest_called: set[str] = set()
        self._surface_seen = False

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and \
                    node.name in INGEST_SURFACE:
                self._surface_seen = True
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        name = called_name(sub)
                        if name is not None:
                            self._ingest_called.add(name)
            if not isinstance(node, ast.ClassDef) or \
                    node.name not in TRACKED_CLASSES:
                continue
            yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Violation]:
        memo_attrs = dict(_dataclass_fields(cls))
        memo_attrs.update(_init_memo_attrs(cls))
        registry, registry_line = _memo_attrs_registry(cls)
        invalidation = {stmt.name for stmt in cls.body
                        if isinstance(stmt, ast.FunctionDef)
                        and INVALIDATION_RE.match(stmt.name)}
        record = _TrackedClass(
            name=cls.name, path=ctx.posix_path, line=cls.lineno,
            memo_attrs=memo_attrs, memo_attrs_registry=registry,
            registry_line=registry_line, invalidation_methods=invalidation)
        self._classes.append(record)

        reachable = _reachable_from_invalidation(cls, invalidation)
        touched = _attrs_touched(cls, reachable)
        for attr, line in sorted(memo_attrs.items()):
            if attr in touched or "*" in touched:
                continue
            yield Violation(
                path=ctx.posix_path, line=line, col=0, code=self.code,
                message=(
                    f"{cls.name}.{attr} is a memo/cache container but no "
                    f"invalidation method (drop_*/invalidate_*/clear/reset) "
                    f"of {cls.name} ever touches it; stale entries will "
                    f"survive ingest"))

        if registry is not None:
            declared = set(registry)
            actual = set(memo_attrs)
            for missing in sorted(actual - declared):
                yield Violation(
                    path=ctx.posix_path, line=memo_attrs[missing], col=0,
                    code=self.code,
                    message=(
                        f"{cls.name}.{missing} is a memo dict but is not "
                        f"listed in {cls.name}.MEMO_ATTRS — the trim/reset/"
                        f"eviction plumbing iterates that registry and "
                        f"will skip it"))
            for extra in sorted(declared - actual):
                yield Violation(
                    path=ctx.posix_path, line=registry_line, col=0,
                    code=self.code,
                    message=(
                        f"{cls.name}.MEMO_ATTRS lists {extra!r} but the "
                        f"class defines no such memo container"))

    def check_project(self, files: Sequence[FileContext]
                      ) -> Iterator[Violation]:
        if not self._surface_seen:
            return
        for record in self._classes:
            if not record.memo_attrs:
                continue
            if record.invalidation_methods & self._ingest_called:
                continue
            names = ", ".join(sorted(record.invalidation_methods)) or "none"
            yield Violation(
                path=record.path, line=record.line, col=0, code=self.code,
                message=(
                    f"{record.name} accumulates memos but none of its "
                    f"invalidation methods ({names}) are called from the "
                    f"ingest surface ({'/'.join(sorted(INGEST_SURFACE))}); "
                    f"its caches outlive the data they were computed from"))
