"""Small shared AST helpers for the checkers."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child → parent map for ancestor walks (``ast`` has no back links)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST,
              parents: dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    """The chain of enclosing nodes, innermost first."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def enclosing_function(node: ast.AST, parents: dict[ast.AST, ast.AST]
                       ) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(node: ast.AST, parents: dict[ast.AST, ast.AST]
                    ) -> "ast.ClassDef | None":
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def self_attribute_name(node: ast.AST) -> "str | None":
    """``self.<name>`` → ``name``; anything else → None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def called_name(call: ast.Call) -> "str | None":
    """The final name of a call target: ``f(...)`` / ``x.f(...)`` → ``f``."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` attribute chains as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
