"""RL002 — determinism of the answer-path modules.

Every equivalence suite in this repository (batch≡sequential,
cluster≡lone-Locater, eviction-schedule invariance) asserts *bitwise*
identical answers.  Two classes of code break that silently:

* **unordered iteration** — walking a ``set``/``frozenset`` (or a
  dict's ``.keys()`` without the insertion-order guarantee being the
  point) makes downstream float accumulation order, neighbor order and
  tie-breaks depend on hash seeds.  Iteration must go through
  ``sorted(...)``.
* **ambient nondeterminism** — ``time.time()``, the global ``random``
  module, numpy's legacy global RNG (``np.random.rand`` etc.) and
  *unseeded* ``np.random.default_rng()`` inject run-to-run variation.
  Clocks used purely for measurement (``time.perf_counter``) are fine.

Scope: the answer-path packages ``repro/{fine,coarse,cache,system,
cluster,events}``.  Simulators (``repro/sim``) draw seeded randomness by
design and are exempt.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator

from repro.tools.lint.checkers._astutil import build_parents
from repro.tools.lint.core import Checker, FileContext, Violation, register

#: Package directories whose modules answer queries (order-critical).
ANSWER_PATH_PARTS = frozenset(
    {"fine", "coarse", "cache", "system", "cluster", "events"})

#: ``random.<fn>`` calls that consult the global (unseeded) RNG.
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "seed", "betavariate",
    "expovariate",
})

#: ``np.random.<fn>`` legacy global-state calls.
_NP_RANDOM_FUNCS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "normal", "uniform", "standard_normal",
})


def _is_unordered(node: ast.AST, known_sets: set[str],
                  known_self_sets: set[str]) -> bool:
    """Whether iterating ``node`` yields a nondeterministic order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
            # list(s)/tuple(s)/iter(s)/reversed(s) preserve the (already
            # nondeterministic) order of a set argument.
            if node.func.id in ("list", "tuple", "iter", "reversed") and \
                    len(node.args) == 1:
                return _is_unordered(node.args[0], known_sets,
                                     known_self_sets)
        # Direct .keys() iteration is flagged regardless of the mapping:
        # `for k in d:` says order is intentional (insertion order);
        # spelling out .keys() in an answer path historically preceded
        # every hash-order bug, so the convention is sorted(d) or `in d`.
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "keys" and not node.args:
            return True
    return _is_unordered_name(node, known_sets, known_self_sets)


def _is_unordered_name(node: ast.AST, known_sets: set[str],
                       known_self_sets: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr in known_self_sets
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    """``set[...]`` / ``frozenset[...]`` annotations, quoted or not."""
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text.startswith(("set[", "set ", "frozenset[")) or \
            text in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    return False


def _collect_known_sets(tree: ast.Module
                        ) -> "tuple[set[str], set[str]]":
    """Names (locals/globals, self attributes) bound to set values."""
    names: set[str] = set()
    self_attrs: set[str] = set()
    for node in ast.walk(tree):
        value = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
            if _annotation_is_set(node.annotation):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        self_attrs.add(target.attr)
                continue
        else:
            continue
        if value is None or not _is_set_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                self_attrs.add(target.attr)
    return names, self_attrs


def _is_set_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
        and node.func.id in ("set", "frozenset")


@register
class AnswerPathDeterminism(Checker):
    """RL002: no unordered iteration or ambient randomness on answer paths."""

    code = "RL002"
    name = "determinism"
    description = (
        "answer-path modules must not iterate sets/.keys() without "
        "sorted(), call time.time(), use the global random module, "
        "legacy np.random state, or unseeded np.random.default_rng()")

    def applies_to(self, path: pathlib.Path) -> bool:
        return bool(ANSWER_PATH_PARTS.intersection(path.parts))

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        known_sets, known_self_sets = _collect_known_sets(ctx.tree)
        parents = build_parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters = [generator.iter for generator in node.generators]
            for iter_expr in iters:
                if _is_unordered(iter_expr, known_sets, known_self_sets):
                    yield Violation(
                        path=ctx.posix_path, line=iter_expr.lineno,
                        col=iter_expr.col_offset, code=self.code,
                        message=(
                            "iteration over a set/.keys() without "
                            "sorted(...) — the order depends on hash "
                            "seeds and breaks bitwise equivalence"))
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, parents)

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    parents: dict) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # time.time()
        if isinstance(func.value, ast.Name) and func.value.id == "time" \
                and func.attr == "time":
            yield Violation(
                path=ctx.posix_path, line=node.lineno, col=node.col_offset,
                code=self.code,
                message=("time.time() in an answer-path module — answers "
                         "must be pure functions of table state; use "
                         "time.perf_counter() for measurement only"))
            return
        # random.<fn>()
        if isinstance(func.value, ast.Name) and func.value.id == "random" \
                and func.attr in _RANDOM_FUNCS:
            yield Violation(
                path=ctx.posix_path, line=node.lineno, col=node.col_offset,
                code=self.code,
                message=(f"random.{func.attr}() uses the process-global "
                         f"RNG; thread seeded generators through "
                         f"repro.util.rng instead"))
            return
        # np.random.<fn>() / np.random.default_rng()
        if isinstance(func.value, ast.Attribute) and \
                func.value.attr == "random" and \
                isinstance(func.value.value, ast.Name) and \
                func.value.value.id in ("np", "numpy"):
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    yield Violation(
                        path=ctx.posix_path, line=node.lineno,
                        col=node.col_offset, code=self.code,
                        message=("np.random.default_rng() without a seed "
                                 "is entropy-seeded; pass a seed or an "
                                 "existing Generator"))
            elif func.attr in _NP_RANDOM_FUNCS:
                yield Violation(
                    path=ctx.posix_path, line=node.lineno,
                    col=node.col_offset, code=self.code,
                    message=(f"np.random.{func.attr}() uses numpy's legacy "
                             f"global state; use a seeded Generator from "
                             f"repro.util.rng"))
