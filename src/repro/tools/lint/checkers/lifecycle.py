"""RL003 — shared-memory segment lifecycle (the bpo-39959 rules).

``multiprocessing.shared_memory`` has exactly one safe usage pattern in
this codebase (established in :mod:`repro.events.columns` and, until
this checker existed, enforced only by comments there):

* the **owner** process creates segments (``SharedMemory(create=True)``)
  and must both ``close()`` *and* ``unlink()`` them on teardown — a
  missing unlink leaks the segment until the resource tracker reclaims
  it at exit with a warning; a missing close leaks the mapping.
* **attached** readers must only ever ``close()`` — an attached view
  that unlinks tears the bytes out from under the owner and every other
  reader.

Mechanically:

* every class that creates segments must reach both a ``.close()`` (or
  a helper whose name contains ``close``) and an ``.unlink()`` call from
  some teardown-named method (``close``/``release``/``discard``/
  ``__del__``/``__exit__``/``teardown``...), following same-module calls
  by name;
* every ``.unlink()`` call must be *ownership-gated*: inside a function
  with an ``unlink`` parameter, or under an ``if`` whose condition
  mentions ownership (``unlink``/``is_attached``/``owner``/``track``).
  An unconditional unlink is exactly the attached-view bug.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.tools.lint.checkers._astutil import (
    ancestors,
    build_parents,
    called_name,
    enclosing_class,
    enclosing_function,
)
from repro.tools.lint.core import Checker, FileContext, Violation, register

_TEARDOWN_RE = re.compile(
    r"(close|release|discard|teardown|shutdown|cleanup|__del__|__exit__)")

_OWNERSHIP_TOKENS = ("unlink", "is_attached", "attached", "owner", "track")


def _is_shared_memory_call(node: ast.Call) -> bool:
    return called_name(node) == "SharedMemory"


def _creates_segment(node: ast.Call) -> bool:
    return _is_shared_memory_call(node) and any(
        keyword.arg == "create" and
        isinstance(keyword.value, ast.Constant) and
        keyword.value.value is True
        for keyword in node.keywords)


@dataclass
class _FunctionFacts:
    """What one function does, for name-level reachability."""

    name: str
    class_name: "str | None"
    creates: bool = False
    closes: bool = False
    unlinks: bool = False
    calls: set[str] = field(default_factory=set)


@register
class SharedMemoryLifecycle(Checker):
    """RL003: owner close+unlink coverage; ownership-gated unlink calls."""

    code = "RL003"
    name = "shared-memory-lifecycle"
    description = (
        "SharedMemory(create=True) sites need close+unlink reachable from "
        "a teardown method; every unlink must be ownership-gated so "
        "attached views never unlink a segment they do not own")

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "SharedMemory" not in ctx.source:
            return
        parents = build_parents(ctx.tree)
        facts = self._collect_facts(ctx.tree, parents)
        yield from self._check_owner_teardown(ctx, parents, facts)
        yield from self._check_unlink_gating(ctx, parents)

    # ------------------------------------------------------------------
    def _collect_facts(self, tree: ast.Module,
                       parents: dict) -> list[_FunctionFacts]:
        facts: list[_FunctionFacts] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls = enclosing_class(node, parents)
            record = _FunctionFacts(
                name=node.name,
                class_name=cls.name if cls is not None else None)
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = called_name(sub)
                if name is None:
                    continue
                record.calls.add(name)
                if _creates_segment(sub):
                    record.creates = True
                if name == "unlink":
                    record.unlinks = True
                if "close" in name:
                    record.closes = True
            facts.append(record)
        return facts

    def _check_owner_teardown(self, ctx: FileContext, parents: dict,
                              facts: list[_FunctionFacts]
                              ) -> Iterator[Violation]:
        by_name: dict[str, list[_FunctionFacts]] = {}
        for record in facts:
            by_name.setdefault(record.name, []).append(record)

        creator_classes = {record.class_name for record in facts
                           if record.creates and record.class_name}
        class_nodes = {node.name: node for node in ast.walk(ctx.tree)
                       if isinstance(node, ast.ClassDef)}
        for class_name in sorted(creator_classes):
            family = self._class_family(class_name, class_nodes)
            teardown = [record for record in facts
                        if record.class_name in family
                        and _TEARDOWN_RE.search(record.name)]
            closes, unlinks = self._reach(teardown, by_name)
            node = class_nodes[class_name]
            if not unlinks:
                yield Violation(
                    path=ctx.posix_path, line=node.lineno, col=0,
                    code=self.code,
                    message=(
                        f"{class_name} creates SharedMemory segments but no "
                        f"teardown path (close/release/_discard/__del__/"
                        f"__exit__) reaches an unlink() — owner segments "
                        f"leak until the resource tracker reclaims them"))
            if not closes:
                yield Violation(
                    path=ctx.posix_path, line=node.lineno, col=0,
                    code=self.code,
                    message=(
                        f"{class_name} creates SharedMemory segments but no "
                        f"teardown path reaches a close() — the mapping is "
                        f"never unmapped"))

    @staticmethod
    def _class_family(class_name: str,
                      class_nodes: dict[str, ast.ClassDef]) -> set[str]:
        """The class plus same-module bases/subclasses (teardown may be
        inherited either way)."""
        family = {class_name}
        changed = True
        while changed:
            changed = False
            for name, node in class_nodes.items():
                base_names = {base.id for base in node.bases
                              if isinstance(base, ast.Name)}
                if name in family and not base_names <= family:
                    family |= base_names & set(class_nodes)
                    changed = True
                if base_names & family and name not in family:
                    family.add(name)
                    changed = True
        return family

    @staticmethod
    def _reach(entry_points: list[_FunctionFacts],
               by_name: dict[str, list[_FunctionFacts]]
               ) -> "tuple[bool, bool]":
        """(reaches close, reaches unlink) following calls by name."""
        closes = unlinks = False
        seen: set[str] = set()
        frontier = list(entry_points)
        while frontier:
            record = frontier.pop()
            if record.name in seen:
                continue
            seen.add(record.name)
            closes = closes or record.closes
            unlinks = unlinks or record.unlinks
            for callee in record.calls:
                frontier.extend(by_name.get(callee, ()))
        return closes, unlinks

    # ------------------------------------------------------------------
    def _check_unlink_gating(self, ctx: FileContext,
                             parents: dict) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and
                    called_name(node) == "unlink"):
                continue
            # Only shared-memory unlinks: a path's .unlink() (file
            # removal) is a different API with the same name.
            if not self._is_segment_unlink(node, ctx):
                continue
            if self._is_gated(node, parents):
                continue
            yield Violation(
                path=ctx.posix_path, line=node.lineno, col=node.col_offset,
                code=self.code,
                message=(
                    "ungated unlink() of a shared-memory segment — guard "
                    "with the owner check (attached views must never "
                    "unlink; see repro.events.columns)"))

    @staticmethod
    def _is_segment_unlink(node: ast.Call, ctx: FileContext) -> bool:
        """Heuristic: unlink on something segment-ish, not a filesystem
        path (``Path.unlink`` shows up in spill-file cleanup)."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        text = ast.dump(func.value)
        return "path" not in text.lower()

    @staticmethod
    def _is_gated(node: ast.Call, parents: dict) -> bool:
        function = enclosing_function(node, parents)
        if function is not None:
            params = {arg.arg for arg in function.args.args +
                      function.args.kwonlyargs}
            if "unlink" in params:
                return True
        for ancestor in ancestors(node, parents):
            if isinstance(ancestor, (ast.If, ast.IfExp)):
                test_text = ast.unparse(ancestor.test)
                if any(token in test_text for token in _OWNERSHIP_TOKENS):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False
