"""RL004 — explicit dtype contracts on array construction.

The column store's layout math (``BYTES_PER_EVENT``), the shared-memory
views and every ``frombuffer`` reinterpretation assume the declared
dtypes (``TIMES_DTYPE = float64``, ``APS_DTYPE = int32``, ``int64``
gap positions).  A bare ``np.empty(n)`` or ``np.zeros(n)`` silently
produces numpy's *default* dtype, which happens to match today — until
an integer argument or a platform default changes it, at which point
buffers are reinterpreted at the wrong width and every downstream
answer is garbage that still parses.

Rule: in the dtype-critical modules, every array *constructor* call
(``np.empty/zeros/ones/full/frombuffer/fromiter/arange``) must pass an
explicit ``dtype=``.  Derived arrays (``astype``, arithmetic, slicing)
are unaffected; they inherit a dtype that is already pinned at the
source.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator

from repro.tools.lint.core import Checker, FileContext, Violation, register

#: Modules whose arrays feed ColumnStore / GapArrays / RoomPosterior.
DTYPE_MODULES = (
    "events/columns.py",
    "events/gaps.py",
    "events/table.py",
    "events/device.py",
    "fine/worlds.py",
)

#: ``np.<fn>`` constructors that take a dtype and default it.
DTYPE_REQUIRED = frozenset({
    "empty", "zeros", "ones", "full", "frombuffer", "fromiter", "arange",
})


def _numpy_constructor(node: ast.Call) -> "str | None":
    """``np.<fn>(...)``/``numpy.<fn>(...)`` for a dtype-defaulting fn."""
    func = node.func
    if isinstance(func, ast.Attribute) and \
            isinstance(func.value, ast.Name) and \
            func.value.id in ("np", "numpy") and \
            func.attr in DTYPE_REQUIRED:
        return func.attr
    return None


def _has_explicit_dtype(node: ast.Call) -> bool:
    if any(keyword.arg == "dtype" for keyword in node.keywords):
        return True
    # Positional dtype: np.frombuffer(buf, np.int32), np.full(n, v, float64),
    # np.fromiter(it, np.float64) — the constructor-specific position of the
    # dtype argument.
    name = _numpy_constructor(node)
    positional_dtype_index = {
        "empty": 1, "zeros": 1, "ones": 1, "arange": 3,
        "full": 2, "frombuffer": 1, "fromiter": 1,
    }
    index = positional_dtype_index.get(name or "", None)
    return index is not None and len(node.args) > index


@register
class DtypeContracts(Checker):
    """RL004: array constructors in dtype-critical modules pin their dtype."""

    code = "RL004"
    name = "dtype-contracts"
    description = (
        "np.empty/zeros/ones/full/frombuffer/fromiter/arange in the "
        "column-store and posterior modules must pass an explicit dtype; "
        "default dtypes break the byte-layout contracts")

    def applies_to(self, path: pathlib.Path) -> bool:
        posix = path.as_posix()
        return any(posix.endswith(suffix) for suffix in DTYPE_MODULES)

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _numpy_constructor(node)
            if name is None or _has_explicit_dtype(node):
                continue
            yield Violation(
                path=ctx.posix_path, line=node.lineno, col=node.col_offset,
                code=self.code,
                message=(
                    f"np.{name}(...) without an explicit dtype= in a "
                    f"dtype-critical module — the byte-layout contracts "
                    f"(TIMES_DTYPE/APS_DTYPE/BYTES_PER_EVENT) require "
                    f"declared widths"))
