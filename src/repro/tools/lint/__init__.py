"""repro-lint — AST contract checker for the reproduction's invariants.

The equivalence guarantees of this codebase (batch ≡ sequential,
cluster ≡ lone Locater, eviction-schedule invariance — all *bitwise*)
rest on hand-maintained conventions: memo dicts listed in MEMO_ATTRS,
invalidation hooks wired into the ingest path, sorted iteration on
answer paths, pinned dtypes, shared-memory ownership discipline, and
reference-oracle isolation.  ``repro-lint`` turns those conventions
into mechanically checked rules:

========  ===========================  ====================================
code      name                         module
========  ===========================  ====================================
RL001     invalidation-completeness    repro.tools.lint.checkers.invalidation
RL002     determinism                  repro.tools.lint.checkers.determinism
RL003     shared-memory-lifecycle      repro.tools.lint.checkers.lifecycle
RL004     dtype-contracts              repro.tools.lint.checkers.dtypes
RL005     reference-isolation          repro.tools.lint.checkers.isolation
========  ===========================  ====================================

Run it with ``python -m repro.tools.lint src/repro`` (exit 0 = clean,
1 = findings, 2 = usage error), or programmatically via
:func:`run_lint`.  Findings are suppressed per line with
``# repro-lint: disable=RL00x <reason>`` — false positives only, with
the reason mandatory by repository policy.
"""

from __future__ import annotations

from repro.tools.lint.core import (
    REGISTRY,
    Checker,
    FileContext,
    Suppressions,
    Violation,
    iter_python_files,
    load_context,
    parse_suppressions,
    register,
    run_lint,
)

__all__ = [
    "REGISTRY",
    "Checker",
    "FileContext",
    "Suppressions",
    "Violation",
    "iter_python_files",
    "load_context",
    "parse_suppressions",
    "register",
    "run_lint",
]
