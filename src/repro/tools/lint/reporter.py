"""Reporters: violations → text or JSON on a stream."""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import TextIO

from repro.tools.lint.core import REGISTRY, Violation


def render_text(violations: Sequence[Violation], stream: TextIO) -> None:
    """One ``path:line:col: CODE message`` line per finding + a summary."""
    for violation in violations:
        stream.write(violation.render() + "\n")
    if violations:
        counts: dict[str, int] = {}
        for violation in violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        breakdown = ", ".join(
            f"{code}×{count}" for code, count in sorted(counts.items()))
        stream.write(
            f"repro-lint: {len(violations)} finding"
            f"{'s' if len(violations) != 1 else ''} ({breakdown})\n")
    else:
        stream.write("repro-lint: clean\n")


def render_json(violations: Sequence[Violation], stream: TextIO) -> None:
    """Machine-readable report: rules manifest + findings array."""
    payload = {
        "tool": "repro-lint",
        "rules": {code: {"name": cls.name, "description": cls.description}
                  for code, cls in sorted(REGISTRY.items())},
        "findings": [violation.as_dict() for violation in violations],
        "count": len(violations),
    }
    json.dump(payload, stream, indent=2, sort_keys=False)
    stream.write("\n")
