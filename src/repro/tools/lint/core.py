"""Core machinery of ``repro-lint``: files, suppressions, registry, driver.

The linter is deliberately small: one :class:`FileContext` per parsed
source file, a registry of :class:`Checker` subclasses keyed by rule
code, and :func:`run_lint` walking the requested paths, running every
selected checker, and filtering the result through the suppression
comments.  Checkers are pure ``ast`` consumers — no imports of the
checked code ever happen, so the linter can run on broken trees and
fixture corpora alike.

Suppressions come in two forms::

    x = compute()  # repro-lint: disable=RL002  <reason>
    # repro-lint: disable-file=RL004  <reason>

The first silences the listed rules on that physical line only, the
second for the whole file.  Repository policy (see the package README):
a suppression is only for checker *false positives* and must carry a
justification in the trailing free text.
"""

from __future__ import annotations

import ast
import pathlib
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field


#: ``# repro-lint: disable=RL001`` / ``disable-file=RL001,RL003 why...``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding of one checker at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict:
        """JSON-reporter payload for this finding."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


@dataclass(slots=True)
class Suppressions:
    """Parsed suppression comments of one file."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def silences(self, violation: Violation) -> bool:
        if violation.code in self.file_level:
            return True
        return violation.code in self.by_line.get(violation.line, ())


@dataclass(slots=True)
class FileContext:
    """One parsed source file as the checkers see it."""

    path: pathlib.Path
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()


def parse_suppressions(source: str) -> Suppressions:
    """Collect the ``repro-lint`` suppression comments of a file.

    Comments are read with :mod:`tokenize` so strings containing the
    marker text never suppress anything.
    """
    out = Suppressions()
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(lines, "")))
    except tokenize.TokenError:
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(2).split(",")}
        if match.group(1) == "disable-file":
            out.file_level |= codes
        else:
            out.by_line.setdefault(token.start[0], set()).update(codes)
    return out


class Checker:
    """Base class of one lint rule.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description`,
    implement :meth:`check_file`, and register themselves with
    :func:`register`.  A rule needing whole-tree context additionally
    implements :meth:`check_project`, which runs once after every file
    was visited (RL001 uses this to cross-check class definitions in one
    module against the ingest call surface in another).

    ``applies_to`` scopes a rule to parts of the tree (answer-path
    modules, dtype-critical modules).  The driver bypasses it when
    ``all_paths`` is set — how the fixture corpus exercises every rule
    from an arbitrary directory.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, path: pathlib.Path) -> bool:
        return True

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, files: Sequence[FileContext]
                      ) -> Iterator[Violation]:
        return iter(())


#: Rule code → checker class.  Populated by :func:`register` at import
#: time of :mod:`repro.tools.lint.checkers`.
REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to :data:`REGISTRY`."""
    if not cls.code:
        raise ValueError(f"checker {cls.__name__} has no code")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate checker code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def iter_python_files(paths: Iterable[pathlib.Path]) -> Iterator[pathlib.Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    seen: set[pathlib.Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_context(path: pathlib.Path) -> "FileContext | None":
    """Parse one file; ``None`` when it is not valid Python source."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    return FileContext(path=path, source=source, tree=tree,
                       suppressions=parse_suppressions(source))


def run_lint(paths: Sequence["pathlib.Path | str"],
             select: "Iterable[str] | None" = None,
             all_paths: bool = False) -> list[Violation]:
    """Lint the given paths with every (or the selected) registered rule.

    Args:
        paths: Files and/or directories to scan.
        select: Optional iterable of rule codes; defaults to all.
        all_paths: Ignore the checkers' path scoping — every rule runs
            on every file (fixture corpora live outside the package
            layout the predicates expect).

    Returns the surviving violations sorted by (path, line, code);
    suppressed findings are dropped before returning.
    """
    # Imported here (not at module top) to avoid a cycle: the checkers
    # module imports this one for the base class and registry.
    import repro.tools.lint.checkers  # noqa: F401  (fills REGISTRY)

    codes = sorted(REGISTRY) if select is None else sorted(select)
    unknown = [code for code in codes if code not in REGISTRY]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    checkers = [REGISTRY[code]() for code in codes]

    contexts: list[FileContext] = []
    for file_path in iter_python_files(
            [pathlib.Path(p) for p in paths]):
        ctx = load_context(file_path)
        if ctx is not None:
            contexts.append(ctx)

    raw: list[Violation] = []
    for checker in checkers:
        scoped = [ctx for ctx in contexts
                  if all_paths or checker.applies_to(ctx.path)]
        for ctx in scoped:
            raw.extend(checker.check_file(ctx))
        raw.extend(checker.check_project(scoped))

    by_path = {ctx.posix_path: ctx.suppressions for ctx in contexts}
    survivors = [violation for violation in raw
                 if not by_path[violation.path].silences(violation)]
    survivors.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return survivors
