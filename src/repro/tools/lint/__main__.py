"""CLI entry point: ``python -m repro.tools.lint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import sys

from repro.tools.lint import checkers  # noqa: F401  (fills REGISTRY)
from repro.tools.lint.core import REGISTRY, run_lint
from repro.tools.lint.reporter import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description=(
            "repro-lint: enforce the repository's bitwise-equivalence "
            "contracts (RL001-RL005) by static analysis."))
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to lint (default: src/repro)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--all-paths", action="store_true",
        help="ignore per-rule path scoping; run every rule on every file")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, cls in sorted(REGISTRY.items()):
            print(f"{code}  {cls.name}: {cls.description}")
        return 0
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",")
                  if code.strip()]
    try:
        violations = run_lint(args.paths, select=select,
                              all_paths=args.all_paths)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    renderer(violations, sys.stdout)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
